//! Integration tests for the paper's worked examples (Figs. 3, 4, 8) on
//! the Venice fixture, crossing the wiki, link, graph and core crates.

use querygraph::core::cycle_analysis::enumerate_cycles;
use querygraph::core::expansion::{CycleExpander, CycleExpanderConfig, Expander};
use querygraph::core::query_graph::assemble;
use querygraph::link::EntityLinker;
use querygraph::wiki::fixture::{venice_mini_wiki, VENICE_QUERY};

#[test]
fn query_90_links_to_gondola_and_venice() {
    let kb = venice_mini_wiki();
    let linker = EntityLinker::new(&kb);
    let lqk = linker.link_articles(VENICE_QUERY);
    let titles: Vec<&str> = lqk.iter().map(|&a| kb.title(a)).collect();
    assert_eq!(titles.len(), 2);
    assert!(titles.contains(&"Gondola"));
    assert!(titles.contains(&"Venice"));
}

#[test]
fn fig4_cycles_all_present_in_assembled_graph() {
    let kb = venice_mini_wiki();
    let linker = EntityLinker::new(&kb);
    let lqk = linker.link_articles(VENICE_QUERY);
    let expansion: Vec<_> = [
        "Grand Canal (Venice)",
        "Palazzo Bembo",
        "Bridge of Sighs",
        "Cannaregio",
    ]
    .iter()
    .map(|t| kb.article_by_title(t).unwrap())
    .collect();
    let qg = assemble(&kb, &lqk, &expansion);
    let cycles = enumerate_cycles(&qg, &kb, 5, usize::MAX);

    // Fig. 4a: a 2-cycle containing venice & cannaregio.
    let venice = kb.article_by_title("Venice").unwrap();
    let cannaregio = kb.article_by_title("Cannaregio").unwrap();
    assert!(cycles
        .iter()
        .any(|c| c.len == 2 && c.articles.contains(&venice) && c.articles.contains(&cannaregio)));

    // Fig. 4b: a 3-cycle with grand canal & palazzo bembo.
    let canal = kb.article_by_title("Grand Canal (Venice)").unwrap();
    let bembo = kb.article_by_title("Palazzo Bembo").unwrap();
    assert!(cycles
        .iter()
        .any(|c| c.len == 3 && c.articles.contains(&canal) && c.articles.contains(&bembo)));

    // Fig. 4c: a 4-cycle with bridge of sighs and two categories.
    let bridge = kb.article_by_title("Bridge of Sighs").unwrap();
    assert!(cycles
        .iter()
        .any(|c| c.len == 4 && c.categories == 2 && c.articles.contains(&bridge)));
}

#[test]
fn redirects_never_close_cycles() {
    // §4: "redirects are never considered as an expansion feature since
    // they can never close a cycle".
    let kb = venice_mini_wiki();
    let ponte = kb.article_by_title("Ponte dei Sospiri").unwrap();
    let bridge = kb.article_by_title("Bridge of Sighs").unwrap();
    let venice = kb.article_by_title("Venice").unwrap();
    let qg = assemble(&kb, &[venice], &[ponte, bridge]);
    for c in enumerate_cycles(&qg, &kb, 5, usize::MAX) {
        assert!(
            !c.articles.contains(&ponte),
            "redirect article appeared inside a cycle: {c:?}"
        );
    }
}

#[test]
fn category_band_blocks_fig8_trap() {
    let kb = venice_mini_wiki();
    let sheep = vec![kb.article_by_title("Sheep").unwrap()];
    let anthrax = kb.article_by_title("Anthrax").unwrap();

    let banded = CycleExpander::default();
    let feats = banded.expand(&kb, &sheep);
    assert!(
        !feats.contains(&anthrax),
        "the ≈30% category band must reject the category-free trap"
    );

    let unbanded = CycleExpander {
        config: CycleExpanderConfig {
            category_ratio_band: (0.0, 1.0),
            ..CycleExpanderConfig::default()
        },
    };
    let feats = unbanded.expand(&kb, &sheep);
    assert!(
        feats.contains(&anthrax),
        "without the band the trap must leak through"
    );
}

#[test]
fn two_cycles_never_contain_categories() {
    // Schema consequence stated in §3: only cycles of length ≥ 3 can
    // contain categories.
    let kb = venice_mini_wiki();
    let linker = EntityLinker::new(&kb);
    let lqk = linker.link_articles(VENICE_QUERY);
    let all: Vec<_> = kb.main_articles().collect();
    let qg = assemble(&kb, &lqk, &all);
    for c in enumerate_cycles(&qg, &kb, 5, usize::MAX) {
        if c.len == 2 {
            assert_eq!(c.categories, 0);
        }
    }
}

#[test]
fn expansion_ratio_matches_manual_count() {
    let kb = venice_mini_wiki();
    let venice = kb.article_by_title("Venice").unwrap();
    let gondola = kb.article_by_title("Gondola").unwrap();
    let canal = kb.article_by_title("Grand Canal (Venice)").unwrap();
    let qg = assemble(&kb, &[venice, gondola], &[canal]);
    let stats = qg.lcc_stats();
    // All three articles are connected: ratio = 3 X-articles / 2 query.
    assert!((stats.expansion_ratio - 1.5).abs() < 1e-12);
}
