//! The segment store must be invisible in the science: a corpus
//! ingested incrementally (uneven batches, multiple publishes) and
//! then compacted must drive the full §2–§3 pipeline to a `Report`
//! that is **byte-identical** to a one-shot in-memory build — at any
//! shard count. This is the library-level half of the ISSUE 9
//! acceptance bar; `crates/bench/tests/segstore_ingest.rs` and CI's
//! `ingest-smoke` job `cmp` the same contract at the process level.

use querygraph::core::experiment::{Experiment, ExperimentConfig};
use querygraph::corpus::imageclef::linking_text;
use querygraph::retrieval::backend::AnyEngine;
use querygraph::retrieval::index::IndexBuilder;
use querygraph::retrieval::lm::LmParams;
use querygraph::retrieval::ondisk::ArtifactSource;
use querygraph::retrieval::segstore::{self, SegStore};
use querygraph::retrieval::sharded::ShardedEngine;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "querygraph-segstore-report-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn incremental_ingest_then_compaction_reproduces_the_one_shot_report() {
    let config = ExperimentConfig::tiny();
    let one_shot = Experiment::build(&config);
    let baseline = serde_json::to_string(&one_shot.run_parallel(4)).expect("report serializes");
    let fingerprint = querygraph::core::cache::config_fingerprint(&config);

    for &shards in &[1usize, 4] {
        let dir = temp_dir(&format!("shards{shards}"));
        let mut store = SegStore::open(&dir, fingerprint).expect("open store");

        // Ingest the same documents in deliberately uneven batches —
        // every commit publishes a new generation, exactly like
        // repeated `qgx ingest` runs against a growing dump.
        let mut builder = IndexBuilder::new();
        let mut in_batch = 0usize;
        for (i, (_, doc)) in one_shot.corpus.corpus.iter().enumerate() {
            builder.add_document(&linking_text(doc));
            in_batch += 1;
            if in_batch >= 7 + (i % 11) {
                let full = std::mem::replace(&mut builder, IndexBuilder::new());
                store.commit_segment(&full.build()).expect("commit segment");
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            store.commit_segment(&builder.build()).expect("commit tail");
        }
        assert!(
            store.manifest().segments.len() > shards,
            "the fixture must actually exercise a merge"
        );

        segstore::compact(&mut store, shards, ArtifactSource::Read)
            .expect("compact")
            .expect("store has published");
        let generation = segstore::load_generation(&dir, fingerprint, ArtifactSource::Read)
            .expect("load generation")
            .expect("store has published");
        assert_eq!(generation.manifest.segments.len(), shards);
        assert_eq!(
            generation.manifest.total_docs() as usize,
            one_shot.corpus.corpus.len()
        );

        let lm = LmParams::default();
        let incremental = Experiment {
            wiki: one_shot.wiki.clone(),
            corpus: one_shot.corpus.clone(),
            engine: AnyEngine::Sharded(ShardedEngine::from_shards(generation.into_engines(lm), lm)),
            config: config.clone(),
        };
        let report =
            serde_json::to_string(&incremental.run_parallel(4)).expect("report serializes");
        assert_eq!(
            report, baseline,
            "segstore-backed report must be byte-identical at {shards} shard(s)"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
