//! The warm → export → seed phrase-dictionary triple must be invisible
//! in search results.
//!
//! PR 3's index artifact persists the phrase dictionary
//! (`SearchEngine::export_phrase_cache`) so a loaded engine starts warm
//! (`seed_phrase_cache`). The retrieval unit tests cover each step in
//! isolation; this property test closes the loop end to end: for
//! arbitrary corpora and phrase workloads, an engine seeded with a
//! warmed engine's export answers `search` **bit-identically** to a
//! cold engine that never saw the dictionary — the cache is pure
//! memoization, never a result change.

use querygraph::retrieval::engine::SearchEngine;
use querygraph::retrieval::index::IndexBuilder;
use querygraph::retrieval::query_lang::QueryNode;

const VOCAB: [&str; 8] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
];

/// Build an engine over documents sampled as vocab-index streams.
fn engine_for(docs: &[Vec<u8>]) -> SearchEngine {
    let mut ib = IndexBuilder::new();
    for d in docs {
        let text: Vec<&str> = d.iter().map(|&x| VOCAB[x as usize % VOCAB.len()]).collect();
        ib.add_document(&text.join(" "));
    }
    SearchEngine::new(ib.build())
}

/// Phrase picks → normalized word vectors (the title-shaped phrases the
/// hill climb evaluates).
fn phrases_for(picks: &[Vec<u8>]) -> Vec<Vec<String>> {
    picks
        .iter()
        .map(|p| {
            p.iter()
                .map(|&x| VOCAB[x as usize % VOCAB.len()].to_string())
                .collect()
        })
        .collect()
}

/// Bit-exact view of a hit list (f64 scores compared by bits, so "the
/// same up to rounding" cannot sneak through).
fn bits(hits: &[querygraph::retrieval::SearchHit]) -> Vec<(u32, u64)> {
    hits.iter().map(|h| (h.doc, h.score.to_bits())).collect()
}

proptest::proptest! {
    /// For arbitrary corpora and phrase workloads: warm an engine over
    /// every phrase, export its dictionary, seed a fresh engine with
    /// the export — the seeded engine's `search` results are
    /// bit-identical to a cold engine's, for single-phrase queries and
    /// for `#combine`s over the whole workload.
    #[test]
    fn seeded_engine_matches_cold_engine(
        docs in proptest::collection::vec(
            proptest::collection::vec(0u8..8, 1..20),
            1..12,
        ),
        picks in proptest::collection::vec(
            proptest::collection::vec(0u8..8, 1..4),
            1..8,
        ),
    ) {
        let phrases = phrases_for(&picks);

        // Cold: never warmed, never seeded.
        let cold = engine_for(&docs);
        // Warmed: evaluate every phrase, then export the dictionary.
        let warmed = engine_for(&docs);
        warmed.warm_phrases(phrases.iter().map(|p| p.as_slice()));
        proptest::prop_assert!(warmed.phrase_cache_len() > 0);
        let exported = warmed.export_phrase_cache();
        // Seeded: a fresh engine starting from the export (exactly what
        // a loaded on-disk artifact does).
        let seeded = engine_for(&docs);
        seeded.seed_phrase_cache(exported.clone());
        let seeded_len = seeded.phrase_cache_len();
        proptest::prop_assert_eq!(seeded_len, exported.len());

        for phrase in &phrases {
            let q = QueryNode::Phrase(phrase.clone());
            proptest::prop_assert_eq!(
                bits(&seeded.search(&q, 10)),
                bits(&cold.search(&q, 10)),
                "single phrase {:?} diverged", phrase
            );
        }
        let combined = QueryNode::Combine(
            phrases.iter().cloned().map(QueryNode::Phrase).collect(),
        );
        proptest::prop_assert_eq!(
            bits(&seeded.search(&combined, 20)),
            bits(&cold.search(&combined, 20)),
            "#combine over the workload diverged"
        );

        // Every query above was answered from the seeded dictionary —
        // the cache must not have grown (a growth means a re-match, so
        // the seed missed).
        proptest::prop_assert_eq!(seeded.phrase_cache_len(), seeded_len);
        // And re-exporting reproduces the dictionary byte for byte.
        proptest::prop_assert_eq!(seeded.export_phrase_cache(), exported);
    }
}
