//! End-to-end integration: the full §2–§3 pipeline on a miniature
//! synthetic world, exercised through the `querygraph` facade.

use querygraph::core::experiment::{Experiment, ExperimentConfig};
use querygraph::corpus::imageclef::linking_text;
use querygraph::link::EntityLinker;
use querygraph::retrieval::metrics::EVAL_CUTOFFS;

fn tiny() -> Experiment {
    Experiment::build(&ExperimentConfig::tiny())
}

#[test]
fn vocabulary_mismatch_exists_and_expansion_closes_it() {
    let report = tiny().run();
    let mut baseline_sum = 0.0;
    let mut expanded_sum = 0.0;
    for q in &report.per_query {
        baseline_sum += q.ground_truth.baseline_quality;
        expanded_sum += q.ground_truth.quality;
    }
    let n = report.per_query.len() as f64;
    assert!(
        baseline_sum / n < 0.8,
        "unexpanded queries must be imperfect (got {})",
        baseline_sum / n
    );
    assert!(
        expanded_sum / n > baseline_sum / n + 0.1,
        "ground-truth expansion must substantially improve retrieval"
    );
}

#[test]
fn query_graphs_contain_cycles_through_query_articles() {
    let exp = tiny();
    let report = exp.run();
    let with_cycles = report
        .per_query
        .iter()
        .filter(|q| !q.cycles.is_empty())
        .count();
    assert!(with_cycles > 0, "some query graph must contain cycles");
    for q in &report.per_query {
        for c in &q.cycles {
            assert!(c.len >= 2 && c.len <= 5);
            assert!(
                c.articles.iter().any(|a| q.lqk.contains(a)),
                "cycle must touch L(q.k)"
            );
            assert!(c.contribution.is_some());
        }
    }
}

#[test]
fn per_query_precisions_are_valid_probabilities() {
    let report = tiny().run();
    for q in &report.per_query {
        for (i, p) in q.ground_truth.precisions.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(p),
                "P@{} = {p} out of range",
                EVAL_CUTOFFS[i]
            );
        }
    }
}

#[test]
fn experiment_is_fully_deterministic() {
    let cfg = ExperimentConfig::tiny();
    let a = Experiment::build(&cfg).run();
    let b = Experiment::build(&cfg).run();
    assert_eq!(a.per_query.len(), b.per_query.len());
    for (x, y) in a.per_query.iter().zip(&b.per_query) {
        assert_eq!(x.ground_truth.expansion, y.ground_truth.expansion);
        assert_eq!(x.cycles.len(), y.cycles.len());
        assert_eq!(x.ground_truth.precisions, y.ground_truth.precisions);
    }
}

#[test]
fn entity_linking_covers_relevant_documents() {
    let exp = tiny();
    let linker = EntityLinker::new(&exp.wiki.kb);
    for query in exp.corpus.queries.iter() {
        let mut mentioned_any = false;
        for &d in &query.relevant {
            let text = linking_text(exp.corpus.corpus.doc(d));
            if !linker.link_articles(&text).is_empty() {
                mentioned_any = true;
                break;
            }
        }
        assert!(
            mentioned_any,
            "query {} has no linkable relevant document",
            query.id
        );
    }
}

#[test]
fn report_tables_have_paper_shape() {
    let report = tiny().run();
    let t2 = report.table2();
    // Precision rows are monotone in spread: min ≤ median ≤ max.
    for row in &t2.rows {
        assert!(row.min <= row.median && row.median <= row.max);
    }
    let t3 = report.table3();
    assert!(
        t3.categories.median >= t3.articles.median,
        "categories must dominate the largest components (paper §3)"
    );
    let fig6 = report.fig6();
    // Cycle counts grow with length (paper Fig. 6).
    let v: Vec<f64> = (2..=5).map(|l| fig6.values[l].unwrap_or(0.0)).collect();
    assert!(v[3] > v[0], "5-cycles must outnumber 2-cycles on average");
}
