//! Workspace-level contract for the pipeline runner: parallel execution
//! is invisible in the output. Whatever the thread count and steal
//! schedule, the serialized `Report` must be byte-identical to a
//! sequential run — this is what lets future perf PRs swap runners
//! without re-validating the science.

use querygraph::core::experiment::{Experiment, ExperimentConfig};
use querygraph::core::pipeline::{PipelineCtx, RunSummary, Stage};

#[test]
fn run_parallel_is_byte_identical_for_all_thread_counts() {
    let experiment = Experiment::build(&ExperimentConfig::tiny());
    let sequential = serde_json::to_string(&experiment.run()).expect("report serializes");
    for threads in [1, 2, 8] {
        let parallel =
            serde_json::to_string(&experiment.run_parallel(threads)).expect("report serializes");
        assert_eq!(
            sequential, parallel,
            "run_parallel({threads}) diverged from run()"
        );
    }
}

#[test]
fn summaries_report_the_requested_mode() {
    let experiment = Experiment::build(&ExperimentConfig::tiny());
    let (_, seq) = experiment.run_with_summary();
    assert_eq!(seq.mode, "sequential");
    assert_eq!(seq.threads, 1);

    let (_, par) = experiment.run_parallel_with_summary(2);
    assert_eq!(par.mode, "work_stealing");
    assert_eq!(par.threads, 2);
    assert_eq!(par.queries, seq.queries);
    // Per-stage CPU seconds are schedule-dependent but always cover
    // every stage.
    assert_eq!(par.stage_seconds.len(), Stage::ALL.len());
}

#[test]
fn summary_round_trips_through_json() {
    let experiment = Experiment::build(&ExperimentConfig::tiny());
    let (_, summary) = experiment.run_parallel_with_summary(2);
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    let back: RunSummary = serde_json::from_str(&json).expect("summary parses");
    assert_eq!(back, summary);
}

use querygraph::retrieval::ondisk::fnv1a;

/// `SynthWikiConfig::stress()` determinism at full scale: the same seed
/// must produce the identical 100k+ article knowledge base (pinned by
/// the serialized `KbStats` fingerprint) on every generation — the
/// property the on-disk index cache's fingerprint keying relies on.
#[test]
fn stress_world_generation_is_deterministic() {
    use querygraph::wiki::stats::kb_stats;
    use querygraph::wiki::synth::{generate, SynthWikiConfig};
    let cfg = SynthWikiConfig::stress();
    let fingerprint = |json: &str| (json.len(), fnv1a(json.as_bytes()));
    let first = generate(&cfg);
    let second = generate(&cfg);
    assert!(
        first.kb.main_articles().count() >= 100_000,
        "stress world must stay at paper scale"
    );
    let a = serde_json::to_string(&kb_stats(&first.kb)).expect("stats serialize");
    let b = serde_json::to_string(&kb_stats(&second.kb)).expect("stats serialize");
    assert_eq!(fingerprint(&a), fingerprint(&b), "stress KB diverged: {a}");
}

/// Thread-count invisibility holds at stress scale too: a reduced
/// stress world (same extended title patterns, fewer articles so the
/// test stays fast) run at two thread counts must serialize identical
/// `Report`s with identical KB stats fingerprints.
#[test]
fn stress_report_identical_across_thread_counts() {
    let mut config = ExperimentConfig::stress_sampled(3);
    // Shrink volume, not structure: stay above the base title-pattern
    // capacity (90 per topic) so the combinatorial patterns the full
    // stress world depends on are exercised.
    config.wiki.num_topics = 6;
    config.wiki.articles_per_topic = 120;
    config.corpus.noise_docs = 300;
    config.ground_truth.max_iterations = 25;
    let experiment = Experiment::build(&config);
    let one = serde_json::to_string(&experiment.run_parallel(1)).expect("serializes");
    let eight = serde_json::to_string(&experiment.run_parallel(8)).expect("serializes");
    assert_eq!(
        (one.len(), fnv1a(one.as_bytes())),
        (eight.len(), fnv1a(eight.as_bytes())),
        "stress-shaped report must not depend on thread count"
    );
}

/// The facade quickstart path, as DESIGN.md and `src/lib.rs` advertise
/// it: build → run → aggregate, through the `querygraph::` re-exports
/// only.
#[test]
fn facade_quickstart_smoke() {
    let config = ExperimentConfig::tiny();
    let experiment = Experiment::build(&config);

    // A shared context can also drive single-query analysis directly.
    let ctx = PipelineCtx::new(&experiment);
    let first = ctx.analyze(0);
    assert!(!first.lqk.is_empty(), "keywords must link to articles");

    let report = experiment.run();
    assert_eq!(report.per_query.len(), config.corpus.num_queries);
    assert_eq!(report.per_query[0].query_id, first.query_id);

    let rendered = report.render_all();
    for needle in ["Table 2", "Table 3", "Table 4", "Fig. 5", "Fig. 9"] {
        assert!(rendered.contains(needle), "render_all missing {needle}");
    }
}
