//! Workspace-level contract for the pipeline runner: parallel execution
//! is invisible in the output. Whatever the thread count and steal
//! schedule, the serialized `Report` must be byte-identical to a
//! sequential run — this is what lets future perf PRs swap runners
//! without re-validating the science.

use querygraph::core::experiment::{Experiment, ExperimentConfig};
use querygraph::core::pipeline::{PipelineCtx, RunSummary, Stage};

#[test]
fn run_parallel_is_byte_identical_for_all_thread_counts() {
    let experiment = Experiment::build(&ExperimentConfig::tiny());
    let sequential = serde_json::to_string(&experiment.run()).expect("report serializes");
    for threads in [1, 2, 8] {
        let parallel =
            serde_json::to_string(&experiment.run_parallel(threads)).expect("report serializes");
        assert_eq!(
            sequential, parallel,
            "run_parallel({threads}) diverged from run()"
        );
    }
}

#[test]
fn summaries_report_the_requested_mode() {
    let experiment = Experiment::build(&ExperimentConfig::tiny());
    let (_, seq) = experiment.run_with_summary();
    assert_eq!(seq.mode, "sequential");
    assert_eq!(seq.threads, 1);

    let (_, par) = experiment.run_parallel_with_summary(2);
    assert_eq!(par.mode, "work_stealing");
    assert_eq!(par.threads, 2);
    assert_eq!(par.queries, seq.queries);
    // Per-stage CPU seconds are schedule-dependent but always cover
    // every stage.
    assert_eq!(par.stage_seconds.len(), Stage::ALL.len());
}

#[test]
fn summary_round_trips_through_json() {
    let experiment = Experiment::build(&ExperimentConfig::tiny());
    let (_, summary) = experiment.run_parallel_with_summary(2);
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    let back: RunSummary = serde_json::from_str(&json).expect("summary parses");
    assert_eq!(back, summary);
}

/// The facade quickstart path, as DESIGN.md and `src/lib.rs` advertise
/// it: build → run → aggregate, through the `querygraph::` re-exports
/// only.
#[test]
fn facade_quickstart_smoke() {
    let config = ExperimentConfig::tiny();
    let experiment = Experiment::build(&config);

    // A shared context can also drive single-query analysis directly.
    let ctx = PipelineCtx::new(&experiment);
    let first = ctx.analyze(0);
    assert!(!first.lqk.is_empty(), "keywords must link to articles");

    let report = experiment.run();
    assert_eq!(report.per_query.len(), config.corpus.num_queries);
    assert_eq!(report.per_query[0].query_id, first.query_id);

    let rendered = report.render_all();
    for needle in ["Table 2", "Table 3", "Table 4", "Fig. 5", "Fig. 9"] {
        assert!(rendered.contains(needle), "render_all missing {needle}");
    }
}
