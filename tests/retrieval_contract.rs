//! Integration of the retrieval substrate with the corpus and linking
//! layers: the INDRI-like contract the ground-truth pipeline depends
//! on (§2.2).

use querygraph::corpus::imageclef::linking_text;
use querygraph::corpus::synth::{generate_corpus, SynthCorpusConfig};
use querygraph::link::EntityLinker;
use querygraph::retrieval::engine::SearchEngine;
use querygraph::retrieval::index::IndexBuilder;
use querygraph::retrieval::metrics::{average_quality, precision_at};
use querygraph::retrieval::query_lang::{parse, QueryNode};
use querygraph::wiki::synth::{generate, SynthWiki, SynthWikiConfig};

fn world() -> (
    SynthWiki,
    querygraph::corpus::synth::SynthCorpus,
    SearchEngine,
) {
    let wiki = generate(&SynthWikiConfig::small());
    let sc = generate_corpus(&wiki, &SynthCorpusConfig::small());
    let mut ib = IndexBuilder::new();
    for (_, d) in sc.corpus.iter() {
        ib.add_document(&linking_text(d));
    }
    let engine = SearchEngine::new(ib.build());
    (wiki, sc, engine)
}

#[test]
fn title_phrases_retrieve_documents_mentioning_them() {
    let (wiki, sc, engine) = world();
    // Take a title that the corpus certainly mentions: the first
    // mention of the first relevant document of query 1.
    let linker = EntityLinker::new(&wiki.kb);
    let d0 = sc.queries.queries[0].relevant[0];
    let text = linking_text(sc.corpus.doc(d0));
    let arts = linker.link_articles(&text);
    assert!(!arts.is_empty());
    let title = wiki.kb.title(arts[0]);
    let node = QueryNode::phrases_of_titles(&[title]);
    let hits = engine.search(&node, 50);
    assert!(
        hits.iter().any(|h| h.doc == d0.0),
        "document mentioning {title:?} must be retrieved by its phrase"
    );
}

#[test]
fn exact_phrases_beat_scattered_tokens() {
    let mut ib = IndexBuilder::new();
    let exact = ib.add_document("the northern temple stands on a hill");
    let scattered = ib.add_document("northern lights above an old temple");
    let engine = SearchEngine::new(ib.build());
    let hits = engine.search(&parse("#1(northern temple)").unwrap(), 10);
    assert_eq!(hits.len(), 1, "only the exact phrase matches");
    assert_eq!(hits[0].doc, exact);
    assert!(hits.iter().all(|h| h.doc != scattered));
}

#[test]
fn adding_good_titles_never_needs_reindexing() {
    // The ground-truth climb issues thousands of query variants against
    // one immutable index; verify scores are reproducible across calls
    // (the phrase cache must be transparent).
    let (_, sc, engine) = world();
    let q = &sc.queries.queries[0];
    let node = parse(&format!(
        "#combine({})",
        q.keywords.split_whitespace().collect::<Vec<_>>().join(" ")
    ))
    .unwrap();
    let first = engine.search(&node, 15);
    for _ in 0..5 {
        assert_eq!(engine.search(&node, 15), first);
    }
}

#[test]
fn quality_metric_agrees_with_manual_precision() {
    let (_, sc, engine) = world();
    let q = &sc.queries.queries[0];
    let relevant: Vec<u32> = q.relevant.iter().map(|d| d.0).collect();
    let node = QueryNode::phrases_of_titles(&[&q.keywords]);
    let hits = engine.search(&node, 15);
    let o = average_quality(&hits, &relevant);
    let manual = [1, 5, 10, 15]
        .iter()
        .map(|&r| precision_at(&hits, &relevant, r))
        .sum::<f64>()
        / 4.0;
    assert!((o - manual).abs() < 1e-12);
}

#[test]
fn search_depth_is_respected_and_sorted() {
    let (_, sc, engine) = world();
    let q = &sc.queries.queries[1];
    let node = QueryNode::phrases_of_titles(&[&q.keywords]);
    for k in [1, 5, 15] {
        let hits = engine.search(&node, k);
        assert!(hits.len() <= k);
        for w in hits.windows(2) {
            assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].doc < w[1].doc),
                "results must be sorted with deterministic ties"
            );
        }
    }
}
