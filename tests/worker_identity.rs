//! Worker-count byte-identity for the HTTP front-end.
//!
//! The multi-core scale-out contract (DESIGN.md §15): serving is
//! embarrassingly parallel across connections, so the **bytes on the
//! socket** must not depend on how many workers the server runs —
//! success bodies and typed-error bodies alike. A 1-worker server
//! driven sequentially is the reference; 2/4/8-worker servers driven
//! by concurrent clients must reproduce every response byte for byte.
//!
//! The property would catch any worker-local state leaking into
//! responses (per-worker scratch buffers reused across requests,
//! cache-hit vs cache-miss serialization drift, counter values
//! embedded in bodies) as well as cross-talk between concurrently
//! served connections.

use querygraph::core::config::ExperimentConfig;
use querygraph::core::http::{self, HttpServer, ServerConfig};
use querygraph::core::service::{ExpansionRequest, QueryExpander, ServingWorld};
use std::sync::atomic::Ordering;
use std::sync::OnceLock;
use std::time::Duration;

/// One tiny world for the whole suite — booting it per proptest case
/// would dominate the runtime without strengthening the property.
fn world() -> &'static ServingWorld {
    static WORLD: OnceLock<ServingWorld> = OnceLock::new();
    WORLD.get_or_init(|| ServingWorld::open(&ExperimentConfig::tiny(), None))
}

/// The query pool cases draw from: real article titles (success
/// bodies) plus inputs that produce typed-error bodies (unlinkable
/// text, empty query).
fn query_pool() -> &'static [String] {
    static POOL: OnceLock<Vec<String>> = OnceLock::new();
    POOL.get_or_init(|| {
        let w = world();
        let mut pool: Vec<String> = w
            .wiki
            .kb
            .main_articles()
            .take(4)
            .map(|a| w.wiki.kb.title(a).to_string())
            .collect();
        assert!(!pool.is_empty(), "tiny world has articles");
        pool.push("xyzzy nothing links".to_string());
        pool.push("zzz unlinkable text".to_string());
        pool.push(String::new());
        pool
    })
}

fn post_expand(addr: &str, text: &str) -> (u16, String) {
    let body = serde_json::to_string(&ExpansionRequest::new(text)).expect("request serializes");
    let response =
        http::post_json(addr, "/expand", &body, Duration::from_secs(10)).expect("exchange");
    (response.status, response.body_text())
}

/// Boot a server with `workers`, run `f` against it, shut down.
fn with_workers<F, T>(expander: &QueryExpander<'_>, workers: usize, f: F) -> T
where
    F: FnOnce(&str) -> T,
    T: Send,
{
    let server = HttpServer::bind(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_flag();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve(expander));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&addr)));
        shutdown.store(true, Ordering::SeqCst);
        handle.join().expect("serve thread").expect("serve result");
        match outcome {
            Ok(value) => value,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

/// Responses for `queries`, one concurrent client per query, collected
/// in query order regardless of completion order.
fn concurrent_responses(addr: &str, queries: &[&str]) -> Vec<(u16, String)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|query| scope.spawn(move || post_expand(addr, query)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    })
}

proptest::proptest! {
    /// For arbitrary mixes of success and typed-error queries, 2-, 4-,
    /// and 8-worker servers under concurrent clients answer
    /// byte-identically to the sequential 1-worker reference.
    #[test]
    fn multi_worker_responses_are_byte_identical_to_one_worker(
        picks in proptest::collection::vec(0usize..7, 1..6),
    ) {
        let pool = query_pool();
        let queries: Vec<&str> = picks
            .iter()
            .map(|&i| pool[i % pool.len()].as_str())
            .collect();
        let expander = world().expander();
        let reference: Vec<(u16, String)> = with_workers(&expander, 1, |addr| {
            queries.iter().map(|q| post_expand(addr, q)).collect()
        });
        // Typed-error inputs are in the pool often enough that most
        // cases exercise both body shapes; assert the reference is
        // well-formed either way.
        for (status, body) in &reference {
            proptest::prop_assert!(*status == 200 || *status >= 400);
            proptest::prop_assert!(body.ends_with('\n'), "socket bodies end in newline");
        }
        for workers in [2usize, 4, 8] {
            let got = with_workers(&expander, workers, |addr| {
                concurrent_responses(addr, &queries)
            });
            proptest::prop_assert_eq!(
                &got,
                &reference,
                "{} workers diverged from the 1-worker reference for {:?}",
                workers,
                queries
            );
        }
    }
}
