//! Sharding must be invisible in the science: the `ShardedEngine`'s
//! scatter-gather, the segmented artifact layout, and mmap-backed
//! loading may change *where bytes live*, never *what is computed*.
//!
//! Three layers of protection:
//!
//! * **Golden pins** — the serialized `Report` at `--shards 4` must
//!   reproduce the exact pre-fast-path fingerprints pinned in
//!   `tests/ground_truth_fastpath.rs` for the tiny and seed (paper)
//!   configurations. CI's `shard-smoke` job runs these.
//! * **Property tests** — randomized micro worlds run through the full
//!   pipeline at N ∈ {1, 2, 3, 7} shards and must serialize
//!   byte-identical `Report`s; mmap-loaded worlds must answer
//!   byte-identically to read-loaded ones.
//! * **Corruption fuzz** — flipping bytes in one shard segment must
//!   surface as a typed `ServiceError::ArtifactShard` *naming that
//!   shard*, never a panic, through the strict serving facade.

use querygraph::core::cache::{sharded_manifest_path, WorldOptions};
use querygraph::core::experiment::{Experiment, ExperimentConfig};
use querygraph::core::service::{ExpansionRequest, ServiceError, ServingWorld};
use querygraph::retrieval::lm::LmParams;
use querygraph::retrieval::ondisk::fnv1a;
use querygraph::retrieval::sharded::segment_file;
use std::path::PathBuf;

/// The pinned pre-fast-path fingerprints (captured at PR 1's HEAD) —
/// the same constants `tests/ground_truth_fastpath.rs` pins for the
/// monolithic engine. Sharding must land on them exactly.
const TINY_LEN: usize = 62268;
const TINY_FNV: u64 = 0xef86_f006_77e1_7e07;
const PAPER_LEN: usize = 593_029;
const PAPER_FNV: u64 = 0xc91c_7675_c461_6d91;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "querygraph-sharded-eq-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn report_json(experiment: &Experiment) -> String {
    serde_json::to_string(&experiment.run_parallel(4)).expect("report serializes")
}

#[test]
fn golden_report_tiny_config_at_four_shards() {
    let json = report_json(&Experiment::build_sharded(&ExperimentConfig::tiny(), 4));
    assert_eq!(json.len(), TINY_LEN, "sharded tiny Report length moved");
    assert_eq!(
        fnv1a(json.as_bytes()),
        TINY_FNV,
        "sharded tiny Report bytes diverged from the unsharded golden pin"
    );
}

#[test]
fn golden_report_seed_config_at_four_shards() {
    let json = report_json(&Experiment::build_sharded(
        &ExperimentConfig::default_paper(),
        4,
    ));
    assert_eq!(json.len(), PAPER_LEN, "sharded seed Report length moved");
    assert_eq!(
        fnv1a(json.as_bytes()),
        PAPER_FNV,
        "sharded seed Report bytes diverged from the unsharded golden pin"
    );
}

/// A micro world cheap enough that the property test can afford
/// building the monolithic + four sharded variants per case.
fn micro_config(
    wiki_seed: u64,
    corpus_seed: u64,
    topics: usize,
    queries: usize,
) -> ExperimentConfig {
    let mut config = ExperimentConfig::tiny();
    config.wiki.seed = wiki_seed;
    config.wiki.num_topics = topics;
    config.wiki.articles_per_topic = 6;
    config.corpus.seed = corpus_seed;
    config.corpus.num_queries = queries.min(topics);
    config.corpus.noise_docs = 25;
    config.ground_truth.max_iterations = 12;
    config
}

proptest::proptest! {
    /// For arbitrary micro worlds, the full-pipeline `Report` bytes at
    /// N ∈ {1, 2, 3, 7} shards are identical to the monolithic run's.
    #[test]
    fn report_bytes_identical_across_shard_counts(
        wiki_seed in 0u64..1_000_000,
        corpus_seed in 0u64..1_000_000,
        topics in 3usize..6,
        queries in 1usize..3,
    ) {
        let config = micro_config(wiki_seed, corpus_seed, topics, queries);
        let mono = report_json(&Experiment::build(&config));
        for n in [1usize, 2, 3, 7] {
            let sharded = report_json(&Experiment::build_sharded(&config, n));
            proptest::prop_assert_eq!(
                &mono, &sharded,
                "Report diverged at {} shards for {:?}", n, config
            );
        }
    }
}

/// Serving byte-identity end to end: a sharded world — built cold,
/// then loaded warm from its segmented artifact — answers expansion +
/// retrieval requests byte-identically to the monolithic world.
#[test]
fn sharded_serving_identical_to_monolithic_cold_and_warm() {
    let dir = temp_dir("serving");
    let config = micro_config(41, 43, 4, 2);
    let options = WorldOptions::sharded(3);
    std::fs::remove_file(sharded_manifest_path(&dir, &config, 3)).ok();

    let mono = ServingWorld::open(&config, None);
    let (cold, _) =
        ServingWorld::open_with_options(&config, Some(&dir), LmParams::default(), &options);
    assert_eq!(cold.stats.shard_count, 3);
    let warm = ServingWorld::load_with_options(&config, &dir, LmParams::default(), &options)
        .expect("sharded artifact loads");
    assert_eq!(warm.engine.shard_count(), 3);
    assert_eq!(warm.stats.shard_load_seconds.len(), 3);

    for article in mono.wiki.kb.main_articles().take(5) {
        let request = ExpansionRequest::new(mono.wiki.kb.title(article)).with_retrieval(10);
        let reference = mono.expander().expand(&request).expect("mono expands");
        let reference = serde_json::to_string(&reference).expect("serializes");
        for (label, world) in [("cold", &cold), ("warm", &warm)] {
            let response = world.expander().expand(&request).expect("sharded expands");
            let sharded = serde_json::to_string(&response).expect("serializes");
            assert_eq!(
                reference, sharded,
                "{label} sharded expansion diverged for {:?}",
                request.text
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupting one shard segment must yield a typed error naming that
/// shard — never a panic, never a silently wrong engine — through the
/// strict facade load.
#[test]
fn corrupt_segment_surfaces_typed_per_shard_error() {
    let dir = temp_dir("fuzz");
    let config = micro_config(47, 53, 3, 1);
    let options = WorldOptions::sharded(3);
    std::fs::remove_file(sharded_manifest_path(&dir, &config, 3)).ok();
    ServingWorld::open_with_options(&config, Some(&dir), LmParams::default(), &options);

    let stem = querygraph::core::cache::sharded_stem(&config, 3);
    let victim = dir.join(segment_file(&stem, 2));
    let bytes = std::fs::read(&victim).expect("segment persisted");
    let step = (bytes.len() / 256).max(1);
    for i in (0..bytes.len()).step_by(step) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xFF;
        std::fs::write(&victim, &corrupt).expect("write corrupt segment");
        match ServingWorld::load_with_options(&config, &dir, LmParams::default(), &options) {
            Err(ServiceError::ArtifactShard { shard, path, .. }) => {
                assert_eq!(shard, 2, "flip at byte {i} must blame shard 2");
                assert_eq!(path, victim);
            }
            Err(other) => panic!("flip at byte {i}: unexpected error class {other:?}"),
            Ok(_) => panic!("flip at byte {i}: corrupted segment loaded successfully"),
        }
    }
    // Truncations of the segment fail the same way; the error renders
    // with the shard index (qgx prints these).
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate");
    let err = ServingWorld::load_with_options(&config, &dir, LmParams::default(), &options)
        .err()
        .expect("truncated segment must not load");
    assert!(err.to_string().contains("shard 2"), "{err}");

    // A missing manifest is the cold-cache class, not a shard error.
    std::fs::remove_file(sharded_manifest_path(&dir, &config, 3)).ok();
    assert!(matches!(
        ServingWorld::load_with_options(&config, &dir, LmParams::default(), &options),
        Err(ServiceError::ArtifactMissing { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// Mmap-backed loading is invisible: a world loaded with `--mmap`
/// serves byte-identical responses to one loaded by reading, for both
/// layouts; on any mapping problem the loader falls back to reading.
#[test]
fn mmap_loaded_worlds_serve_identically() {
    let dir = temp_dir("mmap");
    let config = micro_config(59, 61, 4, 2);
    for (label, options) in [
        ("mono", WorldOptions::default()),
        ("sharded", WorldOptions::sharded(2)),
    ] {
        let mut mmap_options = options;
        mmap_options.mmap = true;
        // Cold build + persist with the plain options.
        ServingWorld::open_with_options(&config, Some(&dir), LmParams::default(), &options);
        let read = ServingWorld::load_with_options(&config, &dir, LmParams::default(), &options)
            .expect("read load");
        let mapped =
            ServingWorld::load_with_options(&config, &dir, LmParams::default(), &mmap_options)
                .expect("mmap load");
        for article in read.wiki.kb.main_articles().take(4) {
            let request = ExpansionRequest::new(read.wiki.kb.title(article)).with_retrieval(10);
            assert_eq!(
                read.expander().expand(&request),
                mapped.expander().expand(&request),
                "{label}: mmap-loaded expansion diverged for {:?}",
                request.text
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
