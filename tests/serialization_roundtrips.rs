//! Cross-crate persistence round trips: knowledge bases, qrels,
//! ImageCLEF XML, and full experiment reports.

use querygraph::core::experiment::{Experiment, ExperimentConfig, Report};
use querygraph::corpus::imageclef::parse_image_doc;
use querygraph::corpus::qrels::{parse_qrels, to_qrels};
use querygraph::corpus::synth::{generate_corpus, SynthCorpusConfig};
use querygraph::corpus::writer::to_xml;
use querygraph::wiki::serialize::{from_data, load_text, save_text, to_data};
use querygraph::wiki::synth::{generate, SynthWikiConfig};

#[test]
fn synthetic_kb_survives_text_round_trip() {
    let wiki = generate(&SynthWikiConfig::small());
    let text = save_text(&wiki.kb);
    let back = load_text(&text).expect("generated KB re-parses");
    assert_eq!(back.num_articles(), wiki.kb.num_articles());
    assert_eq!(back.num_categories(), wiki.kb.num_categories());
    assert_eq!(back.graph().edge_count(), wiki.kb.graph().edge_count());
    for a in wiki.kb.articles() {
        assert_eq!(back.title(a), wiki.kb.title(a));
    }
    // Round-tripping again is byte-stable.
    assert_eq!(save_text(&back), text);
}

#[test]
fn synthetic_kb_survives_serde_round_trip() {
    let wiki = generate(&SynthWikiConfig::small());
    let data = to_data(&wiki.kb);
    let json = serde_json::to_string(&data).expect("serializes");
    let back = from_data(&serde_json::from_str(&json).expect("parses")).expect("validates");
    assert_eq!(back.num_articles(), wiki.kb.num_articles());
    assert_eq!(back.links().len(), wiki.kb.links().len());
}

#[test]
fn corpus_documents_survive_xml_round_trip() {
    let wiki = generate(&SynthWikiConfig::small());
    let sc = generate_corpus(&wiki, &SynthCorpusConfig::small());
    for (_, doc) in sc.corpus.iter() {
        let xml = to_xml(doc);
        let back = parse_image_doc(&xml).expect("re-parses");
        assert_eq!(&back, doc);
    }
}

#[test]
fn qrels_round_trip_preserves_judgments() {
    let wiki = generate(&SynthWikiConfig::small());
    let sc = generate_corpus(&wiki, &SynthCorpusConfig::small());
    let text = to_qrels(&sc.queries);
    let back = parse_qrels(&text).expect("parses");
    assert_eq!(back.len(), sc.queries.len());
    for q in sc.queries.iter() {
        let rq = back.by_id(q.id).expect("query id present");
        assert_eq!(rq.relevant, q.relevant, "query {}", q.id);
    }
}

#[test]
fn full_report_round_trips_through_json() {
    let report = Experiment::build(&ExperimentConfig::tiny()).run();
    let json = serde_json::to_string(&report).expect("serializes");
    let back: Report = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.per_query.len(), report.per_query.len());
    for (a, b) in report.per_query.iter().zip(&back.per_query) {
        assert_eq!(a.query_id, b.query_id);
        assert_eq!(a.ground_truth.expansion, b.ground_truth.expansion);
        assert_eq!(a.cycles.len(), b.cycles.len());
    }
    assert_eq!(back.config, report.config);
}
