//! The §2.2 evaluation fast path must be invisible in the science.
//!
//! Two layers of protection:
//!
//! * **Golden pins** — the serialized `Report` for the tiny and seed
//!   (paper) configurations is pinned by length + FNV-1a fingerprint,
//!   captured from the pre-workspace implementation (PR 1). Any change
//!   to what the pipeline *computes* — as opposed to how fast — moves
//!   the fingerprint and fails here. If a PR intends to change results,
//!   it must re-pin these constants and say so.
//! * **Memo equivalence** — property tests drive memoized and
//!   unmemoized climbs over randomized worlds and assert identical
//!   serialized `GroundTruth`.

use querygraph::core::experiment::{Experiment, ExperimentConfig};
use querygraph::core::ground_truth::{find_ground_truth, GroundTruthConfig, QualityEvaluator};
use querygraph::retrieval::engine::SearchEngine;
use querygraph::retrieval::index::IndexBuilder;
use querygraph::wiki::{ArticleId, KbBuilder, KnowledgeBase};

// The canonical FNV-1a (stable across platforms and rust versions,
// unlike `DefaultHasher`) — one implementation for every fingerprint
// in the workspace.
use querygraph::retrieval::ondisk::fnv1a;

/// Pinned pre-fast-path fingerprints (captured at PR 1's HEAD).
const TINY_LEN: usize = 62268;
const TINY_FNV: u64 = 0xef86_f006_77e1_7e07;
const PAPER_LEN: usize = 593_029;
const PAPER_FNV: u64 = 0xc91c_7675_c461_6d91;

fn report_json(config: &ExperimentConfig) -> String {
    let experiment = Experiment::build(config);
    // Parallel is byte-identical to sequential (pipeline_determinism.rs
    // proves it separately); use it to keep the paper-scale pin fast.
    serde_json::to_string(&experiment.run_parallel(4)).expect("report serializes")
}

#[test]
fn golden_report_tiny_config() {
    let json = report_json(&ExperimentConfig::tiny());
    assert_eq!(json.len(), TINY_LEN, "tiny Report length moved");
    assert_eq!(
        fnv1a(json.as_bytes()),
        TINY_FNV,
        "tiny Report bytes diverged from the pre-fast-path pin"
    );
}

#[test]
fn golden_report_seed_config() {
    let json = report_json(&ExperimentConfig::default_paper());
    assert_eq!(json.len(), PAPER_LEN, "seed Report length moved");
    assert_eq!(
        fnv1a(json.as_bytes()),
        PAPER_FNV,
        "seed Report bytes diverged from the pre-fast-path pin"
    );
}

/// The on-disk index cache must be invisible in the science: a run
/// whose index was **loaded** from a persisted artifact (warm phrase
/// dictionary included) must reproduce the same pinned fingerprints as
/// the in-memory build — for both the tiny and the seed configuration.
#[test]
fn golden_report_via_loaded_index() {
    let dir = std::env::temp_dir().join(format!("querygraph-golden-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cache dir");
    for (config, len, fnv) in [
        (ExperimentConfig::tiny(), TINY_LEN, TINY_FNV),
        (ExperimentConfig::default_paper(), PAPER_LEN, PAPER_FNV),
    ] {
        // Cold: build + persist. Warm: load from the artifact.
        let (_, cold) = Experiment::build_with_cache(&config, Some(&dir));
        assert_eq!(
            cold.index_source,
            querygraph::core::cache::IndexSource::Built
        );
        let (experiment, warm) = Experiment::build_with_cache(&config, Some(&dir));
        assert_eq!(
            warm.index_source,
            querygraph::core::cache::IndexSource::Loaded,
            "second build must hit the cache"
        );
        let json = serde_json::to_string(&experiment.run_parallel(4)).expect("report serializes");
        assert_eq!(json.len(), len, "loaded-index Report length moved");
        assert_eq!(
            fnv1a(json.as_bytes()),
            fnv,
            "loaded-index Report diverged from the golden pin"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ── memo ≡ no-memo on random worlds ─────────────────────────────────

/// Build a small world from sampled document word streams: one article
/// per vocabulary word, docs over the same vocabulary, the first
/// `relevant_count` docs marked relevant.
fn random_world(docs: &[Vec<u8>]) -> (KnowledgeBase, SearchEngine) {
    const VOCAB: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
    let mut kb = KbBuilder::new();
    let mut articles = Vec::new();
    for w in VOCAB {
        articles.push(kb.add_article(w));
    }
    let c = kb.add_category("everything");
    for &a in &articles {
        kb.belongs(a, c);
    }
    let kb = kb.build().expect("kb builds");

    let mut ib = IndexBuilder::new();
    for d in docs {
        let text: Vec<&str> = d.iter().map(|&x| VOCAB[x as usize % VOCAB.len()]).collect();
        ib.add_document(&text.join(" "));
    }
    (kb, SearchEngine::new(ib.build()))
}

proptest::proptest! {
    /// `find_ground_truth` must return an identical (serialized)
    /// `GroundTruth` whether or not the subset memo is active, for
    /// arbitrary worlds, query articles, pools, and seeds.
    #[test]
    fn memoized_climb_equals_unmemoized(
        docs in proptest::collection::vec(
            proptest::collection::vec(0u8..6, 1..14),
            2..12,
        ),
        query_pick in 0u8..6,
        pool_picks in proptest::collection::vec(0u8..6, 1..5),
        relevant_count in 1usize..4,
        query_id in 0u32..50,
    ) {
        let (kb, engine) = random_world(&docs);
        let relevant: Vec<u32> =
            (0..docs.len().min(relevant_count) as u32).collect();
        let ids: Vec<ArticleId> = (0..6)
            .map(|i| {
                kb.article_by_title(
                    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"][i],
                )
                .expect("article exists")
            })
            .collect();
        let query_articles = [ids[query_pick as usize % 6]];
        let mut pool: Vec<ArticleId> = pool_picks
            .iter()
            .map(|&p| ids[p as usize % 6])
            .collect();
        pool.dedup();

        let config = GroundTruthConfig {
            max_iterations: 12,
            ..GroundTruthConfig::default()
        };
        let memo = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let raw = QualityEvaluator::without_memo(&kb, &engine, &relevant, 15);
        let a = find_ground_truth(&memo, &config, query_id, &query_articles, &pool);
        let b = find_ground_truth(&raw, &config, query_id, &query_articles, &pool);

        proptest::prop_assert_eq!(
            serde_json::to_string(&a).expect("serializes"),
            serde_json::to_string(&b).expect("serializes")
        );
        // The request count is part of the contract: memo hits still
        // count, so `evaluations` is identical either way.
        proptest::prop_assert_eq!(a.evaluations, b.evaluations);
        proptest::prop_assert_eq!(b.cached_evaluations, 0);
        proptest::prop_assert_eq!(
            a.cached_evaluations + a.computed_evaluations,
            a.evaluations
        );
    }
}
