//! The persisted index must be invisible end to end: for arbitrary
//! generated worlds, `write → load → Report` is byte-identical to the
//! in-memory build.
//!
//! The retrieval crate's unit tests already pin the format itself
//! (losslessness, checksums, the corruption battery); these tests close
//! the loop at the workspace level, through `Experiment::build_with_cache`
//! and the full §2–§3 pipeline — including the warm phrase dictionary a
//! loaded engine starts with.

use querygraph::core::cache::{artifact_path, load_engine, IndexSource};
use querygraph::core::experiment::{Experiment, ExperimentConfig};
use querygraph::core::service::{ServiceError, ServingWorld};
use querygraph::retrieval::lm::LmParams;
use querygraph::retrieval::ondisk::fnv1a;
use std::path::{Path, PathBuf};

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "querygraph-ondisk-roundtrip-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp cache dir");
    dir
}

/// A micro world: small enough that one build + two runs cost a few
/// milliseconds, so the property can afford dozens of sampled worlds.
fn micro_config(
    wiki_seed: u64,
    corpus_seed: u64,
    topics: usize,
    queries: usize,
) -> ExperimentConfig {
    let mut config = ExperimentConfig::tiny();
    config.wiki.seed = wiki_seed;
    config.wiki.num_topics = topics;
    config.wiki.articles_per_topic = 6;
    config.corpus.seed = corpus_seed;
    config.corpus.num_queries = queries.min(topics);
    config.corpus.noise_docs = 25;
    config.ground_truth.max_iterations = 12;
    config
}

/// Built-vs-loaded report fingerprints for one configuration.
fn built_and_loaded_fingerprints(config: &ExperimentConfig, dir: &Path) -> [(usize, u64); 2] {
    std::fs::remove_file(artifact_path(dir, config)).ok();
    let mut out = [(0, 0); 2];
    for (i, expect) in [IndexSource::Built, IndexSource::Loaded].iter().enumerate() {
        let (experiment, stats) = Experiment::build_with_cache(config, Some(dir));
        assert_eq!(stats.index_source, *expect, "pass {i} of {config:?}");
        let json = serde_json::to_string(&experiment.run_parallel(2)).expect("report serializes");
        out[i] = (json.len(), fnv1a(json.as_bytes()));
    }
    out
}

proptest::proptest! {
    /// For arbitrary micro worlds (random seeds and sizes), the report
    /// produced from the loaded artifact is byte-identical to the one
    /// produced by the in-memory build that wrote it.
    #[test]
    fn write_load_report_byte_identical(
        wiki_seed in 0u64..1_000_000,
        corpus_seed in 0u64..1_000_000,
        topics in 3usize..6,
        queries in 1usize..4,
    ) {
        // The shim's proptest! runs 64 cases; keep each world micro.
        let dir = temp_cache("prop");
        let config = micro_config(wiki_seed, corpus_seed, topics, queries);
        let [built, loaded] = built_and_loaded_fingerprints(&config, &dir);
        proptest::prop_assert_eq!(
            built, loaded,
            "loaded-index report diverged for {:?}", config
        );
        std::fs::remove_file(artifact_path(&dir, &config)).ok();
    }
}

/// The same property at the full tiny configuration (the world the
/// golden pins cover), plus artifact reuse across experiments: loading
/// twice from one artifact is stable.
#[test]
fn tiny_config_write_load_stable_across_loads() {
    let dir = temp_cache("tiny");
    let config = ExperimentConfig::tiny();
    let [built, loaded] = built_and_loaded_fingerprints(&config, &dir);
    assert_eq!(built, loaded);
    // A third run loads the same artifact again and still agrees.
    let (experiment, stats) = Experiment::build_with_cache(&config, Some(&dir));
    assert_eq!(stats.index_source, IndexSource::Loaded);
    let json = serde_json::to_string(&experiment.run_parallel(2)).expect("report serializes");
    assert_eq!((json.len(), fnv1a(json.as_bytes())), built);
    std::fs::remove_dir_all(&dir).ok();
}

// ── typed errors through the serving facade ─────────────────────────
//
// `ServingWorld::load` / `cache::load_engine` is the strict serving
// path: unlike `build_experiment` it cannot fall back to rebuilding,
// so every load failure must surface as a typed `ServiceError` — and
// never a panic. The batteries below drive the same corruption space
// the retrieval-crate format tests cover, but through the facade.

/// Persist a micro-world artifact once and return its bytes.
fn planted_artifact(dir: &Path, config: &ExperimentConfig) -> Vec<u8> {
    let path = artifact_path(dir, config);
    std::fs::remove_file(&path).ok();
    let world = ServingWorld::open(config, Some(dir));
    assert_eq!(world.stats.index_source, IndexSource::Built);
    std::fs::read(&path).expect("artifact persisted")
}

/// Every single-byte corruption of the artifact must yield a typed
/// error from the facade's strict loader — never a panic, never a
/// silently wrong engine.
#[test]
fn facade_rejects_every_flipped_byte_with_typed_error() {
    let dir = temp_cache("facade-flip");
    let config = micro_config(7, 11, 3, 1);
    let bytes = planted_artifact(&dir, &config);
    let path = artifact_path(&dir, &config);
    // Cap the battery at ~2k flips so the test stays fast at any
    // artifact size; the step stays 1 (exhaustive) for small files.
    let step = (bytes.len() / 2048).max(1);
    for i in (0..bytes.len()).step_by(step) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xFF;
        std::fs::write(&path, &corrupt).expect("write corrupt artifact");
        match load_engine(&config, &dir, None, LmParams::default()) {
            Err(ServiceError::ArtifactLoad { .. } | ServiceError::ArtifactFingerprint { .. }) => {}
            Err(other) => panic!("byte {i}: unexpected error class {other:?}"),
            Ok(_) => panic!("byte {i}: corrupted artifact loaded successfully"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Every truncation must fail typed as well (the loader's length and
/// checksum validation run before any content is trusted).
#[test]
fn facade_rejects_every_truncation_with_typed_error() {
    let dir = temp_cache("facade-trunc");
    let config = micro_config(13, 17, 3, 1);
    let bytes = planted_artifact(&dir, &config);
    let path = artifact_path(&dir, &config);
    let step = (bytes.len() / 512).max(1);
    for len in (0..bytes.len()).step_by(step) {
        std::fs::write(&path, &bytes[..len]).expect("write truncated artifact");
        let err = load_engine(&config, &dir, None, LmParams::default())
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes loaded successfully"));
        assert!(
            matches!(err, ServiceError::ArtifactLoad { .. }),
            "truncation to {len}: unexpected error class {err:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The non-corruption failure classes, each with its own typed variant:
/// missing artifact, foreign fingerprint (renamed file), stale doc
/// count (generator drift the fingerprint cannot see).
#[test]
fn facade_load_failure_classes_are_distinguished() {
    let dir = temp_cache("facade-classes");
    let config = micro_config(19, 23, 3, 1);

    // Missing: nothing persisted yet.
    std::fs::remove_file(artifact_path(&dir, &config)).ok();
    assert!(matches!(
        ServingWorld::load(&config, &dir),
        Err(ServiceError::ArtifactMissing { .. })
    ));

    // Foreign fingerprint: pose another world's artifact as ours.
    let mut other = config.clone();
    other.wiki.seed ^= 0xBEEF;
    planted_artifact(&dir, &other);
    std::fs::rename(artifact_path(&dir, &other), artifact_path(&dir, &config))
        .expect("rename artifact");
    match load_engine(&config, &dir, None, LmParams::default()) {
        Err(ServiceError::ArtifactFingerprint {
            expected, found, ..
        }) => {
            assert_ne!(expected, found)
        }
        other => panic!("expected ArtifactFingerprint, got {:?}", other.map(|_| ())),
    }

    // Stale: right fingerprint, wrong doc count (only checked when the
    // caller knows the corpus size, as `build_experiment` does).
    let bytes = planted_artifact(&dir, &config);
    std::fs::write(artifact_path(&dir, &config), &bytes).expect("restore artifact");
    let world = ServingWorld::load(&config, &dir).expect("valid artifact loads");
    let docs = world.engine.num_docs();
    match load_engine(&config, &dir, Some(docs + 1), LmParams::default()) {
        Err(ServiceError::ArtifactStale {
            indexed_docs,
            corpus_docs,
            ..
        }) => {
            assert_eq!(indexed_docs, docs);
            assert_eq!(corpus_docs, docs + 1);
        }
        other => panic!("expected ArtifactStale, got {:?}", other.map(|_| ())),
    }
    // Errors render human-readably (the qgx server prints them).
    let err = load_engine(&config, &dir, Some(docs + 1), LmParams::default())
        .err()
        .expect("stale artifact must not load");
    assert!(err.to_string().contains("stale"));
    std::fs::remove_dir_all(&dir).ok();
}

/// A world loaded through the strict facade serves byte-identical
/// expansions to the world that wrote the artifact.
#[test]
fn facade_loaded_world_serves_identical_expansions() {
    use querygraph::core::service::ExpansionRequest;
    let dir = temp_cache("facade-serve");
    let config = micro_config(29, 31, 4, 2);
    std::fs::remove_file(artifact_path(&dir, &config)).ok();
    let built = ServingWorld::open(&config, Some(&dir));
    let loaded = ServingWorld::load(&config, &dir).expect("artifact loads");
    assert_eq!(loaded.stats.index_source, IndexSource::Loaded);
    for article in built.wiki.kb.main_articles().take(5) {
        let request = ExpansionRequest::new(built.wiki.kb.title(article)).with_retrieval(10);
        let a = built.expander().expand(&request);
        let b = loaded.expander().expand(&request);
        assert_eq!(a, b, "expansion diverged for {:?}", request.text);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// One cache directory serves many configurations side by side without
/// cross-talk: artifacts are fingerprint-keyed files.
#[test]
fn cache_dir_holds_multiple_worlds() {
    let dir = temp_cache("multi");
    let a = micro_config(1, 2, 4, 2);
    let b = micro_config(3, 4, 4, 2);
    let fa = built_and_loaded_fingerprints(&a, &dir);
    let fb = built_and_loaded_fingerprints(&b, &dir);
    assert_ne!(fa[0], fb[0], "different worlds must differ");
    assert!(artifact_path(&dir, &a).exists());
    assert!(artifact_path(&dir, &b).exists());
    assert_ne!(artifact_path(&dir, &a), artifact_path(&dir, &b));
    // Both artifacts still load correctly after interleaving.
    let (_, sa) = Experiment::build_with_cache(&a, Some(&dir));
    let (_, sb) = Experiment::build_with_cache(&b, Some(&dir));
    assert_eq!(sa.index_source, IndexSource::Loaded);
    assert_eq!(sb.index_source, IndexSource::Loaded);
    std::fs::remove_dir_all(&dir).ok();
}
