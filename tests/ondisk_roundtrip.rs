//! The persisted index must be invisible end to end: for arbitrary
//! generated worlds, `write → load → Report` is byte-identical to the
//! in-memory build.
//!
//! The retrieval crate's unit tests already pin the format itself
//! (losslessness, checksums, the corruption battery); these tests close
//! the loop at the workspace level, through `Experiment::build_with_cache`
//! and the full §2–§3 pipeline — including the warm phrase dictionary a
//! loaded engine starts with.

use querygraph::core::cache::{artifact_path, IndexSource};
use querygraph::core::experiment::{Experiment, ExperimentConfig};
use querygraph::retrieval::ondisk::fnv1a;
use std::path::{Path, PathBuf};

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "querygraph-ondisk-roundtrip-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp cache dir");
    dir
}

/// A micro world: small enough that one build + two runs cost a few
/// milliseconds, so the property can afford dozens of sampled worlds.
fn micro_config(
    wiki_seed: u64,
    corpus_seed: u64,
    topics: usize,
    queries: usize,
) -> ExperimentConfig {
    let mut config = ExperimentConfig::tiny();
    config.wiki.seed = wiki_seed;
    config.wiki.num_topics = topics;
    config.wiki.articles_per_topic = 6;
    config.corpus.seed = corpus_seed;
    config.corpus.num_queries = queries.min(topics);
    config.corpus.noise_docs = 25;
    config.ground_truth.max_iterations = 12;
    config
}

/// Built-vs-loaded report fingerprints for one configuration.
fn built_and_loaded_fingerprints(config: &ExperimentConfig, dir: &Path) -> [(usize, u64); 2] {
    std::fs::remove_file(artifact_path(dir, config)).ok();
    let mut out = [(0, 0); 2];
    for (i, expect) in [IndexSource::Built, IndexSource::Loaded].iter().enumerate() {
        let (experiment, stats) = Experiment::build_with_cache(config, Some(dir));
        assert_eq!(stats.index_source, *expect, "pass {i} of {config:?}");
        let json = serde_json::to_string(&experiment.run_parallel(2)).expect("report serializes");
        out[i] = (json.len(), fnv1a(json.as_bytes()));
    }
    out
}

proptest::proptest! {
    /// For arbitrary micro worlds (random seeds and sizes), the report
    /// produced from the loaded artifact is byte-identical to the one
    /// produced by the in-memory build that wrote it.
    #[test]
    fn write_load_report_byte_identical(
        wiki_seed in 0u64..1_000_000,
        corpus_seed in 0u64..1_000_000,
        topics in 3usize..6,
        queries in 1usize..4,
    ) {
        // The shim's proptest! runs 64 cases; keep each world micro.
        let dir = temp_cache("prop");
        let config = micro_config(wiki_seed, corpus_seed, topics, queries);
        let [built, loaded] = built_and_loaded_fingerprints(&config, &dir);
        proptest::prop_assert_eq!(
            built, loaded,
            "loaded-index report diverged for {:?}", config
        );
        std::fs::remove_file(artifact_path(&dir, &config)).ok();
    }
}

/// The same property at the full tiny configuration (the world the
/// golden pins cover), plus artifact reuse across experiments: loading
/// twice from one artifact is stable.
#[test]
fn tiny_config_write_load_stable_across_loads() {
    let dir = temp_cache("tiny");
    let config = ExperimentConfig::tiny();
    let [built, loaded] = built_and_loaded_fingerprints(&config, &dir);
    assert_eq!(built, loaded);
    // A third run loads the same artifact again and still agrees.
    let (experiment, stats) = Experiment::build_with_cache(&config, Some(&dir));
    assert_eq!(stats.index_source, IndexSource::Loaded);
    let json = serde_json::to_string(&experiment.run_parallel(2)).expect("report serializes");
    assert_eq!((json.len(), fnv1a(json.as_bytes())), built);
    std::fs::remove_dir_all(&dir).ok();
}

/// One cache directory serves many configurations side by side without
/// cross-talk: artifacts are fingerprint-keyed files.
#[test]
fn cache_dir_holds_multiple_worlds() {
    let dir = temp_cache("multi");
    let a = micro_config(1, 2, 4, 2);
    let b = micro_config(3, 4, 4, 2);
    let fa = built_and_loaded_fingerprints(&a, &dir);
    let fb = built_and_loaded_fingerprints(&b, &dir);
    assert_ne!(fa[0], fb[0], "different worlds must differ");
    assert!(artifact_path(&dir, &a).exists());
    assert!(artifact_path(&dir, &b).exists());
    assert_ne!(artifact_path(&dir, &a), artifact_path(&dir, &b));
    // Both artifacts still load correctly after interleaving.
    let (_, sa) = Experiment::build_with_cache(&a, Some(&dir));
    let (_, sb) = Experiment::build_with_cache(&b, Some(&dir));
    assert_eq!(sa.index_source, IndexSource::Loaded);
    assert_eq!(sb.index_source, IndexSource::Loaded);
    std::fs::remove_dir_all(&dir).ok();
}
