//! HTTP protocol conformance battery for `core::http`.
//!
//! Every test boots a real [`HttpServer`] over the tiny world on an
//! ephemeral port and drives it over actual TCP — the point is the
//! wire behaviour, not the parser in isolation:
//!
//! * byte-identity: `/expand` bodies match the in-process facade's
//!   serialization exactly, success and typed error alike;
//! * hostile input (malformed request lines and headers, oversized
//!   heads and bodies, slowloris partial writes) gets typed 4xx/5xx
//!   answers without hanging or wedging a worker;
//! * keep-alive connections serve several exchanges and concurrent
//!   clients never receive each other's responses;
//! * a full queue sheds at the edge with 503 + `Retry-After`, and a
//!   shutdown request drains in-flight work before `serve` returns.

use querygraph::core::config::ExperimentConfig;
use querygraph::core::http::{self, HttpServer, ServerConfig, StatzSnapshot};
use querygraph::core::service::{ExpansionRequest, QueryExpander, ServingWorld};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Boot a server over the tiny world, run `f` against it, then shut
/// down (panics inside `f` still shut the server down so the scope —
/// and therefore the test — can finish).
fn with_server<F>(config: ServerConfig, f: F)
where
    F: FnOnce(&str, &HttpServer),
{
    let world = ServingWorld::open(&ExperimentConfig::tiny(), None);
    let expander = world.expander();
    run_with_expander(&expander, config, f);
}

fn run_with_expander<F>(expander: &QueryExpander<'_>, config: ServerConfig, f: F)
where
    F: FnOnce(&str, &HttpServer),
{
    let server = HttpServer::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_flag();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve(expander));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(&addr, &server);
        }));
        shutdown.store(true, Ordering::SeqCst);
        handle.join().expect("serve thread").expect("serve result");
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
}

/// One raw exchange: write `request` bytes, read to EOF, return the
/// response text. A read timeout bounds the whole exchange so a
/// misbehaving server fails the test instead of hanging it.
fn raw_exchange(addr: &str, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.write_all(request).expect("write request");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read response");
    String::from_utf8_lossy(&out).into_owned()
}

fn post_expand(addr: &str, text: &str) -> http::HttpResponse {
    let body = serde_json::to_string(&ExpansionRequest::new(text)).expect("request serializes");
    http::post_json(addr, "/expand", &body, Duration::from_secs(10)).expect("exchange")
}

#[test]
fn expand_bodies_are_byte_identical_to_the_in_process_facade() {
    let world = ServingWorld::open(&ExperimentConfig::tiny(), None);
    let expander = world.expander();
    let article = world.wiki.kb.main_articles().next().expect("articles");
    let queries = [
        world.wiki.kb.title(article).to_string(),
        "xyzzy nothing links".to_string(),
    ];
    run_with_expander(&expander, ServerConfig::default(), |addr, _| {
        for query in &queries {
            let over_the_wire = post_expand(addr, query);
            let request = ExpansionRequest::new(query.clone());
            let expected = match expander.expand(&request) {
                Ok(response) => {
                    assert_eq!(over_the_wire.status, 200, "{query}");
                    serde_json::to_string(&response).expect("serializes")
                }
                Err(error) => {
                    assert_eq!(over_the_wire.status, http::status_for(&error), "{query}");
                    http::expand_error_body(query, &error)
                }
            };
            // The socket body is the in-process line plus the trailing
            // newline `qgx replay --json` prints — byte-identical.
            assert_eq!(
                over_the_wire.body_text(),
                format!("{expected}\n"),
                "{query}"
            );
        }
    });
}

#[test]
fn healthz_and_statz_report_live_counters() {
    with_server(ServerConfig::default(), |addr, _| {
        let health = http::get(addr, "/healthz", Duration::from_secs(10)).expect("healthz");
        assert_eq!(health.status, 200);
        assert_eq!(health.body_text(), "ok\n");

        let _ = post_expand(addr, "xyzzy nothing links");
        let statz = http::get(addr, "/statz", Duration::from_secs(10)).expect("statz");
        assert_eq!(statz.status, 200);
        let snapshot: StatzSnapshot =
            serde_json::from_str(statz.body_text().trim()).expect("snapshot parses");
        assert_eq!(snapshot.failures, 1);
        assert_eq!(snapshot.error_codes.get("no_linked_entities"), Some(&1));
        assert_eq!(snapshot.shed, 0);
    });
}

#[test]
fn malformed_input_gets_typed_answers_not_hangs() {
    with_server(ServerConfig::default(), |addr, _| {
        // (request bytes, expected status line fragment, expected code)
        let cases: Vec<(Vec<u8>, &str, &str)> = vec![
            (b"GARBAGE\r\n\r\n".to_vec(), "400", "malformed_request_line"),
            (
                b"GET /healthz HTTP/2.0\r\n\r\n".to_vec(),
                "505",
                "unsupported_version",
            ),
            (
                b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(),
                "400",
                "malformed_header",
            ),
            (
                // Line folding (obsolete continuation) is rejected.
                b"GET /healthz HTTP/1.1\r\nA: b\r\n  folded\r\n\r\n".to_vec(),
                "400",
                "malformed_header",
            ),
            (
                format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(10_000)).into_bytes(),
                "431",
                "request_line_too_long",
            ),
            (
                {
                    let mut r = b"GET /healthz HTTP/1.1\r\n".to_vec();
                    for i in 0..100 {
                        r.extend_from_slice(format!("X-H-{i}: v\r\n").as_bytes());
                    }
                    r.extend_from_slice(b"\r\n");
                    r
                },
                "431",
                "too_many_headers",
            ),
            (
                b"POST /expand HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
                "400",
                "bad_content_length",
            ),
            (
                b"POST /expand HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n".to_vec(),
                "413",
                "body_too_large",
            ),
            (
                b"POST /expand HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
                "501",
                "unsupported_transfer_encoding",
            ),
            (
                b"POST /expand HTTP/1.1\r\n\r\n".to_vec(),
                "411",
                "length_required",
            ),
            (
                b"POST /expand HTTP/1.1\r\nContent-Length: 4\r\n\r\n\xff\xfe\xfd\xfc".to_vec(),
                "400",
                "bad_request",
            ),
            (
                b"POST /expand HTTP/1.1\r\nContent-Length: 8\r\n\r\nnot json".to_vec(),
                "400",
                "bad_request",
            ),
            (
                b"DELETE /expand HTTP/1.1\r\n\r\n".to_vec(),
                "405",
                "method_not_allowed",
            ),
            (
                b"GET /nowhere HTTP/1.1\r\n\r\n".to_vec(),
                "404",
                "not_found",
            ),
        ];
        for (request, status, code) in cases {
            let response = raw_exchange(addr, &request);
            assert!(
                response.starts_with(&format!("HTTP/1.1 {status}")),
                "expected {status} for {code}, got: {}",
                response.lines().next().unwrap_or("<empty>")
            );
            assert!(
                response.contains(&format!("\"code\":\"{code}\"")),
                "expected code {code} in body, got: {response}"
            );
        }
        // The server is still fully alive after the whole battery.
        assert_eq!(post_expand(addr, "probe").status, 404);
    });
}

#[test]
fn slowloris_partial_head_gets_408_within_one_deadline() {
    let config = ServerConfig {
        deadline: Duration::from_millis(300),
        workers: 1,
        ..ServerConfig::default()
    };
    with_server(config, |addr, server| {
        let t0 = Instant::now();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        // Trickle half a request line and stall.
        stream.write_all(b"POST /exp").expect("partial write");
        let mut out = Vec::new();
        stream.read_to_end(&mut out).expect("read");
        let response = String::from_utf8_lossy(&out);
        assert!(
            response.starts_with("HTTP/1.1 408"),
            "slow write must get a typed 408, got: {}",
            response.lines().next().unwrap_or("<empty>")
        );
        assert!(response.contains("Retry-After: 1"), "{response}");
        // Within ~one deadline budget, not a worker-lifetime hang.
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert_eq!(server.stats().timeouts(), 1);
        // The single worker is free again: a real request still lands.
        assert_eq!(post_expand(addr, "probe").status, 404);
    });
}

#[test]
fn idle_connection_closes_silently_after_the_deadline() {
    let config = ServerConfig {
        deadline: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    with_server(config, |addr, server| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut out = Vec::new();
        stream.read_to_end(&mut out).expect("read");
        // No bytes were sent, so no response is owed: silent close,
        // not a 408 (that would spam every idle keep-alive peer).
        assert!(out.is_empty(), "idle close must be silent, got: {out:?}");
        assert_eq!(server.stats().timeouts(), 0);
    });
}

#[test]
fn keep_alive_serves_multiple_exchanges_on_one_connection() {
    with_server(ServerConfig::default(), |addr, server| {
        let body =
            serde_json::to_string(&ExpansionRequest::new("xyzzy nothing links")).expect("json");
        let one = format!(
            "POST /expand HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut responses = Vec::new();
        for _ in 0..3 {
            stream.write_all(one.as_bytes()).expect("write");
            // Read exactly one response: head, then Content-Length bytes.
            let mut buf = Vec::new();
            let mut tmp = [0u8; 1024];
            let body_start = loop {
                let n = stream.read(&mut tmp).expect("read");
                assert!(n > 0, "connection closed mid-exchange");
                buf.extend_from_slice(&tmp[..n]);
                if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                    break pos + 4;
                }
            };
            let head = String::from_utf8_lossy(&buf[..body_start]).into_owned();
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("content-length")
                .trim()
                .parse()
                .expect("numeric");
            while buf.len() < body_start + length {
                let n = stream.read(&mut tmp).expect("read body");
                assert!(n > 0, "connection closed mid-body");
                buf.extend_from_slice(&tmp[..n]);
            }
            assert!(head.starts_with("HTTP/1.1 404"), "{head}");
            assert!(head.contains("Connection: keep-alive"), "{head}");
            responses.push(String::from_utf8_lossy(&buf[body_start..]).into_owned());
        }
        // Three exchanges, one TCP connection, identical answers.
        assert_eq!(responses[0], responses[1]);
        assert_eq!(responses[1], responses[2]);
        assert_eq!(server.stats().connections(), 1);
        assert_eq!(server.stats().failures(), 3);
    });
}

#[test]
fn concurrent_clients_never_receive_each_others_responses() {
    let world = ServingWorld::open(&ExperimentConfig::tiny(), None);
    let expander = world.expander();
    // Distinct unlinkable queries: each response body echoes its own
    // query text, so cross-wired responses are detectable.
    let queries: Vec<String> = (0..8).map(|i| format!("unlinkable zqx{i}")).collect();
    run_with_expander(&expander, ServerConfig::default(), |addr, _| {
        std::thread::scope(|scope| {
            for query in &queries {
                scope.spawn(move || {
                    for _ in 0..5 {
                        let response = post_expand(addr, query);
                        assert_eq!(response.status, 404);
                        let body = response.body_text();
                        assert!(
                            body.contains(&format!(
                                "\"query\":{}",
                                serde_json::to_string(&query.to_string()).expect("json")
                            )),
                            "response for {query:?} carried someone else's body: {body}"
                        );
                    }
                });
            }
        });
    });
}

#[test]
fn full_queue_sheds_at_the_edge_with_503_retry_after() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        deadline: Duration::from_millis(600),
        ..ServerConfig::default()
    };
    with_server(config, |addr, server| {
        // Two idle connections pin the single worker and (racing the
        // worker's first pop) the one-slot queue for a full deadline…
        let hold_a = TcpStream::connect(addr).expect("connect");
        let hold_b = TcpStream::connect(addr).expect("connect");
        // …so of 16 concurrent probes at most a couple can be queued
        // or served; the rest must be shed — every one with a clean,
        // complete 503, never a reset or an empty read.
        let responses: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    scope.spawn(move || {
                        raw_exchange(addr, b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("probe"))
                .collect()
        });
        let shed: Vec<&String> = responses
            .iter()
            .filter(|r| r.starts_with("HTTP/1.1 503"))
            .collect();
        for response in &responses {
            assert!(
                response.starts_with("HTTP/1.1 "),
                "every probe must get a complete HTTP answer, got: {response:?}"
            );
        }
        assert!(
            !shed.is_empty(),
            "16 probes against a pinned 1-worker/1-slot server must shed; statuses: {:?}",
            responses
                .iter()
                .map(|r| r.lines().next().unwrap_or("<empty>"))
                .collect::<Vec<_>>()
        );
        for response in &shed {
            // Overloaded advertises its own (longer) back-off hint.
            assert!(response.contains("Retry-After: 2"), "{response}");
            assert!(response.contains("\"code\":\"overloaded\""), "{response}");
        }
        assert!(server.stats().shed() >= 1);
        drop(hold_a);
        drop(hold_b);
    });
}

#[test]
fn retry_after_carries_each_typed_errors_own_backoff_hint() {
    use querygraph::core::service::{Deadline, ServiceError};
    // The hints come from the typed errors themselves, not a fixed
    // server-side constant — and the two overload shapes differ.
    let timeout_hint = Deadline::after(Duration::from_millis(1))
        .timeout_error()
        .retry_after_seconds()
        .expect("408 is retryable");
    let overload_hint = ServiceError::Overloaded { queue_depth: 1 }
        .retry_after_seconds()
        .expect("503 is retryable");
    assert_ne!(
        timeout_hint, overload_hint,
        "408 and 503 must advertise different back-off hints"
    );
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    with_server(config, |addr, _| {
        // 408: trickle a partial head past the deadline.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        stream.write_all(b"POST /exp").expect("partial write");
        let mut out = Vec::new();
        stream.read_to_end(&mut out).expect("read");
        let response = String::from_utf8_lossy(&out);
        assert!(response.starts_with("HTTP/1.1 408"), "{response}");
        assert!(
            response.contains(&format!("Retry-After: {timeout_hint}\r\n")),
            "408 must carry the Timeout error's own hint: {response}"
        );

        // 503: pin the single worker and the one queue slot, probe
        // until a connection is shed at the edge.
        let _hold_a = TcpStream::connect(addr).expect("connect");
        let _hold_b = TcpStream::connect(addr).expect("connect");
        let mut shed = None;
        for _ in 0..16 {
            let r = raw_exchange(addr, b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
            if r.starts_with("HTTP/1.1 503") {
                shed = Some(r);
                break;
            }
        }
        let shed = shed.expect("a probe against the pinned server must be shed");
        assert!(
            shed.contains(&format!("Retry-After: {overload_hint}\r\n")),
            "503 must carry the Overloaded error's own hint: {shed}"
        );
    });
}

#[test]
fn stats_stay_consistent_under_concurrent_traffic_and_statz_reads() {
    // Stats are now lock-free (atomics + log-bucketed histograms):
    // there is no stats mutex left to poison, so the old
    // poisoned-lock survival test became this one — hammer `/expand`
    // from several threads while another thread reads `/statz`
    // concurrently, then check nothing was lost or double-counted.
    let world = ServingWorld::open(&ExperimentConfig::tiny(), None);
    let expander = world.expander();
    let article = world.wiki.kb.main_articles().next().expect("articles");
    let query = world.wiki.kb.title(article).to_string();
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    run_with_expander(&expander, config, |addr, server| {
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let query = &query;
                scope.spawn(move || {
                    for _ in 0..5 {
                        let response = post_expand(addr, query);
                        assert_eq!(response.status, 200, "{}", response.body_text());
                    }
                });
            }
            // Concurrent observer: every mid-flight snapshot must
            // parse and be monotone-plausible (never more served than
            // requested).
            scope.spawn(move || {
                for _ in 0..10 {
                    let statz = http::get(addr, "/statz", Duration::from_secs(10)).expect("statz");
                    assert_eq!(statz.status, 200);
                    let snapshot: StatzSnapshot =
                        serde_json::from_str(statz.body_text().trim()).expect("snapshot parses");
                    assert!(snapshot.queries_served <= 20);
                }
            });
        });
        assert_eq!(server.stats().queries_served(), 20);
        assert_eq!(server.stats().request_latency().count(), 20);
        let statz = http::get(addr, "/statz", Duration::from_secs(10)).expect("statz");
        assert_eq!(statz.status, 200);
        let snapshot: StatzSnapshot =
            serde_json::from_str(statz.body_text().trim()).expect("snapshot parses");
        assert_eq!(snapshot.queries_served, 20);
        assert!(snapshot.p99_us >= snapshot.p50_us);
    });
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let config = ServerConfig {
        deadline: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    with_server(config, |addr, server| {
        // Open a connection and write the head but not the body yet —
        // the request is in flight when the drain starts.
        let body =
            serde_json::to_string(&ExpansionRequest::new("xyzzy nothing links")).expect("json");
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        stream
            .write_all(
                format!(
                    "POST /expand HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("write head");
        std::thread::sleep(Duration::from_millis(150));
        server.shutdown_flag().store(true, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(50));
        // The drain must still answer the in-flight request…
        stream.write_all(body.as_bytes()).expect("write body");
        let mut out = Vec::new();
        stream.read_to_end(&mut out).expect("read");
        let response = String::from_utf8_lossy(&out);
        assert!(
            response.starts_with("HTTP/1.1 404"),
            "in-flight request must be served during drain, got: {}",
            response.lines().next().unwrap_or("<empty>")
        );
        // …and close the connection (no keep-alive during a drain).
        assert!(response.contains("Connection: close"), "{response}");
    });
}
