//! # querygraph — facade crate
//!
//! One-stop import for the `querygraph` workspace: a production-quality
//! reproduction of *"Understanding Graph Structure of Wikipedia for Query
//! Expansion"* (Guisado-Gámez & Prat-Pérez, 2015, arXiv:1505.01306).
//!
//! The workspace is organized bottom-up (see `DESIGN.md` at the repository
//! root for the full inventory):
//!
//! * [`text`] — normalization, tokenization, interning.
//! * [`graph`] — typed multigraph storage and structural algorithms
//!   (connected components, triangles/TPR, cycle enumeration ≤ 5).
//! * [`wiki`] — the Wikipedia knowledge-base model of the paper's Fig. 1,
//!   a deterministic synthetic Wikipedia generator, and the hand-built
//!   Venice fixture used in the paper's worked examples.
//! * [`corpus`] — the ImageCLEF 2011 XML document model, a minimal XML
//!   parser, and a synthetic corpus/query generator.
//! * [`retrieval`] — positional inverted index, Dirichlet language-model
//!   scoring and the INDRI-like query language (`#combine`, `#1`).
//! * [`link`] — entity linking against article titles with redirect-based
//!   synonym phrases (§2.1).
//! * [`core`] — query graphs, ground-truth hill climbing (§2.2), cycle
//!   analysis (§3), expansion engines, the experiment pipeline that
//!   regenerates every table and figure of the paper, and the serving
//!   facade ([`core::service`]) that answers ad-hoc expansion queries
//!   online.
//!
//! ## Quickstart: serve a query
//!
//! ```
//! use querygraph::core::config::ExperimentConfig;
//! use querygraph::core::service::{ExpansionRequest, ServingWorld};
//!
//! // Build (or load from an on-disk cache) the world once …
//! let world = ServingWorld::open(&ExperimentConfig::tiny(), None);
//! let expander = world.expander();
//! // … then expand ad-hoc queries in microseconds-to-milliseconds.
//! let title = world.wiki.kb.title(world.wiki.kb.main_articles().next().unwrap());
//! let response = expander
//!     .expand(&ExpansionRequest::new(title).with_retrieval(5))
//!     .unwrap();
//! assert!(!response.features.is_empty());
//! ```
//!
//! ## Quickstart: reproduce the paper
//!
//! ```
//! use querygraph::core::experiment::{Experiment, ExperimentConfig};
//!
//! // A miniature end-to-end run: synthesize a Wikipedia + corpus, build
//! // ground truths, and analyze the query graphs.
//! let config = ExperimentConfig::tiny();
//! let experiment = Experiment::build(&config);
//! let report = experiment.run();
//! assert!(report.per_query.len() > 0);
//! ```
//!
//! For the paper's worked example (query #90, "gondola in venice") see
//! `examples/venice_gondola.rs`; for serving see
//! `examples/expand_query.rs` and the `qgx` binary; for the full
//! reproduction harness see `crates/bench/src/bin/repro_all.rs`.

pub use querygraph_core as core;
pub use querygraph_corpus as corpus;
pub use querygraph_graph as graph;
pub use querygraph_link as link;
pub use querygraph_retrieval as retrieval;
pub use querygraph_text as text;
pub use querygraph_wiki as wiki;
