//! The frozen knowledge base: entity storage, title lookup, redirect
//! resolution and projection onto a [`TypedGraph`].
//!
//! ## Node-id layout
//!
//! Article `a` occupies graph node `a.0`; category `c` occupies node
//! `num_articles + c.0`. This makes "is this node an article?" a range
//! check — the cycle analysis (§3) relies on it to count category ratios
//! cheaply.

use crate::schema::{Article, ArticleId, Category, CategoryId};
use querygraph_graph::{EdgeType, GraphBuilder, TypedGraph};
use querygraph_text::normalize;
use std::collections::HashMap;

/// An immutable Wikipedia knowledge base. Build via
/// [`crate::KbBuilder`], load via [`crate::serialize`], or generate via
/// [`crate::synth`] / [`crate::fixture`].
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    articles: Vec<Article>,
    categories: Vec<Category>,
    links: Vec<(ArticleId, ArticleId)>,
    belongs: Vec<(ArticleId, CategoryId)>,
    inside: Vec<(CategoryId, CategoryId)>,
    title_index: HashMap<String, ArticleId>,
    categories_of: Vec<Vec<CategoryId>>,
    redirects_of: Vec<Vec<ArticleId>>,
    graph: TypedGraph,
}

impl KnowledgeBase {
    pub(crate) fn from_parts(
        articles: Vec<Article>,
        categories: Vec<Category>,
        links: Vec<(ArticleId, ArticleId)>,
        belongs: Vec<(ArticleId, CategoryId)>,
        inside: Vec<(CategoryId, CategoryId)>,
        title_index: HashMap<String, ArticleId>,
    ) -> Self {
        let n_articles = articles.len() as u32;
        let n_total = n_articles + categories.len() as u32;

        let mut categories_of: Vec<Vec<CategoryId>> = vec![Vec::new(); articles.len()];
        for &(a, c) in &belongs {
            categories_of[a.index()].push(c);
        }
        for v in &mut categories_of {
            v.sort_unstable();
            v.dedup();
        }

        let mut redirects_of: Vec<Vec<ArticleId>> = vec![Vec::new(); articles.len()];
        for (i, art) in articles.iter().enumerate() {
            if let Some(m) = art.redirect_to {
                redirects_of[m.index()].push(ArticleId(i as u32));
            }
        }

        let mut gb = GraphBuilder::with_capacity(
            n_total,
            links.len() + belongs.len() + inside.len() + articles.len(),
        );
        for &(a, b) in &links {
            if a != b {
                gb.add_edge(a.0, b.0, EdgeType::Link);
            }
        }
        for &(a, c) in &belongs {
            gb.add_edge(a.0, n_articles + c.0, EdgeType::Belongs);
        }
        for &(c, p) in &inside {
            if c != p {
                gb.add_edge(n_articles + c.0, n_articles + p.0, EdgeType::Inside);
            }
        }
        for (i, art) in articles.iter().enumerate() {
            if let Some(m) = art.redirect_to {
                gb.add_edge(i as u32, m.0, EdgeType::Redirect);
            }
        }

        KnowledgeBase {
            articles,
            categories,
            links,
            belongs,
            inside,
            title_index,
            categories_of,
            redirects_of,
            graph: gb.build(),
        }
    }

    // ------------------------------------------------------------------
    // Entity accessors
    // ------------------------------------------------------------------

    /// Number of articles, redirects included.
    pub fn num_articles(&self) -> usize {
        self.articles.len()
    }

    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }

    /// The article record for `a`.
    pub fn article(&self, a: ArticleId) -> &Article {
        &self.articles[a.index()]
    }

    /// Display title of `a`.
    pub fn title(&self, a: ArticleId) -> &str {
        &self.articles[a.index()].title
    }

    /// The category record for `c`.
    pub fn category(&self, c: CategoryId) -> &Category {
        &self.categories[c.index()]
    }

    /// Display name of category `c`.
    pub fn category_name(&self, c: CategoryId) -> &str {
        &self.categories[c.index()].name
    }

    /// Look up an article by title (normalized comparison).
    pub fn article_by_title(&self, title: &str) -> Option<ArticleId> {
        self.title_index.get(&normalize(title)).copied()
    }

    /// Look up by an *already normalized* title (hot path for the entity
    /// linker, which normalizes input text once).
    pub fn article_by_normalized_title(&self, normalized: &str) -> Option<ArticleId> {
        self.title_index.get(normalized).copied()
    }

    /// Iterate all article ids.
    pub fn articles(&self) -> impl Iterator<Item = ArticleId> + '_ {
        (0..self.articles.len() as u32).map(ArticleId)
    }

    /// Iterate all category ids.
    pub fn category_ids(&self) -> impl Iterator<Item = CategoryId> + '_ {
        (0..self.categories.len() as u32).map(CategoryId)
    }

    /// Iterate ids of non-redirect articles only.
    pub fn main_articles(&self) -> impl Iterator<Item = ArticleId> + '_ {
        self.articles().filter(|&a| !self.is_redirect(a))
    }

    // ------------------------------------------------------------------
    // Redirects (§2.1: synonyms come from redirect titles)
    // ------------------------------------------------------------------

    /// True when `a` is a redirect article.
    pub fn is_redirect(&self, a: ArticleId) -> bool {
        self.articles[a.index()].is_redirect()
    }

    /// Resolve `a` to its main article (identity for non-redirects).
    pub fn resolve_redirect(&self, a: ArticleId) -> ArticleId {
        self.articles[a.index()].redirect_to.unwrap_or(a)
    }

    /// The redirect articles pointing at `a` ("the synonyms of t are the
    /// titles of the redirects of a", §2.1).
    pub fn redirects_of(&self, a: ArticleId) -> &[ArticleId] {
        &self.redirects_of[a.index()]
    }

    /// Synonym titles of `a`: the titles of its redirect articles.
    pub fn synonym_titles(&self, a: ArticleId) -> impl Iterator<Item = &str> + '_ {
        self.redirects_of[a.index()]
            .iter()
            .map(move |&r| self.title(r))
    }

    // ------------------------------------------------------------------
    // Categories
    // ------------------------------------------------------------------

    /// The categories `a` belongs to (sorted, deduplicated). Empty only
    /// for redirect articles.
    pub fn categories_of(&self, a: ArticleId) -> &[CategoryId] {
        &self.categories_of[a.index()]
    }

    /// Direct parent categories of `c`.
    pub fn parents_of(&self, c: CategoryId) -> Vec<CategoryId> {
        self.inside
            .iter()
            .filter(|&&(child, _)| child == c)
            .map(|&(_, p)| p)
            .collect()
    }

    // ------------------------------------------------------------------
    // Raw relations (for serialization and stats)
    // ------------------------------------------------------------------

    /// All `link` pairs as recorded.
    pub fn links(&self) -> &[(ArticleId, ArticleId)] {
        &self.links
    }

    /// All `belongs` pairs as recorded.
    pub fn belongs(&self) -> &[(ArticleId, CategoryId)] {
        &self.belongs
    }

    /// All `inside` pairs as recorded.
    pub fn inside(&self) -> &[(CategoryId, CategoryId)] {
        &self.inside
    }

    // ------------------------------------------------------------------
    // Graph projection
    // ------------------------------------------------------------------

    /// The typed graph over all articles and categories. Node-id layout:
    /// articles first, categories after (see module docs).
    pub fn graph(&self) -> &TypedGraph {
        &self.graph
    }

    /// Graph node id of article `a`.
    #[inline]
    pub fn article_node(&self, a: ArticleId) -> u32 {
        a.0
    }

    /// Graph node id of category `c`.
    #[inline]
    pub fn category_node(&self, c: CategoryId) -> u32 {
        self.articles.len() as u32 + c.0
    }

    /// True when graph node `u` is an article (redirects included).
    #[inline]
    pub fn node_is_article(&self, u: u32) -> bool {
        (u as usize) < self.articles.len()
    }

    /// True when graph node `u` is a category.
    #[inline]
    pub fn node_is_category(&self, u: u32) -> bool {
        !self.node_is_article(u) && (u as usize) < self.articles.len() + self.categories.len()
    }

    /// Map a graph node back to an article id, if it is one.
    #[inline]
    pub fn node_article(&self, u: u32) -> Option<ArticleId> {
        self.node_is_article(u).then_some(ArticleId(u))
    }

    /// Map a graph node back to a category id, if it is one.
    #[inline]
    pub fn node_category(&self, u: u32) -> Option<CategoryId> {
        self.node_is_category(u)
            .then(|| CategoryId(u - self.articles.len() as u32))
    }

    /// Human-readable label of a graph node (title or category name) —
    /// used by examples and debug output.
    pub fn node_label(&self, u: u32) -> &str {
        if let Some(a) = self.node_article(u) {
            self.title(a)
        } else if let Some(c) = self.node_category(u) {
            self.category_name(c)
        } else {
            "<out of range>"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;

    fn small_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let venice = b.add_article("Venice");
        let gondola = b.add_article("Gondola");
        let canal = b.add_article("Grand Canal (Venice)");
        let cities = b.add_category("Cities and towns in Veneto");
        let boats = b.add_category("Boat types");
        let waterways = b.add_category("Waterways of Italy");
        let italy = b.add_category("Italy");
        b.belongs(venice, cities);
        b.belongs(gondola, boats);
        b.belongs(canal, waterways);
        b.inside(cities, italy);
        b.inside(waterways, italy);
        b.link_reciprocal(venice, gondola);
        b.link(canal, venice);
        let _serenissima = b.add_redirect("La Serenissima", venice);
        let _canalazzo = b.add_redirect("Canalazzo", canal);
        b.build().unwrap()
    }

    #[test]
    fn counts() {
        let kb = small_kb();
        assert_eq!(kb.num_articles(), 5);
        assert_eq!(kb.num_categories(), 4);
        assert_eq!(kb.main_articles().count(), 3);
    }

    #[test]
    fn title_lookup_is_normalized() {
        let kb = small_kb();
        let canal = kb.article_by_title("grand canal (VENICE)").unwrap();
        assert_eq!(kb.title(canal), "Grand Canal (Venice)");
        assert!(kb.article_by_title("Rialto").is_none());
    }

    #[test]
    fn redirect_resolution() {
        let kb = small_kb();
        let ser = kb.article_by_title("La Serenissima").unwrap();
        let venice = kb.article_by_title("Venice").unwrap();
        assert!(kb.is_redirect(ser));
        assert_eq!(kb.resolve_redirect(ser), venice);
        assert_eq!(kb.resolve_redirect(venice), venice);
        assert_eq!(kb.redirects_of(venice), &[ser]);
        let syns: Vec<&str> = kb.synonym_titles(venice).collect();
        assert_eq!(syns, vec!["La Serenissima"]);
    }

    #[test]
    fn categories_of_articles() {
        let kb = small_kb();
        let venice = kb.article_by_title("Venice").unwrap();
        assert_eq!(kb.categories_of(venice).len(), 1);
        assert_eq!(
            kb.category_name(kb.categories_of(venice)[0]),
            "Cities and towns in Veneto"
        );
        let ser = kb.article_by_title("La Serenissima").unwrap();
        assert!(kb.categories_of(ser).is_empty());
    }

    #[test]
    fn parents() {
        let kb = small_kb();
        let cities = CategoryId(0);
        let italy = CategoryId(3);
        assert_eq!(kb.parents_of(cities), vec![italy]);
        assert!(kb.parents_of(italy).is_empty());
    }

    #[test]
    fn node_layout() {
        let kb = small_kb();
        let venice = kb.article_by_title("Venice").unwrap();
        let vn = kb.article_node(venice);
        assert!(kb.node_is_article(vn));
        assert_eq!(kb.node_article(vn), Some(venice));
        let cn = kb.category_node(CategoryId(0));
        assert!(kb.node_is_category(cn));
        assert_eq!(kb.node_category(cn), Some(CategoryId(0)));
        assert_eq!(cn, 5); // after the 5 articles
        assert_eq!(kb.node_label(vn), "Venice");
        assert_eq!(kb.node_label(cn), "Cities and towns in Veneto");
    }

    #[test]
    fn graph_edges_match_relations() {
        let kb = small_kb();
        let g = kb.graph();
        // 3 links (reciprocal pair + one), 3 belongs, 2 inside, 2 redirects.
        assert_eq!(g.count_edges_of_type(EdgeType::Link), 3);
        assert_eq!(g.count_edges_of_type(EdgeType::Belongs), 3);
        assert_eq!(g.count_edges_of_type(EdgeType::Inside), 2);
        assert_eq!(g.count_edges_of_type(EdgeType::Redirect), 2);
    }

    #[test]
    fn reciprocal_pair_forms_two_cycle() {
        let kb = small_kb();
        let venice = kb.article_by_title("Venice").unwrap();
        let gondola = kb.article_by_title("Gondola").unwrap();
        assert_eq!(
            kb.graph()
                .pair_multiplicity(kb.article_node(venice), kb.article_node(gondola)),
            2
        );
    }
}
