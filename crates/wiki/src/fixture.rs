//! A hand-built mini-Wikipedia reproducing the paper's worked examples.
//!
//! The fixture models the neighbourhood of query #90 of ImageCLEF 2011 —
//! **"gondola in venice"** — whose query graph the paper draws in Fig. 3,
//! with the three example cycles of Fig. 4:
//!
//! * length 2 (Fig. 4a): `Venice ↔ Cannaregio` reciprocal links;
//! * length 3 (Fig. 4b): `Venice – Grand Canal (Venice) – Palazzo Bembo`;
//! * length 4 (Fig. 4c): `Venice – (cat) Venice – (cat) Visitor
//!   attractions in Venice – Bridge of Sighs`;
//!
//! plus the category-free trap of Fig. 8, `Sheep – Quarantine – Anthrax`:
//! a length-3 cycle of pure links with **no** category, which introduces
//! semantically distant expansion features ("sheep" from "anthrax") that
//! diminish retrieval quality — the paper's motivating counter-example
//! for its ≈30 % category-ratio finding.
//!
//! The node names follow Fig. 3 where possible.

use crate::builder::KbBuilder;
use crate::kb::KnowledgeBase;

/// The query keywords of ImageCLEF query #90 as used in the paper.
pub const VENICE_QUERY: &str = "gondola in venice";

/// Titles of the two query articles L(q.k) of query #90.
pub const VENICE_QUERY_ARTICLES: [&str; 2] = ["Gondola", "Venice"];

/// Build the Venice mini-Wikipedia. Deterministic: no randomness, stable
/// ids (articles in insertion order).
///
/// The fixture holds 22 articles (5 of them redirects) and 14 categories,
/// wired so that the cycle census around the query articles matches the
/// paper's qualitative observations (dense short cycles with categories
/// around good features; a category-free cycle around the trap).
pub fn venice_mini_wiki() -> KnowledgeBase {
    let mut b = KbBuilder::new();

    // ---------------- articles (Fig. 3 node names) ----------------
    let venice = b.add_article("Venice");
    let gondola = b.add_article("Gondola");
    let cannaregio = b.add_article("Cannaregio");
    let grand_canal = b.add_article("Grand Canal (Venice)");
    let palazzo_bembo = b.add_article("Palazzo Bembo");
    let bridge_of_sighs = b.add_article("Bridge of Sighs");
    let cannaregio_canal = b.add_article("Cannaregio Canal");
    let regatta = b.add_article("Regatta");
    let canaletto = b.add_article("Canaletto");
    let gondolier = b.add_article("Gondolier");
    let windsurfing = b.add_article("Windsurfing");
    let mekhitarist = b.add_article("Mekhitarist Order");
    let sheep = b.add_article("Sheep");
    let quarantine = b.add_article("Quarantine");
    let anthrax = b.add_article("Anthrax");
    let hand_colouring = b.add_article("Hand-colouring of photographs");
    let copying = b.add_article("Copying");

    // ---------------- categories ----------------
    let cat_venice = b.add_category("Venice");
    let cat_attractions = b.add_category("Visitor attractions in Venice");
    let cat_transport = b.add_category("Transport in Venice");
    let cat_canals = b.add_category("Canals in Italy");
    let cat_bridges = b.add_category("Bridges in Venice");
    let cat_sestieri = b.add_category("Sestieri of Venice");
    let cat_boats = b.add_category("Boat types");
    let cat_people = b.add_category("People from Venice (city)");
    let cat_painters = b.add_category("Venetian painters");
    let cat_regattas = b.add_category("Sailing regattas");
    let cat_cities = b.add_category("Cities and towns in Veneto");
    let cat_animals = b.add_category("Domesticated animals");
    let cat_health = b.add_category("Public health");
    let cat_diseases = b.add_category("Infectious diseases");

    // ---------------- category tree ----------------
    b.inside(cat_attractions, cat_venice);
    b.inside(cat_transport, cat_venice);
    b.inside(cat_sestieri, cat_venice);
    b.inside(cat_bridges, cat_attractions);
    b.inside(cat_people, cat_venice);

    // ---------------- belongs ----------------
    b.belongs(venice, cat_venice);
    b.belongs(venice, cat_cities);
    b.belongs(gondola, cat_boats);
    b.belongs(gondola, cat_transport);
    b.belongs(cannaregio, cat_sestieri);
    b.belongs(cannaregio, cat_venice);
    b.belongs(grand_canal, cat_canals);
    b.belongs(grand_canal, cat_transport);
    b.belongs(palazzo_bembo, cat_attractions);
    b.belongs(bridge_of_sighs, cat_attractions);
    b.belongs(bridge_of_sighs, cat_bridges);
    b.belongs(cannaregio_canal, cat_canals);
    b.belongs(cannaregio_canal, cat_sestieri);
    b.belongs(regatta, cat_regattas);
    b.belongs(regatta, cat_transport);
    b.belongs(canaletto, cat_painters);
    b.belongs(canaletto, cat_people);
    b.belongs(gondolier, cat_transport);
    b.belongs(gondolier, cat_people);
    b.belongs(windsurfing, cat_regattas);
    b.belongs(mekhitarist, cat_venice);
    b.belongs(sheep, cat_animals);
    b.belongs(quarantine, cat_health);
    b.belongs(anthrax, cat_diseases);
    b.belongs(hand_colouring, cat_people); // loose attachment, as in Fig. 3
    b.belongs(copying, cat_health); // arbitrary distant category

    // ---------------- links ----------------
    // Fig. 4a: length-2 cycle via reciprocal links.
    b.link_reciprocal(venice, cannaregio);
    // Fig. 4b: length-3 cycle venice – grand canal – palazzo bembo.
    b.link(venice, grand_canal);
    b.link(grand_canal, palazzo_bembo);
    b.link(palazzo_bembo, venice);
    // Fig. 4c: length-4 cycle closes through the two categories; the
    // article-level edge is venice → bridge of sighs.
    b.link(venice, bridge_of_sighs);
    // Query-article wiring.
    b.link_reciprocal(gondola, venice);
    b.link(gondola, gondolier);
    b.link(gondolier, gondola); // reciprocal by parts
    b.link(gondola, grand_canal);
    b.link(gondola, regatta);
    b.link(cannaregio, cannaregio_canal);
    b.link(cannaregio_canal, grand_canal);
    b.link(canaletto, venice);
    b.link(canaletto, grand_canal);
    b.link(regatta, windsurfing);
    b.link(mekhitarist, venice);
    // Fig. 8 trap: category-free link triangle.
    b.link(sheep, quarantine);
    b.link(quarantine, anthrax);
    b.link(anthrax, sheep);
    // Distant chain touching the trap.
    b.link(copying, hand_colouring);
    b.link(hand_colouring, canaletto);

    // ---------------- redirects ----------------
    b.add_redirect("Ponte dei Sospiri", bridge_of_sighs);
    b.add_redirect("Regata", regatta);
    b.add_redirect("The Canal", grand_canal);
    b.add_redirect("La Serenissima", venice);
    b.add_redirect("Gondoliere", gondolier);

    b.build()
        .expect("venice fixture must satisfy all schema invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use querygraph_graph::cycles::CycleFinder;

    #[test]
    fn builds_and_counts() {
        let kb = venice_mini_wiki();
        assert_eq!(kb.num_articles(), 22);
        assert_eq!(kb.num_categories(), 14);
        assert_eq!(kb.main_articles().count(), 17);
    }

    #[test]
    fn query_articles_resolve() {
        let kb = venice_mini_wiki();
        for t in VENICE_QUERY_ARTICLES {
            assert!(kb.article_by_title(t).is_some(), "missing {t}");
        }
    }

    #[test]
    fn fig_4a_two_cycle_exists() {
        let kb = venice_mini_wiki();
        let venice = kb.article_by_title("Venice").unwrap();
        let cann = kb.article_by_title("Cannaregio").unwrap();
        assert!(
            kb.graph()
                .pair_multiplicity(kb.article_node(venice), kb.article_node(cann))
                >= 2
        );
    }

    #[test]
    fn fig_4b_three_cycle_exists() {
        let kb = venice_mini_wiki();
        let v = kb.article_node(kb.article_by_title("Venice").unwrap());
        let gc = kb.article_node(kb.article_by_title("Grand Canal (Venice)").unwrap());
        let pb = kb.article_node(kb.article_by_title("Palazzo Bembo").unwrap());
        let cycles = CycleFinder::new(kb.graph())
            .min_len(3)
            .max_len(3)
            .find_all();
        assert!(
            cycles.iter().any(|c| {
                let mut n = c.nodes.clone();
                n.sort_unstable();
                let mut want = vec![v, gc, pb];
                want.sort_unstable();
                n == want
            }),
            "triangle venice–grand canal–palazzo bembo not found"
        );
    }

    #[test]
    fn fig_4c_four_cycle_exists() {
        let kb = venice_mini_wiki();
        let v = kb.article_node(kb.article_by_title("Venice").unwrap());
        let bs = kb.article_node(kb.article_by_title("Bridge of Sighs").unwrap());
        let cv = kb.category_node(
            kb.category_ids()
                .find(|&c| kb.category_name(c) == "Venice")
                .unwrap(),
        );
        let ca = kb.category_node(
            kb.category_ids()
                .find(|&c| kb.category_name(c) == "Visitor attractions in Venice")
                .unwrap(),
        );
        let cycles = CycleFinder::new(kb.graph())
            .min_len(4)
            .max_len(4)
            .find_all();
        assert!(
            cycles.iter().any(|c| {
                let mut n = c.nodes.clone();
                n.sort_unstable();
                let mut want = vec![v, bs, cv, ca];
                want.sort_unstable();
                n == want
            }),
            "4-cycle of Fig. 4c not found"
        );
    }

    #[test]
    fn fig_8_trap_is_category_free() {
        let kb = venice_mini_wiki();
        let s = kb.article_node(kb.article_by_title("Sheep").unwrap());
        let q = kb.article_node(kb.article_by_title("Quarantine").unwrap());
        let a = kb.article_node(kb.article_by_title("Anthrax").unwrap());
        let cycles = CycleFinder::new(kb.graph())
            .min_len(3)
            .max_len(3)
            .find_all();
        let trap = cycles.iter().find(|c| {
            let mut n = c.nodes.clone();
            n.sort_unstable();
            let mut want = vec![s, q, a];
            want.sort_unstable();
            n == want
        });
        let trap = trap.expect("sheep–quarantine–anthrax cycle must exist");
        assert!(
            trap.nodes.iter().all(|&u| kb.node_is_article(u)),
            "the trap cycle must contain no category"
        );
    }

    #[test]
    fn redirects_resolve_to_mains() {
        let kb = venice_mini_wiki();
        let pairs = [
            ("Ponte dei Sospiri", "Bridge of Sighs"),
            ("Regata", "Regatta"),
            ("The Canal", "Grand Canal (Venice)"),
            ("La Serenissima", "Venice"),
            ("Gondoliere", "Gondolier"),
        ];
        for (alias, main) in pairs {
            let r = kb.article_by_title(alias).unwrap();
            let m = kb.article_by_title(main).unwrap();
            assert!(kb.is_redirect(r));
            assert_eq!(kb.resolve_redirect(r), m, "{alias} → {main}");
        }
    }

    #[test]
    fn synonym_titles_flow_from_redirects() {
        let kb = venice_mini_wiki();
        let venice = kb.article_by_title("Venice").unwrap();
        let syns: Vec<&str> = kb.synonym_titles(venice).collect();
        assert_eq!(syns, vec!["La Serenissima"]);
    }

    #[test]
    fn deterministic_construction() {
        let a = venice_mini_wiki();
        let b = venice_mini_wiki();
        assert_eq!(a.num_articles(), b.num_articles());
        for id in a.articles() {
            assert_eq!(a.title(id), b.title(id));
        }
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    }
}
