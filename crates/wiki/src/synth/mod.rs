//! Deterministic synthetic Wikipedia generator.
//!
//! The paper runs on the real English Wikipedia; this reproduction cannot
//! ship that dump, so it generates a topic-clustered knowledge base with
//! the same *local* structure the analysis depends on (DESIGN.md §1):
//!
//! * **Topic clusters.** Articles belong to topics; each topic has a hub
//!   article, satellite articles, a root category and sub-categories.
//!   Intra-topic links plus shared categories create exactly the cycle
//!   inventory the paper studies: reciprocal links → length-2 cycles;
//!   link + shared category → length-3 cycles with category ratio ⅓;
//!   two articles sharing two categories → length-4 cycles with ratio ½.
//! * **Link reciprocity.** A configurable fraction of linked pairs is
//!   reciprocal, calibrated to the paper's measured 11.47 %.
//! * **Cross-topic noise.** Random cross-topic links and deliberate
//!   category-free link triangles ("traps", Fig. 8) reproduce the
//!   semantically-distant cycles that hurt expansion quality.
//! * **Redirects.** A fraction of articles get alias redirects, built
//!   from a reserved prefix pool, exercising the synonym-phrase machinery
//!   of the entity linker (§2.1).
//!
//! Everything is driven by a single `u64` seed; the same config + seed
//! always produces an identical knowledge base.

pub mod vocab;

use crate::builder::KbBuilder;
use crate::kb::KnowledgeBase;
use crate::schema::{ArticleId, CategoryId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic Wikipedia. All probabilities are in
/// `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthWikiConfig {
    /// RNG seed; same seed + config ⇒ identical output.
    pub seed: u64,
    /// Number of topics (≤ `vocab::TOPIC_NOUNS.len()`).
    pub num_topics: usize,
    /// Non-redirect articles per topic (hub included).
    pub articles_per_topic: usize,
    /// Sub-categories per topic (the root category is extra).
    pub categories_per_topic: usize,
    /// Probability that a link gets a reciprocal partner (paper's
    /// Wikipedia measurement: ≈ 0.1147 of connected pairs).
    pub reciprocity: f64,
    /// Mean intra-topic links per article (besides hub links).
    pub intra_links_per_article: f64,
    /// Probability that the hub links a given satellite.
    pub hub_link_prob: f64,
    /// Probability an article gets one cross-topic link.
    pub cross_link_prob: f64,
    /// Probability a satellite belongs to a category of a neighbouring
    /// topic (inter-topic category bridges).
    pub cross_category_prob: f64,
    /// Probability an article receives a redirect alias.
    pub redirect_prob: f64,
    /// Number of category-free link triangles spanning three topics
    /// (Fig. 8 traps).
    pub trap_triangles: usize,
    /// Mean number of *attribute* categories per satellite article —
    /// cross-cutting categories like Wikipedia's "1712 establishments"
    /// that group unrelated articles. They inflate the category share of
    /// query graphs (Table 3) without creating triangles (they attach to
    /// one in-graph article each), pulling the TPR toward the paper's
    /// ≈ 0.3.
    pub attribute_categories_per_article: f64,
}

impl SynthWikiConfig {
    /// The default experiment-scale configuration (matches the scale used
    /// by the reproduction harness: ~50 topics ≈ the 50 ImageCLEF
    /// queries).
    pub fn default_experiment() -> Self {
        SynthWikiConfig {
            seed: 0x5EED_CAFE,
            num_topics: 50,
            articles_per_topic: 30,
            categories_per_topic: 8,
            reciprocity: 0.08,
            intra_links_per_article: 4.0,
            hub_link_prob: 0.8,
            cross_link_prob: 0.25,
            cross_category_prob: 0.08,
            redirect_prob: 0.3,
            trap_triangles: 40,
            attribute_categories_per_article: 1.6,
        }
    }

    /// The paper-scale **stress** configuration: 100k+ non-redirect
    /// articles (the real ImageCLEF collection has ~237k documents and
    /// the English Wikipedia millions of articles; seed scale is 1.5k).
    /// Satellite titles beyond the base patterns use the combinatorial
    /// adjective × object / adjective × place patterns of
    /// `satellite_title`, so every title stays unique by
    /// construction. Generation remains single-seed deterministic.
    pub fn stress() -> Self {
        SynthWikiConfig {
            seed: 0x57E5_5CAF,
            num_topics: 60,
            articles_per_topic: 1700, // 60 × 1700 = 102k main articles
            categories_per_topic: 10,
            reciprocity: 0.08,
            intra_links_per_article: 4.0,
            hub_link_prob: 0.8,
            cross_link_prob: 0.25,
            cross_category_prob: 0.08,
            redirect_prob: 0.1,
            trap_triangles: 400,
            attribute_categories_per_article: 1.6,
        }
    }

    /// A miniature configuration for fast unit tests.
    pub fn small() -> Self {
        SynthWikiConfig {
            seed: 7,
            num_topics: 6,
            articles_per_topic: 8,
            categories_per_topic: 3,
            reciprocity: 0.2,
            intra_links_per_article: 2.0,
            hub_link_prob: 0.9,
            cross_link_prob: 0.2,
            cross_category_prob: 0.1,
            redirect_prob: 0.4,
            trap_triangles: 3,
            attribute_categories_per_article: 1.0,
        }
    }
}

/// Per-topic bookkeeping the corpus generator consumes.
#[derive(Debug, Clone)]
pub struct TopicInfo {
    /// The topic's unique noun (also the hub article's title).
    pub name: String,
    /// The hub article.
    pub hub: ArticleId,
    /// All non-redirect articles of the topic, hub first.
    pub articles: Vec<ArticleId>,
    /// Root category followed by sub-categories.
    pub categories: Vec<CategoryId>,
}

/// A generated knowledge base plus its topic structure.
#[derive(Debug, Clone)]
pub struct SynthWiki {
    /// The validated knowledge base.
    pub kb: KnowledgeBase,
    /// Topic inventory, indexed by topic id.
    pub topics: Vec<TopicInfo>,
    /// The config that produced this instance.
    pub config: SynthWikiConfig,
}

impl SynthWiki {
    /// Topic ids adjacent on the topic ring (used for cross-topic noise
    /// and drift documents).
    pub fn neighbor_topics(&self, t: usize) -> [usize; 2] {
        let n = self.topics.len();
        [(t + 1) % n, (t + n - 1) % n]
    }
}

/// Generate a synthetic Wikipedia from `config`.
///
/// Each topic consumes **two** unique nouns: one names the hub article
/// (and the topic's categories), the other seeds every satellite title.
/// Keeping the hub noun out of satellite titles is essential — if the
/// hub word occurred inside satellite titles, a bare keyword query
/// would token-match every relevant document and the vocabulary
/// mismatch the paper studies would vanish.
///
/// # Panics
/// If `config.num_topics` exceeds half the vocabulary, or per-topic
/// sizes exceed what the disjoint pools can name uniquely.
pub fn generate(config: &SynthWikiConfig) -> SynthWiki {
    assert!(
        config.num_topics <= vocab::TOPIC_NOUNS.len() / 2,
        "at most {} topics supported",
        vocab::TOPIC_NOUNS.len() / 2
    );
    let max_sat = max_satellites_per_topic();
    assert!(
        config.articles_per_topic <= max_sat,
        "at most {max_sat} articles per topic supported"
    );
    assert!(
        config.categories_per_topic <= vocab::CATEGORY_SUFFIXES.len(),
        "at most {} sub-categories per topic",
        vocab::CATEGORY_SUFFIXES.len()
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = KbBuilder::new();

    // Global root of the category tree.
    let global_root = b.add_category("main topic classifications");

    // Cross-cutting attribute categories ("{place} {suffix}"), shared
    // by unrelated articles across topics — the "1697 births" /
    // "2005 novels" style categories visible in the paper's Fig. 3.
    let n_attr = (config.num_topics * 4)
        .min(vocab::PLACES.len() * vocab::CATEGORY_SUFFIXES.len())
        .max(1);
    let mut attr_cats: Vec<CategoryId> = Vec::with_capacity(n_attr);
    for i in 0..n_attr {
        let place = vocab::PLACES[i % vocab::PLACES.len()];
        let suffix = vocab::CATEGORY_SUFFIXES[i / vocab::PLACES.len()];
        let c = b.add_category(format!("{place} {suffix}"));
        b.inside(c, global_root);
        attr_cats.push(c);
    }

    // ---- entities, topic by topic (deterministic order) ----
    let mut topics: Vec<TopicInfo> = Vec::with_capacity(config.num_topics);
    for t in 0..config.num_topics {
        let noun = vocab::TOPIC_NOUNS[2 * t];
        let sat_noun = vocab::TOPIC_NOUNS[2 * t + 1];

        let root_cat = b.add_category(noun.to_string());
        b.inside(root_cat, global_root);
        let mut categories = vec![root_cat];
        for s in 0..config.categories_per_topic {
            let c = b.add_category(format!("{noun} {}", vocab::CATEGORY_SUFFIXES[s]));
            b.inside(c, root_cat);
            categories.push(c);
        }

        let hub = b.add_article(noun.to_string());
        b.belongs(hub, root_cat);
        if categories.len() > 1 {
            b.belongs(hub, categories[1]);
        }

        let mut articles = vec![hub];
        for i in 1..config.articles_per_topic {
            let title = satellite_title(sat_noun, i);
            let a = b.add_article(title);
            // 2–3 sub-categories of the own topic (Wikipedia articles
            // average several; Table 3's category-dominated components
            // depend on this).
            let sub = &categories[1..];
            if sub.is_empty() {
                b.belongs(a, root_cat);
            } else {
                let mut chosen: Vec<CategoryId> = Vec::with_capacity(3);
                let want = 2 + usize::from(rng.gen_bool(0.5));
                let mut guard = 0;
                while chosen.len() < want.min(sub.len()) && guard < 20 {
                    let c = sub[rng.gen_range(0..sub.len())];
                    if !chosen.contains(&c) {
                        chosen.push(c);
                        b.belongs(a, c);
                    }
                    guard += 1;
                }
            }
            // Attribute categories (unique-ish per article).
            let n_extra = sample_count(&mut rng, config.attribute_categories_per_article);
            let mut attached: Vec<CategoryId> = Vec::new();
            for _ in 0..n_extra {
                let c = attr_cats[rng.gen_range(0..attr_cats.len())];
                if !attached.contains(&c) {
                    attached.push(c);
                    b.belongs(a, c);
                }
            }
            articles.push(a);
        }

        topics.push(TopicInfo {
            name: noun.to_string(),
            hub,
            articles,
            categories,
        });
    }

    // ---- cross-topic category bridges ----
    for t in 0..config.num_topics {
        let right = (t + 1) % config.num_topics;
        // Immutable borrows: copy out what's needed first.
        let sat_articles: Vec<ArticleId> = topics[t].articles[1..].to_vec();
        let neighbor_cats: Vec<CategoryId> = topics[right].categories[1..].to_vec();
        if neighbor_cats.is_empty() {
            continue;
        }
        for a in sat_articles {
            if rng.gen_bool(config.cross_category_prob) {
                let c = neighbor_cats[rng.gen_range(0..neighbor_cats.len())];
                b.belongs(a, c);
            }
        }
    }

    // ---- links ----
    #[allow(clippy::needless_range_loop)] // `t` also derives ring neighbours
    for t in 0..config.num_topics {
        let arts = topics[t].articles.clone();
        let hub = topics[t].hub;
        // Hub ↔ satellites.
        for &a in &arts[1..] {
            if rng.gen_bool(config.hub_link_prob) {
                b.link(hub, a);
                if rng.gen_bool(config.reciprocity) {
                    b.link(a, hub);
                }
            }
        }
        // Satellite → satellite intra links. Skip pairs whose reverse
        // direction already exists so reciprocity stays calibrated: only
        // the explicit branch below creates reciprocal pairs.
        let mean = config.intra_links_per_article;
        for &a in &arts[1..] {
            let k = sample_count(&mut rng, mean);
            for _ in 0..k {
                let other = arts[rng.gen_range(0..arts.len())];
                if other != a && !b.has_link(other, a) {
                    b.link(a, other);
                    if rng.gen_bool(config.reciprocity) {
                        b.link(other, a);
                    }
                }
            }
        }
        // Cross-topic links (mostly ring neighbours, sometimes far).
        for &a in &arts {
            if rng.gen_bool(config.cross_link_prob) {
                let target_topic = if rng.gen_bool(0.7) {
                    if rng.gen_bool(0.5) {
                        (t + 1) % config.num_topics
                    } else {
                        (t + config.num_topics - 1) % config.num_topics
                    }
                } else {
                    rng.gen_range(0..config.num_topics)
                };
                if target_topic != t {
                    let ta = &topics[target_topic].articles;
                    let other = ta[rng.gen_range(0..ta.len())];
                    b.link(a, other);
                }
            }
        }
    }

    // ---- Fig. 8 traps: category-free link triangles across 3 topics ----
    if config.num_topics >= 3 {
        for _ in 0..config.trap_triangles {
            let t1 = rng.gen_range(0..config.num_topics);
            let t2 = (t1 + 1 + rng.gen_range(0..config.num_topics - 1)) % config.num_topics;
            let mut t3 = (t2 + 1 + rng.gen_range(0..config.num_topics - 1)) % config.num_topics;
            if t3 == t1 {
                t3 = (t3 + 1) % config.num_topics;
                if t3 == t2 {
                    t3 = (t3 + 1) % config.num_topics;
                }
            }
            let pick = |rng: &mut StdRng, topic: &TopicInfo| {
                topic.articles[rng.gen_range(0..topic.articles.len())]
            };
            let a1 = pick(&mut rng, &topics[t1]);
            let a2 = pick(&mut rng, &topics[t2]);
            let a3 = pick(&mut rng, &topics[t3]);
            b.link(a1, a2);
            b.link(a2, a3);
            b.link(a3, a1);
        }
    }

    // ---- redirects ----
    let mut alias_round = 0usize;
    for topic in topics.iter().take(config.num_topics) {
        let arts = topic.articles.clone();
        for &a in &arts {
            if rng.gen_bool(config.redirect_prob) {
                let prefix = vocab::ALIAS_PREFIXES[alias_round % vocab::ALIAS_PREFIXES.len()];
                alias_round += 1;
                // Prefixing with a reserved word keeps the alias unique:
                // the base title is unique and prefixes never occur in
                // titles.
                let title = format!("{prefix} {}", b.staged_title(a));
                b.add_redirect(title, a);
            }
        }
    }

    let kb = b.build().expect("generated KB must validate");
    SynthWiki {
        kb,
        topics,
        config: config.clone(),
    }
}

/// Capacity of the three rotating base patterns — the boundary where
/// [`satellite_title`] switches to the combinatorial patterns.
fn base_satellites_per_topic() -> usize {
    3 * vocab::ADJECTIVES
        .len()
        .min(vocab::OBJECTS.len())
        .min(vocab::PLACES.len())
}

/// The largest `articles_per_topic` the title patterns can name
/// uniquely: the three base patterns, then the two combinatorial
/// stress-scale patterns (see `satellite_title`).
pub fn max_satellites_per_topic() -> usize {
    base_satellites_per_topic()
        + vocab::ADJECTIVES.len() * vocab::OBJECTS.len()
        + vocab::ADJECTIVES.len() * vocab::PLACES.len()
}

/// Title of satellite `i` (1-based within topic) for topic `noun`.
///
/// The first `3·min(pool)` satellites rotate the base patterns so
/// multi-word titles of width 2 and 3 both occur; beyond that (the
/// stress configuration) titles come from combinatorial patterns over
/// two pools. Every pattern embeds the topic's unique satellite noun
/// and has a distinct shape (word count + which pool leads), so titles
/// are unique within and across topics by construction:
///
/// | # | pattern                | count            |
/// |---|------------------------|------------------|
/// | 0 | `adj noun`             | base ÷ 3         |
/// | 1 | `noun obj`             | base ÷ 3         |
/// | 2 | `noun of place`        | base ÷ 3         |
/// | 3 | `adj noun obj`         | |adj| × |obj|    |
/// | 4 | `adj noun of place`    | |adj| × |place|  |
fn satellite_title(noun: &str, i: usize) -> String {
    let j = i - 1;
    let base = base_satellites_per_topic();
    if j < base {
        return match j % 3 {
            0 => format!("{} {}", vocab::ADJECTIVES[j / 3], noun),
            1 => format!("{} {}", noun, vocab::OBJECTS[j / 3]),
            _ => format!("{} of {}", noun, vocab::PLACES[j / 3]),
        };
    }
    let e = j - base;
    let adj_obj = vocab::ADJECTIVES.len() * vocab::OBJECTS.len();
    if e < adj_obj {
        return format!(
            "{} {} {}",
            vocab::ADJECTIVES[e / vocab::OBJECTS.len()],
            noun,
            vocab::OBJECTS[e % vocab::OBJECTS.len()]
        );
    }
    let e = e - adj_obj;
    format!(
        "{} {} of {}",
        vocab::ADJECTIVES[e / vocab::PLACES.len()],
        noun,
        vocab::PLACES[e % vocab::PLACES.len()]
    )
}

/// Poisson-ish small count with the given mean: floor plus a Bernoulli
/// for the fractional part, which keeps the generator fast and exact in
/// expectation.
fn sample_count(rng: &mut StdRng, mean: f64) -> usize {
    let base = mean.floor() as usize;
    let frac = mean - mean.floor();
    base + usize::from(frac > 0.0 && rng.gen_bool(frac))
}

#[cfg(test)]
mod tests {
    use super::*;
    use querygraph_graph::stats::link_reciprocity;

    #[test]
    fn small_config_generates_and_validates() {
        let w = generate(&SynthWikiConfig::small());
        assert_eq!(w.topics.len(), 6);
        assert_eq!(w.kb.main_articles().count(), 6 * 8);
        assert!(w.kb.num_categories() > 6 * 4);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = SynthWikiConfig::small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.kb.num_articles(), b.kb.num_articles());
        assert_eq!(a.kb.graph().edge_count(), b.kb.graph().edge_count());
        for id in a.kb.articles() {
            assert_eq!(a.kb.title(id), b.kb.title(id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SynthWikiConfig::small();
        let a = generate(&cfg);
        cfg.seed = 8;
        let b = generate(&cfg);
        // Same entity counts (structure-independent) but different wiring.
        assert_eq!(a.kb.main_articles().count(), b.kb.main_articles().count());
        assert_ne!(
            a.kb.graph().edge_count(),
            b.kb.graph().edge_count(),
            "different seeds should wire different links"
        );
    }

    #[test]
    fn hub_is_first_article_of_topic() {
        let w = generate(&SynthWikiConfig::small());
        for t in &w.topics {
            assert_eq!(t.articles[0], t.hub);
            assert_eq!(w.kb.title(t.hub), t.name);
        }
    }

    #[test]
    fn all_titles_unique_and_linkable() {
        let w = generate(&SynthWikiConfig::small());
        let mut seen = std::collections::HashSet::new();
        for a in w.kb.articles() {
            let norm = querygraph_text::normalize(w.kb.title(a));
            assert!(seen.insert(norm.clone()), "duplicate title {norm}");
            assert_eq!(w.kb.article_by_title(w.kb.title(a)), Some(a));
        }
    }

    #[test]
    fn reciprocity_lands_near_target() {
        let mut cfg = SynthWikiConfig::default_experiment();
        cfg.num_topics = 20; // keep the test quick
        let w = generate(&cfg);
        let r = link_reciprocity(w.kb.graph()).unwrap();
        assert!(
            (r - cfg.reciprocity).abs() < 0.06,
            "measured reciprocity {r:.4}, target {}",
            cfg.reciprocity
        );
    }

    #[test]
    fn neighbor_topics_wrap() {
        let w = generate(&SynthWikiConfig::small());
        assert_eq!(w.neighbor_topics(0), [1, 5]);
        assert_eq!(w.neighbor_topics(5), [0, 4]);
    }

    #[test]
    fn redirects_point_to_own_topic_articles() {
        let w = generate(&SynthWikiConfig::small());
        for a in w.kb.articles() {
            if w.kb.is_redirect(a) {
                let main = w.kb.resolve_redirect(a);
                assert!(!w.kb.is_redirect(main));
                // Alias title embeds the main title after the prefix.
                let alias = querygraph_text::normalize(w.kb.title(a));
                let main_t = querygraph_text::normalize(w.kb.title(main));
                assert!(
                    alias.ends_with(&main_t),
                    "alias {alias:?} should embed {main_t:?}"
                );
            }
        }
    }

    #[test]
    fn stress_config_names_100k_articles() {
        let cfg = SynthWikiConfig::stress();
        assert!(
            cfg.num_topics * cfg.articles_per_topic >= 100_000,
            "stress preset must reach paper scale"
        );
        assert!(cfg.articles_per_topic <= max_satellites_per_topic());
        assert!(cfg.num_topics <= vocab::TOPIC_NOUNS.len() / 2);
        assert!(cfg.categories_per_topic <= vocab::CATEGORY_SUFFIXES.len());
    }

    #[test]
    fn extended_title_patterns_stay_unique() {
        // Sweep the full per-topic title range across the pattern
        // boundary (base → adj×obj → adj×place) for two topics; every
        // title must be unique and embed its topic's satellite noun.
        let max = max_satellites_per_topic();
        let mut seen = std::collections::HashSet::new();
        for noun in ["harbor", "temple"] {
            for i in 1..=max {
                let t = satellite_title(noun, i);
                assert!(t.contains(noun), "{t:?} must embed {noun:?}");
                assert!(seen.insert(t.clone()), "duplicate satellite title {t:?}");
            }
        }
        assert_eq!(seen.len(), 2 * max);
    }

    #[test]
    fn stress_scale_topic_generates_and_validates() {
        // One topic at full stress per-topic scale exercises the
        // combinatorial title patterns through the real generator
        // (wiring 60 topics × 1700 lives in the integration tests).
        let mut cfg = SynthWikiConfig::stress();
        cfg.num_topics = 3;
        let w = generate(&cfg);
        assert_eq!(w.kb.main_articles().count(), 3 * cfg.articles_per_topic);
        let mut seen = std::collections::HashSet::new();
        for a in w.kb.articles() {
            assert!(
                seen.insert(querygraph_text::normalize(w.kb.title(a))),
                "duplicate title {:?}",
                w.kb.title(a)
            );
        }
    }

    #[test]
    fn experiment_scale_generates() {
        let w = generate(&SynthWikiConfig::default_experiment());
        assert_eq!(w.topics.len(), 50);
        assert_eq!(w.kb.main_articles().count(), 50 * 30);
        // Cycle inventory sanity: the graph must contain 2-cycles.
        let g = w.kb.graph();
        let mut found2 = false;
        'outer: for u in 0..g.node_count() {
            for &v in g.und_neighbors(u) {
                if v > u && g.pair_multiplicity(u, v) >= 2 {
                    found2 = true;
                    break 'outer;
                }
            }
        }
        assert!(found2, "generator must produce reciprocal link pairs");
    }
}
