//! Deterministic word pools for the synthetic Wikipedia generator.
//!
//! Four **disjoint** pools guarantee title uniqueness by construction:
//! every article title of topic *t* contains that topic's unique noun,
//! and the combining words (adjectives, objects, places) never collide
//! with topic nouns. A fifth pool of alias prefixes is reserved for
//! redirect titles and appears nowhere else.

/// One unique noun per topic; the pool size caps the number of topics.
pub const TOPIC_NOUNS: &[&str] = &[
    "harbor",
    "temple",
    "glacier",
    "orchard",
    "violin",
    "falcon",
    "lagoon",
    "castle",
    "meadow",
    "comet",
    "reactor",
    "bazaar",
    "monastery",
    "lighthouse",
    "vineyard",
    "tundra",
    "geyser",
    "citadel",
    "canyon",
    "jungle",
    "abbey",
    "fjord",
    "savanna",
    "volcano",
    "archipelago",
    "cathedral",
    "observatory",
    "aqueduct",
    "amphitheater",
    "fortress",
    "marsh",
    "plateau",
    "dune",
    "reef",
    "estuary",
    "quarry",
    "windmill",
    "forge",
    "loom",
    "kiln",
    "telescope",
    "compass",
    "galleon",
    "zeppelin",
    "tramway",
    "funicular",
    "ferry",
    "caravan",
    "pagoda",
    "ziggurat",
    "mosaic",
    "fresco",
    "tapestry",
    "organ",
    "carillon",
    "harpsichord",
    "mandolin",
    "accordion",
    "bagpipe",
    "didgeridoo",
    "obelisk",
    "sundial",
    "astrolabe",
    "sextant",
    "barometer",
    "chronometer",
    "printing",
    "papermill",
    "tannery",
    "brewery",
    "distillery",
    "apiary",
    "falconry",
    "topiary",
    "bonsai",
    "ikebana",
    "origami",
    "calligraphy",
    "heraldry",
    "numismatics",
    "philately",
    "cartography",
    "seismology",
    "meteorology",
    "oceanography",
    "speleology",
    "ornithology",
    "entomology",
    "mycology",
    "lichenology",
    "glaciology",
    "volcanology",
    "archery",
    "fencing",
    "rowing",
    "curling",
    "biathlon",
    "decathlon",
    "marathon",
    "velodrome",
    "regencia",
    "gondolier2",
    "acropolis",
    "parthenon",
    "colosseum",
    "catacomb",
    "necropolis",
    "menhir",
    "dolmen",
    "cairn",
    "barrow",
    "henge",
    "petroglyph",
    "geoglyph",
    "stelae",
    "cloister",
    "scriptorium",
    "refectory",
    "cellarium",
    "almonry",
    "gatehouse",
];

/// Adjectives used in `"{adjective} {noun}"` titles.
pub const ADJECTIVES: &[&str] = &[
    "northern",
    "southern",
    "eastern",
    "western",
    "central",
    "upper",
    "lower",
    "greater",
    "lesser",
    "inner",
    "outer",
    "coastal",
    "alpine",
    "royal",
    "imperial",
    "sacred",
    "hidden",
    "sunken",
    "floating",
    "winding",
    "granite",
    "marble",
    "timber",
    "copper",
    "silver",
    "golden",
    "crimson",
    "azure",
    "emerald",
    "amber",
    "ivory",
    "obsidian",
    "painted",
    "carved",
    "terraced",
    "fortified",
    "abandoned",
    "restored",
    "celebrated",
    "legendary",
];

/// Objects used in `"{noun} {object}"` titles.
pub const OBJECTS: &[&str] = &[
    "gate",
    "tower",
    "market",
    "festival",
    "museum",
    "archive",
    "garden",
    "terrace",
    "pavilion",
    "workshop",
    "guild",
    "council",
    "chronicle",
    "atlas",
    "codex",
    "ledger",
    "charter",
    "expedition",
    "pilgrimage",
    "procession",
    "ceremony",
    "tournament",
    "harvest",
    "auction",
    "foundry",
    "quay",
    "esplanade",
    "promenade",
    "causeway",
    "viaduct",
    "cistern",
    "granary",
    "stable",
    "armory",
    "belfry",
    "crypt",
    "rotunda",
    "portico",
    "colonnade",
    "balustrade",
];

/// Places used in `"{noun} of {place}"` titles.
pub const PLACES: &[&str] = &[
    "valdria",
    "montreux",
    "karelia",
    "andalus",
    "bohemia",
    "silesia",
    "dalmatia",
    "galicia",
    "umbria",
    "liguria",
    "navarre",
    "aragon",
    "brittany",
    "flanders",
    "saxony",
    "bavaria",
    "tyrol",
    "carinthia",
    "moravia",
    "wallachia",
    "thrace",
    "anatolia",
    "cappadocia",
    "phrygia",
    "lydia",
    "illyria",
    "pannonia",
    "dacia",
    "scythia",
    "sogdiana",
];

/// Alias prefixes reserved for redirect titles (never in other pools).
pub const ALIAS_PREFIXES: &[&str] = &["former", "historic", "ancient", "medieval", "classical"];

/// Suffixes for category names: `"{noun} {suffix}"`.
pub const CATEGORY_SUFFIXES: &[&str] = &[
    "history",
    "culture",
    "architecture",
    "people",
    "events",
    "geography",
    "economy",
    "traditions",
    "landmarks",
    "crafts",
];

/// Filler vocabulary for document body text (never matches any title on
/// its own — disjoint from all pools above).
pub const FILLER_WORDS: &[&str] = &[
    "image",
    "photograph",
    "view",
    "scene",
    "detail",
    "overview",
    "panorama",
    "closeup",
    "morning",
    "evening",
    "summer",
    "winter",
    "spring",
    "autumn",
    "light",
    "shadow",
    "color",
    "texture",
    "pattern",
    "structure",
    "background",
    "foreground",
    "taken",
    "showing",
    "depicting",
    "near",
    "beside",
    "during",
    "famous",
    "notable",
    "typical",
    "traditional",
    "regional",
    "local",
    "annual",
    "daily",
    "public",
    "private",
    "general",
    "special",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn as_set<'a>(words: &[&'a str]) -> HashSet<&'a str> {
        words.iter().copied().collect()
    }

    #[test]
    fn pools_have_no_internal_duplicates() {
        for (name, pool) in [
            ("TOPIC_NOUNS", TOPIC_NOUNS),
            ("ADJECTIVES", ADJECTIVES),
            ("OBJECTS", OBJECTS),
            ("PLACES", PLACES),
            ("ALIAS_PREFIXES", ALIAS_PREFIXES),
            ("CATEGORY_SUFFIXES", CATEGORY_SUFFIXES),
            ("FILLER_WORDS", FILLER_WORDS),
        ] {
            assert_eq!(as_set(pool).len(), pool.len(), "{name} has duplicates");
        }
    }

    #[test]
    fn pools_are_pairwise_disjoint() {
        let pools = [
            ("TOPIC_NOUNS", as_set(TOPIC_NOUNS)),
            ("ADJECTIVES", as_set(ADJECTIVES)),
            ("OBJECTS", as_set(OBJECTS)),
            ("PLACES", as_set(PLACES)),
            ("ALIAS_PREFIXES", as_set(ALIAS_PREFIXES)),
            ("CATEGORY_SUFFIXES", as_set(CATEGORY_SUFFIXES)),
            ("FILLER_WORDS", as_set(FILLER_WORDS)),
        ];
        for i in 0..pools.len() {
            for j in (i + 1)..pools.len() {
                let inter: Vec<_> = pools[i].1.intersection(&pools[j].1).collect();
                assert!(
                    inter.is_empty(),
                    "{} ∩ {} = {:?}",
                    pools[i].0,
                    pools[j].0,
                    inter
                );
            }
        }
    }

    #[test]
    fn words_are_normalization_stable() {
        // Each word must survive normalization unchanged so generated
        // titles match themselves after normalize().
        for pool in [
            TOPIC_NOUNS,
            ADJECTIVES,
            OBJECTS,
            PLACES,
            ALIAS_PREFIXES,
            CATEGORY_SUFFIXES,
            FILLER_WORDS,
        ] {
            for w in pool {
                assert_eq!(&querygraph_text::normalize(w), w, "unstable word {w:?}");
            }
        }
    }

    #[test]
    fn pool_sizes_support_defaults() {
        assert!(TOPIC_NOUNS.len() >= 100, "need ≥100 topics available");
        assert!(ADJECTIVES.len() >= 40);
        assert!(OBJECTS.len() >= 40);
        assert!(PLACES.len() >= 30);
    }

    #[test]
    fn no_stopwords_in_content_pools() {
        for pool in [TOPIC_NOUNS, ADJECTIVES, OBJECTS, PLACES] {
            for w in pool {
                assert!(
                    !querygraph_text::is_stopword(w),
                    "{w:?} is a stopword and would break linking"
                );
            }
        }
    }
}
