//! Entity types of the Wikipedia schema (paper Fig. 1, Table 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an article (dense, assigned in insertion order by
/// [`crate::KbBuilder`]). Articles — including redirect articles — occupy
/// graph node ids `0..num_articles`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArticleId(pub u32);

/// Identifier of a category (dense). Category `c` occupies graph node id
/// `num_articles + c.0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CategoryId(pub u32);

impl ArticleId {
    /// The id as a `usize` for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CategoryId {
    /// The id as a `usize` for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArticleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for CategoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A Wikipedia article: "describes a single topic, and has a title that
/// … must be recognizable, natural, precise, concise and consistent"
/// (§2). A redirect article carries `redirect_to = Some(main)` and, per
/// the schema, has no categories and no outgoing links of its own.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Article {
    /// Display title (original casing preserved).
    pub title: String,
    /// `Some(main)` when this article is a redirect to `main`.
    pub redirect_to: Option<ArticleId>,
}

impl Article {
    /// A plain (non-redirect) article.
    pub fn new(title: impl Into<String>) -> Self {
        Article {
            title: title.into(),
            redirect_to: None,
        }
    }

    /// A redirect article pointing at `main`.
    pub fn redirect(title: impl Into<String>, main: ArticleId) -> Self {
        Article {
            title: title.into(),
            redirect_to: Some(main),
        }
    }

    /// True when this is a redirect article.
    pub fn is_redirect(&self) -> bool {
        self.redirect_to.is_some()
    }
}

/// A Wikipedia category. Categories group articles (`belongs`) and nest
/// inside other categories (`inside`), forming a tree-like structure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Category {
    /// Category name (original casing preserved).
    pub name: String,
}

impl Category {
    /// A category with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Category { name: name.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn article_constructors() {
        let a = Article::new("Venice");
        assert!(!a.is_redirect());
        let r = Article::redirect("Ponte dei Sospiri", ArticleId(3));
        assert!(r.is_redirect());
        assert_eq!(r.redirect_to, Some(ArticleId(3)));
    }

    #[test]
    fn id_display() {
        assert_eq!(ArticleId(7).to_string(), "a7");
        assert_eq!(CategoryId(2).to_string(), "c2");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(ArticleId(1) < ArticleId(2));
        assert!(CategoryId(0) < CategoryId(9));
    }
}
