//! Persistence for knowledge bases.
//!
//! Two formats are provided:
//!
//! * a line-oriented **text format** (`save_text` / `load_text`) that is
//!   diffable and independent of serde — one record per line, tab
//!   separated, with a versioned header;
//! * a serde-facing [`KbData`] snapshot (`to_data` / `from_data`) for
//!   JSON/binary serialization through any serde format.
//!
//! Both round-trip exactly (titles keep their original casing; relation
//! order is preserved as recorded).

use crate::builder::{KbBuilder, KbValidationError};
use crate::kb::KnowledgeBase;
use crate::schema::{ArticleId, CategoryId};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Magic first line of the text format.
pub const TEXT_HEADER: &str = "#querygraph-wiki\tv1";

/// Errors from [`load_text`].
#[derive(Debug)]
pub enum LoadError {
    /// Missing or wrong header line.
    BadHeader,
    /// A line that does not parse, with its 1-based number.
    BadLine(usize, String),
    /// The parsed entities violate a schema invariant.
    Invalid(KbValidationError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadHeader => write!(f, "missing or invalid header line"),
            LoadError::BadLine(n, l) => write!(f, "unparsable line {n}: {l:?}"),
            LoadError::Invalid(e) => write!(f, "schema violation: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<KbValidationError> for LoadError {
    fn from(e: KbValidationError) -> Self {
        LoadError::Invalid(e)
    }
}

/// Serialize `kb` to the line-oriented text format.
///
/// Record kinds, in emission order:
/// ```text
/// #querygraph-wiki\tv1
/// a\t<title>                 # article (id = running index over a/r)
/// r\t<main-id>\t<title>      # redirect article
/// c\t<name>                  # category (separate id space)
/// l\t<from>\t<to>            # link
/// b\t<article>\t<category>   # belongs
/// i\t<child>\t<parent>       # inside
/// ```
pub fn save_text(kb: &KnowledgeBase) -> String {
    let mut out = String::new();
    out.push_str(TEXT_HEADER);
    out.push('\n');
    for a in kb.articles() {
        let art = kb.article(a);
        match art.redirect_to {
            None => {
                let _ = writeln!(out, "a\t{}", art.title);
            }
            Some(m) => {
                let _ = writeln!(out, "r\t{}\t{}", m.0, art.title);
            }
        }
    }
    for c in kb.category_ids() {
        let _ = writeln!(out, "c\t{}", kb.category_name(c));
    }
    for &(x, y) in kb.links() {
        let _ = writeln!(out, "l\t{}\t{}", x.0, y.0);
    }
    for &(a, c) in kb.belongs() {
        let _ = writeln!(out, "b\t{}\t{}", a.0, c.0);
    }
    for &(c, p) in kb.inside() {
        let _ = writeln!(out, "i\t{}\t{}", c.0, p.0);
    }
    out
}

/// Parse the text format back into a validated [`KnowledgeBase`].
pub fn load_text(text: &str) -> Result<KnowledgeBase, LoadError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h == TEXT_HEADER => {}
        _ => return Err(LoadError::BadHeader),
    }
    let mut b = KbBuilder::new();
    for (idx, line) in lines {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = || LoadError::BadLine(idx + 1, line.to_owned());
        let mut parts = line.splitn(3, '\t');
        let kind = parts.next().ok_or_else(bad)?;
        match kind {
            "a" => {
                let title = parts.next().ok_or_else(bad)?;
                b.add_article(title);
            }
            "r" => {
                let main: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let title = parts.next().ok_or_else(bad)?;
                b.add_redirect(title, ArticleId(main));
            }
            "c" => {
                let name = parts.next().ok_or_else(bad)?;
                b.add_category(name);
            }
            "l" => {
                let x: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let y: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                b.link(ArticleId(x), ArticleId(y));
            }
            "b" => {
                let a: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let c: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                b.belongs(ArticleId(a), CategoryId(c));
            }
            "i" => {
                let c: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let p: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                b.inside(CategoryId(c), CategoryId(p));
            }
            _ => return Err(bad()),
        }
    }
    Ok(b.build()?)
}

/// A serde-friendly snapshot of a knowledge base. Relation tuples use raw
/// `u32` ids to keep the serialized form compact and stable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KbData {
    /// `(title, redirect_target)` per article, in id order.
    pub articles: Vec<(String, Option<u32>)>,
    /// Category names in id order.
    pub categories: Vec<String>,
    /// Link pairs.
    pub links: Vec<(u32, u32)>,
    /// Belongs pairs (article, category).
    pub belongs: Vec<(u32, u32)>,
    /// Inside pairs (child, parent).
    pub inside: Vec<(u32, u32)>,
}

/// Snapshot `kb` into serde-serializable [`KbData`].
pub fn to_data(kb: &KnowledgeBase) -> KbData {
    KbData {
        articles: kb
            .articles()
            .map(|a| {
                let art = kb.article(a);
                (art.title.clone(), art.redirect_to.map(|m| m.0))
            })
            .collect(),
        categories: kb
            .category_ids()
            .map(|c| kb.category_name(c).to_owned())
            .collect(),
        links: kb.links().iter().map(|&(a, b)| (a.0, b.0)).collect(),
        belongs: kb.belongs().iter().map(|&(a, c)| (a.0, c.0)).collect(),
        inside: kb.inside().iter().map(|&(c, p)| (c.0, p.0)).collect(),
    }
}

/// Rebuild (and re-validate) a knowledge base from a snapshot.
pub fn from_data(data: &KbData) -> Result<KnowledgeBase, KbValidationError> {
    let mut b = KbBuilder::new();
    for (title, redir) in &data.articles {
        match redir {
            None => {
                b.add_article(title.clone());
            }
            Some(m) => {
                b.add_redirect(title.clone(), ArticleId(*m));
            }
        }
    }
    for name in &data.categories {
        b.add_category(name.clone());
    }
    for &(x, y) in &data.links {
        b.link(ArticleId(x), ArticleId(y));
    }
    for &(a, c) in &data.belongs {
        b.belongs(ArticleId(a), CategoryId(c));
    }
    for &(c, p) in &data.inside {
        b.inside(CategoryId(c), CategoryId(p));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::venice_mini_wiki;

    #[test]
    fn text_round_trip() {
        let kb = venice_mini_wiki();
        let text = save_text(&kb);
        let kb2 = load_text(&text).unwrap();
        assert_eq!(kb.num_articles(), kb2.num_articles());
        assert_eq!(kb.num_categories(), kb2.num_categories());
        for a in kb.articles() {
            assert_eq!(kb.title(a), kb2.title(a));
            assert_eq!(kb.is_redirect(a), kb2.is_redirect(a));
        }
        assert_eq!(kb.links(), kb2.links());
        assert_eq!(kb.belongs(), kb2.belongs());
        assert_eq!(kb.inside(), kb2.inside());
        // And the double round-trip is byte-identical.
        assert_eq!(text, save_text(&kb2));
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(
            load_text("a\tVenice\n"),
            Err(LoadError::BadHeader)
        ));
    }

    #[test]
    fn rejects_garbage_line() {
        let text = format!("{TEXT_HEADER}\nz\twhat\n");
        assert!(matches!(load_text(&text), Err(LoadError::BadLine(2, _))));
    }

    #[test]
    fn rejects_bad_ids() {
        let text = format!("{TEXT_HEADER}\na\tVenice\nl\t0\tnotanumber\n");
        assert!(matches!(load_text(&text), Err(LoadError::BadLine(3, _))));
    }

    #[test]
    fn rejects_invalid_schema() {
        // Article without category.
        let text = format!("{TEXT_HEADER}\na\tVenice\n");
        assert!(matches!(load_text(&text), Err(LoadError::Invalid(_))));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = format!("{TEXT_HEADER}\n# comment\n\na\tVenice\nc\tCities\nb\t0\t0\n");
        let kb = load_text(&text).unwrap();
        assert_eq!(kb.num_articles(), 1);
    }

    #[test]
    fn kbdata_round_trip_via_json() {
        let kb = venice_mini_wiki();
        let data = to_data(&kb);
        let json = serde_json::to_string(&data).unwrap();
        let back: KbData = serde_json::from_str(&json).unwrap();
        assert_eq!(back, data);
        let kb2 = from_data(&back).unwrap();
        assert_eq!(kb2.num_articles(), kb.num_articles());
        assert_eq!(kb2.graph().edge_count(), kb.graph().edge_count());
    }
}
