//! Knowledge-base-level structural statistics.
//!
//! The headline number is [`kb_stats`]'s `link_reciprocity`: the paper
//! measures that "among all pairs of articles that are connected, 11.47 %
//! form a cycle of length 2" (§3). The synthetic generator is calibrated
//! against this value; `repro_stats` prints paper-vs-measured.

use crate::kb::KnowledgeBase;
use querygraph_graph::stats::link_reciprocity;

/// Aggregate statistics of a knowledge base.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KbStats {
    /// Total articles (redirects included).
    pub articles: usize,
    /// Redirect articles.
    pub redirects: usize,
    /// Categories.
    pub categories: usize,
    /// Directed wiki-link count.
    pub links: usize,
    /// `belongs` edge count.
    pub belongs: usize,
    /// `inside` edge count.
    pub inside: usize,
    /// Fraction of link-connected article pairs with reciprocal links
    /// (paper: 0.1147 for Wikipedia). `None` when there are no links.
    pub link_reciprocity: Option<f64>,
    /// Mean categories per non-redirect article (≥ 1 by schema).
    pub mean_categories_per_article: f64,
}

/// Compute [`KbStats`] for `kb`.
pub fn kb_stats(kb: &KnowledgeBase) -> KbStats {
    let redirects = kb.articles().filter(|&a| kb.is_redirect(a)).count();
    let mains = kb.num_articles() - redirects;
    let total_cats: usize = kb.main_articles().map(|a| kb.categories_of(a).len()).sum();
    KbStats {
        articles: kb.num_articles(),
        redirects,
        categories: kb.num_categories(),
        links: kb.links().len(),
        belongs: kb.belongs().len(),
        inside: kb.inside().len(),
        link_reciprocity: link_reciprocity(kb.graph()),
        mean_categories_per_article: if mains == 0 {
            0.0
        } else {
            total_cats as f64 / mains as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;
    use crate::fixture::venice_mini_wiki;

    #[test]
    fn fixture_stats_are_consistent() {
        let kb = venice_mini_wiki();
        let s = kb_stats(&kb);
        assert_eq!(s.articles, 22);
        assert_eq!(s.redirects, 5);
        assert_eq!(s.categories, 14);
        assert!(s.mean_categories_per_article >= 1.0);
        let r = s.link_reciprocity.unwrap();
        assert!(r > 0.0 && r < 1.0, "fixture mixes reciprocal/one-way: {r}");
    }

    #[test]
    fn reciprocity_none_without_links() {
        let mut b = KbBuilder::new();
        let a = b.add_article("Lonely");
        let c = b.add_category("Things");
        b.belongs(a, c);
        let s = kb_stats(&b.build().unwrap());
        assert_eq!(s.link_reciprocity, None);
        assert_eq!(s.links, 0);
    }

    #[test]
    fn mean_categories_counts_mains_only() {
        let mut b = KbBuilder::new();
        let a = b.add_article("Main");
        let c1 = b.add_category("One");
        let c2 = b.add_category("Two");
        b.belongs(a, c1);
        b.belongs(a, c2);
        b.add_redirect("Alias", a);
        let s = kb_stats(&b.build().unwrap());
        assert_eq!(s.mean_categories_per_article, 2.0);
    }
}
