//! # querygraph-wiki
//!
//! The Wikipedia knowledge-base model of the paper's Fig. 1, plus the two
//! data sources this reproduction runs on:
//!
//! * [`fixture`] — a hand-built mini-Wikipedia around the paper's worked
//!   example (query #90, "gondola in venice", Figs. 3/4) including the
//!   category-free `sheep–quarantine–anthrax` trap of Fig. 8.
//! * [`synth`] — a deterministic synthetic Wikipedia generator,
//!   calibrated against the structural statistics the paper reports for
//!   the real Wikipedia (link reciprocity ≈ 11.47 %, tree-like category
//!   hierarchy, topic-clustered articles). See DESIGN.md §1 for why this
//!   substitution preserves the paper's analysis.
//!
//! ## Schema (paper Fig. 1)
//!
//! * An **Article** has a unique title and belongs to ≥ 1 **Category**;
//!   articles link to other articles.
//! * A **redirect** article has a title but no categories or links; it
//!   points to its *main* article via `redirects_to`.
//! * Categories nest via `inside`, forming a tree-like hierarchy.
//!
//! [`KnowledgeBase`] stores all of this and projects it onto a
//! [`querygraph_graph::TypedGraph`]: articles occupy node ids
//! `0..num_articles`, categories the ids after them.
//!
//! ```
//! use querygraph_wiki::fixture;
//!
//! let kb = fixture::venice_mini_wiki();
//! let venice = kb.article_by_title("Venice").unwrap();
//! assert!(!kb.is_redirect(venice));
//! assert!(kb.categories_of(venice).len() >= 1);
//! ```

pub mod builder;
pub mod fixture;
pub mod kb;
pub mod schema;
pub mod serialize;
pub mod stats;
pub mod synth;

pub use builder::{KbBuilder, KbValidationError};
pub use kb::KnowledgeBase;
pub use schema::{Article, ArticleId, Category, CategoryId};
