//! Validated construction of a [`KnowledgeBase`].
//!
//! The builder enforces the schema invariants of the paper's Fig. 1 at
//! `build()` time:
//!
//! * titles and category names are unique after normalization (the title
//!   is the matching key of the entity-linking step, §2.1);
//! * every *non-redirect* article belongs to at least one category
//!   ("Articles … must belong to, at least, one Category");
//! * redirect articles carry no links and no categories, and redirect
//!   targets are themselves non-redirect articles (no redirect chains);
//! * the category `inside` relation is acyclic ("tree-like structure");
//! * no article links to itself.

use crate::kb::KnowledgeBase;
use crate::schema::{Article, ArticleId, Category, CategoryId};
use querygraph_text::normalize;
use std::collections::HashMap;
use std::fmt;

/// Errors reported by [`KbBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbValidationError {
    /// Two articles normalize to the same title.
    DuplicateTitle(String),
    /// Two categories normalize to the same name.
    DuplicateCategoryName(String),
    /// A non-redirect article has no category.
    ArticleWithoutCategory(ArticleId, String),
    /// A redirect article was given links or categories.
    RedirectWithRelations(ArticleId, String),
    /// A redirect points to another redirect.
    RedirectChain(ArticleId, String),
    /// The category graph has a cycle through this category.
    CategoryCycle(CategoryId, String),
    /// An id is out of range.
    UnknownId(String),
    /// A title normalizes to the empty string and could never be linked.
    EmptyTitle(String),
}

impl fmt::Display for KbValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbValidationError::DuplicateTitle(t) => write!(f, "duplicate article title {t:?}"),
            KbValidationError::DuplicateCategoryName(n) => {
                write!(f, "duplicate category name {n:?}")
            }
            KbValidationError::ArticleWithoutCategory(id, t) => {
                write!(f, "article {id} {t:?} has no category")
            }
            KbValidationError::RedirectWithRelations(id, t) => {
                write!(f, "redirect article {id} {t:?} has links or categories")
            }
            KbValidationError::RedirectChain(id, t) => {
                write!(f, "redirect article {id} {t:?} points to another redirect")
            }
            KbValidationError::CategoryCycle(id, n) => {
                write!(f, "category graph has a cycle through {id} {n:?}")
            }
            KbValidationError::UnknownId(what) => write!(f, "unknown id: {what}"),
            KbValidationError::EmptyTitle(t) => {
                write!(f, "title {t:?} normalizes to the empty string")
            }
        }
    }
}

impl std::error::Error for KbValidationError {}

/// Incremental builder for a [`KnowledgeBase`].
#[derive(Debug, Default, Clone)]
pub struct KbBuilder {
    articles: Vec<Article>,
    categories: Vec<Category>,
    links: Vec<(ArticleId, ArticleId)>,
    link_set: std::collections::HashSet<(ArticleId, ArticleId)>,
    belongs: Vec<(ArticleId, CategoryId)>,
    inside: Vec<(CategoryId, CategoryId)>,
}

impl KbBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a plain article; returns its id.
    pub fn add_article(&mut self, title: impl Into<String>) -> ArticleId {
        let id = ArticleId(self.articles.len() as u32);
        self.articles.push(Article::new(title));
        id
    }

    /// Add a redirect article pointing at `main`; returns its id.
    pub fn add_redirect(&mut self, title: impl Into<String>, main: ArticleId) -> ArticleId {
        let id = ArticleId(self.articles.len() as u32);
        self.articles.push(Article::redirect(title, main));
        id
    }

    /// Add a category; returns its id.
    pub fn add_category(&mut self, name: impl Into<String>) -> CategoryId {
        let id = CategoryId(self.categories.len() as u32);
        self.categories.push(Category::new(name));
        id
    }

    /// Record a wiki-link `from → to`.
    pub fn link(&mut self, from: ArticleId, to: ArticleId) {
        self.links.push((from, to));
        self.link_set.insert((from, to));
    }

    /// Record reciprocal wiki-links between `a` and `b` (the pattern that
    /// creates the paper's length-2 cycles).
    pub fn link_reciprocal(&mut self, a: ArticleId, b: ArticleId) {
        self.link(a, b);
        self.link(b, a);
    }

    /// Whether `from → to` has already been recorded. Generators use
    /// this to keep *accidental* reciprocal pairs from inflating the
    /// calibrated reciprocity.
    pub fn has_link(&self, from: ArticleId, to: ArticleId) -> bool {
        self.link_set.contains(&(from, to))
    }

    /// Record that `article` belongs to `category`.
    pub fn belongs(&mut self, article: ArticleId, category: CategoryId) {
        self.belongs.push((article, category));
    }

    /// Record that `child` is inside `parent`.
    pub fn inside(&mut self, child: CategoryId, parent: CategoryId) {
        self.inside.push((child, parent));
    }

    /// Number of articles added so far (including redirects).
    pub fn article_count(&self) -> usize {
        self.articles.len()
    }

    /// The staged (pre-build) title of `a`. Used by generators that need
    /// to derive alias titles from articles they just added.
    ///
    /// # Panics
    /// If `a` has not been added to this builder.
    pub fn staged_title(&self, a: ArticleId) -> &str {
        &self.articles[a.index()].title
    }

    /// Number of categories added so far.
    pub fn category_count(&self) -> usize {
        self.categories.len()
    }

    /// Validate and freeze. See the module docs for the invariants.
    pub fn build(self) -> Result<KnowledgeBase, KbValidationError> {
        let n_articles = self.articles.len() as u32;
        let n_categories = self.categories.len() as u32;

        // Id range checks.
        for &(a, b) in &self.links {
            if a.0 >= n_articles || b.0 >= n_articles {
                return Err(KbValidationError::UnknownId(format!("link {a}→{b}")));
            }
        }
        for &(a, c) in &self.belongs {
            if a.0 >= n_articles || c.0 >= n_categories {
                return Err(KbValidationError::UnknownId(format!("belongs {a}→{c}")));
            }
        }
        for &(c, p) in &self.inside {
            if c.0 >= n_categories || p.0 >= n_categories {
                return Err(KbValidationError::UnknownId(format!("inside {c}→{p}")));
            }
        }
        for (i, art) in self.articles.iter().enumerate() {
            if let Some(m) = art.redirect_to {
                if m.0 >= n_articles {
                    return Err(KbValidationError::UnknownId(format!("redirect a{i}→{m}")));
                }
            }
        }

        // Unique normalized titles / names, non-empty.
        let mut title_index: HashMap<String, ArticleId> = HashMap::new();
        for (i, art) in self.articles.iter().enumerate() {
            let norm = normalize(&art.title);
            if norm.is_empty() {
                return Err(KbValidationError::EmptyTitle(art.title.clone()));
            }
            if title_index.insert(norm, ArticleId(i as u32)).is_some() {
                return Err(KbValidationError::DuplicateTitle(art.title.clone()));
            }
        }
        let mut name_seen: HashMap<String, CategoryId> = HashMap::new();
        for (i, cat) in self.categories.iter().enumerate() {
            let norm = normalize(&cat.name);
            if norm.is_empty() {
                return Err(KbValidationError::EmptyTitle(cat.name.clone()));
            }
            if name_seen.insert(norm, CategoryId(i as u32)).is_some() {
                return Err(KbValidationError::DuplicateCategoryName(cat.name.clone()));
            }
        }

        // Redirect invariants.
        for (i, art) in self.articles.iter().enumerate() {
            if let Some(m) = art.redirect_to {
                if self.articles[m.index()].is_redirect() {
                    return Err(KbValidationError::RedirectChain(
                        ArticleId(i as u32),
                        art.title.clone(),
                    ));
                }
            }
        }
        for &(a, b) in &self.links {
            let _ = b;
            if self.articles[a.index()].is_redirect() {
                return Err(KbValidationError::RedirectWithRelations(
                    a,
                    self.articles[a.index()].title.clone(),
                ));
            }
        }
        for &(a, _) in &self.belongs {
            if self.articles[a.index()].is_redirect() {
                return Err(KbValidationError::RedirectWithRelations(
                    a,
                    self.articles[a.index()].title.clone(),
                ));
            }
        }

        // Every non-redirect article has ≥1 category.
        let mut has_cat = vec![false; self.articles.len()];
        for &(a, _) in &self.belongs {
            has_cat[a.index()] = true;
        }
        for (i, art) in self.articles.iter().enumerate() {
            if !art.is_redirect() && !has_cat[i] {
                return Err(KbValidationError::ArticleWithoutCategory(
                    ArticleId(i as u32),
                    art.title.clone(),
                ));
            }
        }

        // Category `inside` acyclicity (iterative three-color DFS).
        let mut children_of: Vec<Vec<u32>> = vec![Vec::new(); self.categories.len()];
        for &(c, p) in &self.inside {
            children_of[p.index()].push(c.0);
        }
        let mut color = vec![0u8; self.categories.len()]; // 0 white 1 gray 2 black
        for start in 0..self.categories.len() {
            if color[start] != 0 {
                continue;
            }
            // Stack of (node, next-child-index).
            let mut stack: Vec<(u32, usize)> = vec![(start as u32, 0)];
            color[start] = 1;
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                if *next < children_of[u as usize].len() {
                    let child = children_of[u as usize][*next];
                    *next += 1;
                    match color[child as usize] {
                        0 => {
                            color[child as usize] = 1;
                            stack.push((child, 0));
                        }
                        1 => {
                            return Err(KbValidationError::CategoryCycle(
                                CategoryId(child),
                                self.categories[child as usize].name.clone(),
                            ));
                        }
                        _ => {}
                    }
                } else {
                    color[u as usize] = 2;
                    stack.pop();
                }
            }
        }

        Ok(KnowledgeBase::from_parts(
            self.articles,
            self.categories,
            self.links,
            self.belongs,
            self.inside,
            title_index,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> KbBuilder {
        let mut b = KbBuilder::new();
        let a = b.add_article("Venice");
        let c = b.add_category("Cities");
        b.belongs(a, c);
        b
    }

    #[test]
    fn minimal_builds() {
        let kb = minimal().build().unwrap();
        assert_eq!(kb.num_articles(), 1);
        assert_eq!(kb.num_categories(), 1);
    }

    #[test]
    fn duplicate_titles_rejected() {
        let mut b = minimal();
        let a2 = b.add_article("VENICE!"); // same normalized form
        let c = CategoryId(0);
        b.belongs(a2, c);
        assert!(matches!(
            b.build(),
            Err(KbValidationError::DuplicateTitle(_))
        ));
    }

    #[test]
    fn duplicate_category_names_rejected() {
        let mut b = minimal();
        b.add_category("CITIES");
        assert!(matches!(
            b.build(),
            Err(KbValidationError::DuplicateCategoryName(_))
        ));
    }

    #[test]
    fn article_without_category_rejected() {
        let mut b = minimal();
        b.add_article("Orphan");
        assert!(matches!(
            b.build(),
            Err(KbValidationError::ArticleWithoutCategory(_, _))
        ));
    }

    #[test]
    fn redirects_need_no_category() {
        let mut b = minimal();
        b.add_redirect("La Serenissima", ArticleId(0));
        let kb = b.build().unwrap();
        assert_eq!(kb.num_articles(), 2);
    }

    #[test]
    fn redirect_with_category_rejected() {
        let mut b = minimal();
        let r = b.add_redirect("La Serenissima", ArticleId(0));
        b.belongs(r, CategoryId(0));
        assert!(matches!(
            b.build(),
            Err(KbValidationError::RedirectWithRelations(_, _))
        ));
    }

    #[test]
    fn redirect_with_link_rejected() {
        let mut b = minimal();
        let a2 = b.add_article("Gondola");
        b.belongs(a2, CategoryId(0));
        let r = b.add_redirect("La Serenissima", ArticleId(0));
        b.link(r, a2);
        assert!(matches!(
            b.build(),
            Err(KbValidationError::RedirectWithRelations(_, _))
        ));
    }

    #[test]
    fn redirect_chain_rejected() {
        let mut b = minimal();
        let r1 = b.add_redirect("Alias One", ArticleId(0));
        b.add_redirect("Alias Two", r1);
        assert!(matches!(
            b.build(),
            Err(KbValidationError::RedirectChain(_, _))
        ));
    }

    #[test]
    fn category_cycle_rejected() {
        let mut b = minimal();
        let c0 = CategoryId(0);
        let c1 = b.add_category("Geography");
        let c2 = b.add_category("Places");
        b.inside(c0, c1);
        b.inside(c1, c2);
        b.inside(c2, c0);
        assert!(matches!(
            b.build(),
            Err(KbValidationError::CategoryCycle(_, _))
        ));
    }

    #[test]
    fn category_dag_is_allowed() {
        // "Tree-like" per the paper, but a category may sit inside two
        // parents (a DAG) — Wikipedia allows that.
        let mut b = minimal();
        let c0 = CategoryId(0);
        let c1 = b.add_category("Geography");
        let c2 = b.add_category("Places");
        b.inside(c0, c1);
        b.inside(c0, c2);
        assert!(b.build().is_ok());
    }

    #[test]
    fn out_of_range_link_rejected() {
        let mut b = minimal();
        b.link(ArticleId(0), ArticleId(99));
        assert!(matches!(b.build(), Err(KbValidationError::UnknownId(_))));
    }

    #[test]
    fn empty_title_rejected() {
        let mut b = minimal();
        let a = b.add_article("!!!");
        b.belongs(a, CategoryId(0));
        assert!(matches!(b.build(), Err(KbValidationError::EmptyTitle(_))));
    }

    #[test]
    fn self_link_allowed_at_build_but_deduped_in_graph() {
        // Wikipedia articles occasionally self-link; the graph layer
        // rejects self-loops, so the KB filters them during projection.
        let mut b = minimal();
        b.link(ArticleId(0), ArticleId(0));
        let kb = b.build().unwrap();
        assert_eq!(kb.graph().edge_count(), 1); // belongs only
    }
}
