//! # querygraph-core
//!
//! The paper's primary contribution, end to end:
//!
//! * [`ground_truth`] — §2.2: for each query, hill-climb (ADD / REMOVE /
//!   SWAP) over the articles mentioned in the relevant documents to find
//!   X(q), the minimal article set whose titles maximize the retrieval
//!   quality O (Eq. 1).
//! * [`query_graph`] — §2.3: assemble G(q), the induced Wikipedia
//!   subgraph over X(q), the main articles of its redirects, and their
//!   categories; plus the Table 3 largest-component statistics.
//! * [`cycle_analysis`] — §3: enumerate the cycles of G(q) through the
//!   query articles and measure length, category ratio, density of extra
//!   edges (the M(C) formula) and retrieval contribution.
//! * [`contribution`] — the percentual O-difference a cycle's articles
//!   buy (Figs. 5 and 9).
//! * [`expansion`] — the findings operationalized: a cycle-based query
//!   expander (dense cycles, ≈30 % category ratio) with baselines, plus
//!   the paper's §4 future-work variants (redirect features, article
//!   cycle-frequency ranking).
//! * [`experiment`] — the reproduction pipeline: synthesize Wikipedia +
//!   corpus, build ground truths, analyze every query graph, aggregate
//!   every table and figure ([`tables`]).
//! * [`pipeline`] — the execution layer under [`experiment`]: the
//!   shared read-only [`pipeline::PipelineCtx`], per-stage timing, and
//!   the deterministic work-stealing runner that parallelizes the
//!   paper's §4 per-query cost across threads.
//! * [`cache`] — the on-disk index cache: build the retrieval index
//!   once, persist it via `querygraph_retrieval::ondisk`, and reload it
//!   zero-copy on later runs (fingerprint-keyed; corruption falls back
//!   to rebuilding).
//! * [`service`] — the serving facade: [`service::QueryExpander`]
//!   answers ad-hoc per-query expansion requests (entity linking →
//!   cycle-based expansion → optional retrieval) over a world built
//!   once — directly from a cached on-disk index if available — with
//!   typed errors and a deterministic batch entrypoint. The
//!   reproduction pipeline is itself a consumer of this facade.
//! * [`expcache`] — a bounded, shard-aware memoization of complete
//!   expansion responses with single-flight misses, for the
//!   head-heavy query distributions real serving sees.
//! * [`http`] — the dependency-free network front-end: a hand-rolled
//!   HTTP/1.1 server (std::net + a fixed worker pool) that puts
//!   [`service::QueryExpander`] on a socket with per-request
//!   deadlines, a bounded queue, and typed overload shedding, plus
//!   the minimal client that drives it.
//!
//! ```
//! use querygraph_core::experiment::{Experiment, ExperimentConfig};
//!
//! let experiment = Experiment::build(&ExperimentConfig::tiny());
//! let report = experiment.run();
//! assert_eq!(report.per_query.len(), report.config.corpus.num_queries);
//! // Table 2 of the paper: ground-truth precision summary.
//! let t2 = report.table2();
//! assert!(t2.rows[0].max <= 1.0);
//! ```

pub mod cache;
pub mod config;
pub mod contribution;
pub mod cycle_analysis;
pub mod expansion;
pub mod expcache;
pub mod experiment;
pub mod ground_truth;
pub mod histogram;
pub mod http;
pub mod pipeline;
pub mod query_graph;
pub mod service;
pub mod tables;

pub use cache::{BuildStats, IndexSource};
pub use expcache::ExpansionCache;
pub use experiment::{Experiment, ExperimentConfig, Report};
pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use http::{HttpServer, ServerConfig};
pub use pipeline::{PipelineCtx, RunSummary, Stage, StageTimings};
pub use query_graph::QueryGraph;
pub use service::{
    Deadline, ExpansionRequest, ExpansionResponse, ExpansionStrategy, QueryExpander,
    QueryExpanderBuilder, ServiceError, ServingWorld,
};
