//! Cycle contribution — the quality delta of Figs. 5 and 9.
//!
//! "We define the contribution of a cycle C for a query q as the
//! percentual difference between O(L(q.k), q.D) and O(L(q.k) ∪ C, q.D)"
//! where only the *articles* of C are used as expansion features
//! (footnote 3: categories are ignored).
//!
//! Deviation note (documented per DESIGN.md §4): when the baseline
//! O(L(q.k)) is zero the percentual difference is undefined; this
//! implementation falls back to absolute percentage points
//! (`100 · O_after`), which preserves ordering and keeps averages
//! finite.

use crate::ground_truth::QualityEvaluator;
use querygraph_wiki::ArticleId;

/// Percentual contribution of adding `cycle_articles` to the query
/// articles.
pub fn contribution(
    evaluator: &QualityEvaluator<'_>,
    query_articles: &[ArticleId],
    baseline_quality: f64,
    cycle_articles: &[ArticleId],
) -> f64 {
    let mut set: Vec<ArticleId> = query_articles.to_vec();
    for &a in cycle_articles {
        if !set.contains(&a) {
            set.push(a);
        }
    }
    let after = evaluator.quality(&set);
    percent_change(baseline_quality, after)
}

/// The percentual difference `100 · (after − before) / before`, with the
/// zero-baseline fallback described in the module docs.
pub fn percent_change(before: f64, after: f64) -> f64 {
    if before > 0.0 {
        100.0 * (after - before) / before
    } else {
        100.0 * after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_and_negative_changes() {
        assert_eq!(percent_change(0.5, 0.75), 50.0);
        assert_eq!(percent_change(0.5, 0.25), -50.0);
        assert_eq!(percent_change(0.4, 0.4), 0.0);
    }

    #[test]
    fn zero_baseline_fallback() {
        assert_eq!(percent_change(0.0, 0.3), 30.0);
        assert_eq!(percent_change(0.0, 0.0), 0.0);
    }

    #[test]
    fn contribution_against_real_evaluator() {
        use querygraph_retrieval::engine::SearchEngine;
        use querygraph_retrieval::index::IndexBuilder;
        use querygraph_wiki::KbBuilder;

        let mut b = KbBuilder::new();
        let alpha = b.add_article("alpha");
        let beta = b.add_article("beta");
        let c = b.add_category("things");
        b.belongs(alpha, c);
        b.belongs(beta, c);
        let kb = b.build().unwrap();

        let mut ib = IndexBuilder::new();
        ib.add_document("beta relevant document"); // 0: relevant
        ib.add_document("alpha unrelated noise"); // 1
        let engine = SearchEngine::new(ib.build());
        let evaluator = QualityEvaluator::new(&kb, &engine, &[0], 15);

        let baseline = evaluator.quality(&[alpha]);
        let contrib = contribution(&evaluator, &[alpha], baseline, &[beta]);
        assert!(contrib > 0.0, "beta finds the relevant doc: {contrib}");
    }
}
