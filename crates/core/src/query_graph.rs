//! Query-graph assembly — §2.3 of the paper.
//!
//! "Each query graph G(q) is built by inducing the subgraph with nodes
//! X(q), their main articles in case of being a redirect, and their
//! categories." X(q) = L(q.k) ∪ A′: the query articles plus the best
//! expansion articles found by the ground-truth search.
//!
//! The assembled graph keeps a *role* per node (query article, expansion
//! article, main-of-redirect, category) — Fig. 3 draws exactly these
//! four shapes — and exposes the Table 3 statistics of its largest
//! connected component.

use querygraph_graph::components::connected_components;
use querygraph_graph::subgraph::{induce, Subgraph};
use querygraph_graph::triangles::tpr_of_subset;
use querygraph_wiki::{ArticleId, CategoryId, KnowledgeBase};
use serde::{Deserialize, Serialize};

/// Why a node is part of the query graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeRole {
    /// Article of L(q.k) — triangular boxes in Fig. 3.
    QueryArticle,
    /// Article of A′ (best expansion features) — circle boxes.
    ExpansionArticle,
    /// Main article pulled in because a member of X(q) is a redirect —
    /// unboxed nodes in Fig. 3.
    MainArticle,
    /// Category of any included article — squared boxes.
    Category,
}

/// The query graph G(q): an induced subgraph of the Wikipedia graph plus
/// per-node roles.
#[derive(Debug)]
pub struct QueryGraph {
    /// The induced subgraph (local node ids) with mapping to KB graph
    /// nodes.
    pub sub: Subgraph,
    /// Role of each local node.
    pub roles: Vec<NodeRole>,
    /// Local ids of the L(q.k) articles present in the graph.
    pub query_nodes: Vec<u32>,
    /// |L(q.k)| as given (denominator of the expansion ratio).
    pub num_query_articles: usize,
    /// |X(q)| = |L(q.k) ∪ A′|.
    pub num_x_articles: usize,
}

/// Statistics of the largest connected component — one row set of
/// Table 3, plus the TPR of §3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LccStats {
    /// Relative size of the largest component: |LCC| / |G(q)|.
    pub size_ratio: f64,
    /// Fraction of L(q.k) articles inside the LCC.
    pub query_node_ratio: f64,
    /// Fraction of LCC nodes that are articles.
    pub article_ratio: f64,
    /// Fraction of LCC nodes that are categories.
    pub category_ratio: f64,
    /// |X(q) ∩ LCC| / |L(q.k) ∩ LCC|; 0 when no query article is inside
    /// (the paper's sentinel).
    pub expansion_ratio: f64,
    /// Triangle participation ratio of the LCC (§3: ≈ 0.3 on average).
    pub tpr: f64,
    /// Absolute node count of the whole query graph (the paper reports
    /// an average of 208.22).
    pub total_nodes: usize,
}

/// Assemble G(q) from the knowledge base, the query articles L(q.k) and
/// the expansion articles A′.
///
/// Redirects inside either set contribute their main article (kept with
/// [`NodeRole::MainArticle`]); every included article contributes its
/// categories. Roles are assigned with precedence
/// query > expansion > main > category.
pub fn assemble(
    kb: &KnowledgeBase,
    query_articles: &[ArticleId],
    expansion_articles: &[ArticleId],
) -> QueryGraph {
    let mut nodes: Vec<u32> = Vec::new();
    let mut mains: Vec<ArticleId> = Vec::new();
    let mut categories: Vec<CategoryId> = Vec::new();

    let mut x_articles: Vec<ArticleId> = Vec::new();
    x_articles.extend_from_slice(query_articles);
    for &a in expansion_articles {
        if !x_articles.contains(&a) {
            x_articles.push(a);
        }
    }

    for &a in &x_articles {
        nodes.push(kb.article_node(a));
        let main = kb.resolve_redirect(a);
        if main != a && !x_articles.contains(&main) && !mains.contains(&main) {
            mains.push(main);
        }
    }
    for &a in x_articles.iter().chain(mains.iter()) {
        for &c in kb.categories_of(a) {
            if !categories.contains(&c) {
                categories.push(c);
            }
        }
    }
    nodes.extend(mains.iter().map(|&a| kb.article_node(a)));
    nodes.extend(categories.iter().map(|&c| kb.category_node(c)));

    let sub = induce(kb.graph(), &nodes);

    // Assign roles through the local→parent mapping.
    let mut roles = vec![NodeRole::Category; sub.node_count() as usize];
    for local in 0..sub.node_count() {
        let parent = sub.parent_of(local);
        let role = if let Some(a) = kb.node_article(parent) {
            if query_articles.contains(&a) {
                NodeRole::QueryArticle
            } else if expansion_articles.contains(&a) {
                NodeRole::ExpansionArticle
            } else {
                NodeRole::MainArticle
            }
        } else {
            NodeRole::Category
        };
        roles[local as usize] = role;
    }
    let query_nodes: Vec<u32> = (0..sub.node_count())
        .filter(|&l| roles[l as usize] == NodeRole::QueryArticle)
        .collect();

    QueryGraph {
        sub,
        roles,
        query_nodes,
        num_query_articles: query_articles.len(),
        num_x_articles: x_articles.len(),
    }
}

impl QueryGraph {
    /// Local node ids of all articles (any article role).
    pub fn article_nodes(&self) -> Vec<u32> {
        (0..self.sub.node_count())
            .filter(|&l| self.roles[l as usize] != NodeRole::Category)
            .collect()
    }

    /// Local node ids of categories.
    pub fn category_nodes(&self) -> Vec<u32> {
        (0..self.sub.node_count())
            .filter(|&l| self.roles[l as usize] == NodeRole::Category)
            .collect()
    }

    /// Table 3 statistics of the largest connected component.
    pub fn lcc_stats(&self) -> LccStats {
        let n = self.sub.node_count() as usize;
        if n == 0 {
            return LccStats {
                size_ratio: 0.0,
                query_node_ratio: 0.0,
                article_ratio: 0.0,
                category_ratio: 0.0,
                expansion_ratio: 0.0,
                tpr: 0.0,
                total_nodes: 0,
            };
        }
        let comps = connected_components(&self.sub.graph);
        let members = comps.largest_members();
        let lcc_size = members.len();

        let in_lcc = |l: u32| members.binary_search(&l).is_ok();
        let query_in = self.query_nodes.iter().filter(|&&l| in_lcc(l)).count();
        let articles_in = members
            .iter()
            .filter(|&&l| self.roles[l as usize] != NodeRole::Category)
            .count();
        let x_in = members
            .iter()
            .filter(|&&l| {
                matches!(
                    self.roles[l as usize],
                    NodeRole::QueryArticle | NodeRole::ExpansionArticle
                )
            })
            .count();

        LccStats {
            size_ratio: lcc_size as f64 / n as f64,
            query_node_ratio: if self.num_query_articles == 0 {
                0.0
            } else {
                query_in as f64 / self.num_query_articles as f64
            },
            article_ratio: articles_in as f64 / lcc_size as f64,
            category_ratio: (lcc_size - articles_in) as f64 / lcc_size as f64,
            expansion_ratio: if query_in == 0 {
                0.0
            } else {
                x_in as f64 / query_in as f64
            },
            tpr: tpr_of_subset(&self.sub.graph, &members),
            total_nodes: n,
        }
    }

    /// Number of categories among `local_nodes` (cycle category counts).
    pub fn count_categories(&self, local_nodes: &[u32]) -> usize {
        local_nodes
            .iter()
            .filter(|&&l| self.roles[l as usize] == NodeRole::Category)
            .count()
    }

    /// Map a local node back to an article id, if it is an article.
    pub fn local_article(&self, kb: &KnowledgeBase, local: u32) -> Option<ArticleId> {
        kb.node_article(self.sub.parent_of(local))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querygraph_wiki::fixture::venice_mini_wiki;

    fn venice_graph(kb: &KnowledgeBase) -> QueryGraph {
        let gondola = kb.article_by_title("Gondola").unwrap();
        let venice = kb.article_by_title("Venice").unwrap();
        let canal = kb.article_by_title("Grand Canal (Venice)").unwrap();
        let bridge = kb.article_by_title("Bridge of Sighs").unwrap();
        let cann = kb.article_by_title("Cannaregio").unwrap();
        assemble(kb, &[gondola, venice], &[canal, bridge, cann])
    }

    #[test]
    fn includes_x_mains_and_categories() {
        let kb = venice_mini_wiki();
        let g = venice_graph(&kb);
        // 5 articles + their categories; no redirects in X(q) here.
        assert_eq!(g.num_x_articles, 5);
        assert!(g.category_nodes().len() >= 5);
        assert_eq!(g.article_nodes().len(), 5);
        assert_eq!(g.query_nodes.len(), 2);
    }

    #[test]
    fn roles_have_precedence() {
        let kb = venice_mini_wiki();
        let venice = kb.article_by_title("Venice").unwrap();
        // venice listed both as query and expansion: query wins.
        let g = assemble(&kb, &[venice], &[venice]);
        let vn = g.sub.local_of(kb.article_node(venice)).unwrap();
        assert_eq!(g.roles[vn as usize], NodeRole::QueryArticle);
        assert_eq!(g.num_x_articles, 1);
    }

    #[test]
    fn redirects_pull_in_main_articles() {
        let kb = venice_mini_wiki();
        let ponte = kb.article_by_title("Ponte dei Sospiri").unwrap();
        let bridge = kb.article_by_title("Bridge of Sighs").unwrap();
        let g = assemble(&kb, &[ponte], &[]);
        let main_local = g.sub.local_of(kb.article_node(bridge)).unwrap();
        assert_eq!(g.roles[main_local as usize], NodeRole::MainArticle);
        // The redirect node itself is a query article.
        let r_local = g.sub.local_of(kb.article_node(ponte)).unwrap();
        assert_eq!(g.roles[r_local as usize], NodeRole::QueryArticle);
    }

    #[test]
    fn lcc_stats_are_consistent() {
        let kb = venice_mini_wiki();
        let g = venice_graph(&kb);
        let s = g.lcc_stats();
        assert!(s.size_ratio > 0.0 && s.size_ratio <= 1.0);
        assert!((s.article_ratio + s.category_ratio - 1.0).abs() < 1e-12);
        assert_eq!(s.query_node_ratio, 1.0, "venice & gondola are connected");
        assert!(s.expansion_ratio >= 1.0);
        assert_eq!(s.total_nodes, g.sub.node_count() as usize);
        assert!(s.tpr > 0.0, "fixture has triangles in the LCC");
    }

    #[test]
    fn categories_dominate_fixture_graph() {
        // Table 3: "the largest connected component is clearly dominated
        // by categories".
        let kb = venice_mini_wiki();
        let g = venice_graph(&kb);
        let s = g.lcc_stats();
        assert!(
            s.category_ratio > s.article_ratio,
            "expected category domination, got articles {} vs categories {}",
            s.article_ratio,
            s.category_ratio
        );
    }

    #[test]
    fn empty_query_graph() {
        let kb = venice_mini_wiki();
        let g = assemble(&kb, &[], &[]);
        assert_eq!(g.sub.node_count(), 0);
        let s = g.lcc_stats();
        assert_eq!(s.total_nodes, 0);
        assert_eq!(s.expansion_ratio, 0.0);
    }

    #[test]
    fn count_categories_on_cycles() {
        let kb = venice_mini_wiki();
        let g = venice_graph(&kb);
        let all: Vec<u32> = (0..g.sub.node_count()).collect();
        assert_eq!(g.count_categories(&all), g.category_nodes().len());
    }

    #[test]
    fn disconnected_trap_forms_second_component() {
        let kb = venice_mini_wiki();
        let venice = kb.article_by_title("Venice").unwrap();
        let sheep = kb.article_by_title("Sheep").unwrap();
        // Venice + sheep: two components (fixture keeps the trap apart).
        let g = assemble(&kb, &[venice], &[sheep]);
        let s = g.lcc_stats();
        assert!(s.size_ratio < 1.0, "graph must be disconnected");
    }
}
