//! Result containers and plain-text rendering for every table and
//! figure of the paper.
//!
//! Each struct mirrors one artifact of the evaluation section; the
//! `render()` methods print the same rows/series the paper reports so
//! that `repro_*` binaries and `EXPERIMENTS.md` share one format. The
//! paper's published values are embedded as `PAPER_*` constants so every
//! rendering shows paper-vs-measured side by side.

use querygraph_retrieval::stats::FiveNumber;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Paper values of Table 2 (ground-truth precision): min, q1, median,
/// q3, max per cutoff 1/5/10/15.
pub const PAPER_TABLE2: [[f64; 5]; 4] = [
    [0.0, 1.0, 1.0, 1.0, 1.0],
    [0.0, 1.0, 1.0, 1.0, 1.0],
    [0.2, 0.6, 0.9, 1.0, 1.0],
    [0.2, 0.65, 0.8, 0.85, 1.0],
];

/// Paper values of Table 3 (largest-component statistics): rows are
/// %size, %query nodes, %articles, %categories, expansion ratio.
pub const PAPER_TABLE3: [[f64; 5]; 5] = [
    [0.164, 0.477, 0.587, 0.688, 1.0],
    [0.0, 1.0, 1.0, 1.0, 1.0],
    [0.025, 0.148, 0.217, 0.269, 0.5],
    [0.5, 0.731, 0.783, 0.852, 0.975],
    [0.0, 2.125, 4.5, 23.750, 176.0],
];

/// Paper values of Table 4 (precision by cycle-length configuration).
pub const PAPER_TABLE4: [(&str, [f64; 4]); 7] = [
    ("2", [0.826, 0.539, 0.539, 0.552]),
    ("3", [0.833, 0.578, 0.519, 0.513]),
    ("4", [0.703, 0.589, 0.541, 0.494]),
    ("5", [0.788, 0.624, 0.588, 0.547]),
    ("2&3", [0.944, 0.656, 0.583, 0.621]),
    ("2&3&4", [0.944, 0.667, 0.594, 0.629]),
    ("2&3&4&5", [0.944, 0.667, 0.622, 0.658]),
];

/// Paper values of Fig. 5: average contribution (%) per cycle length
/// 2..=5.
pub const PAPER_FIG5: [f64; 4] = [50.53, 24.38, 32.74, 32.31];

/// Paper values of Fig. 6: average number of cycles per length 2..=5.
pub const PAPER_FIG6: [f64; 4] = [1.56, 9.1, 35.22, 136.84];

/// Paper values of Fig. 7a: average category ratio per length 3..=5.
pub const PAPER_FIG7A: [f64; 3] = [0.366, 0.375, 0.382];

/// Paper values of Fig. 7b: average density of extra edges per length
/// 3..=5.
pub const PAPER_FIG7B: [f64; 3] = [0.289, 0.38, 0.333];

/// Paper scalars of §3: average TPR of the largest components, link
/// reciprocity, and average query-graph size.
pub const PAPER_TPR: f64 = 0.3;
/// Link reciprocity the paper measures on Wikipedia.
pub const PAPER_RECIPROCITY: f64 = 0.1147;
/// Average query-graph size (nodes) reported in §4.
pub const PAPER_QG_NODES: f64 = 208.22;

/// Table 2: ground-truth precision summary per cutoff.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// One five-number summary per cutoff (1, 5, 10, 15).
    pub rows: [FiveNumber; 4],
}

impl Table2 {
    /// Render paper-vs-measured.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Table 2 — ground-truth precision (min q1 med q3 max)");
        let labels = ["top-1", "top-5", "top-10", "top-15"];
        for (i, label) in labels.iter().enumerate() {
            let p = PAPER_TABLE2[i];
            let m = self.rows[i].row();
            let _ = writeln!(
                s,
                "  {label:<7} paper {} | measured {}",
                fmt_row(&p),
                fmt_row(&m)
            );
        }
        s
    }
}

/// Table 3: largest-connected-component statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// %size of the LCC.
    pub size: FiveNumber,
    /// % of L(q.k) captured by the LCC.
    pub query_nodes: FiveNumber,
    /// Article share of the LCC.
    pub articles: FiveNumber,
    /// Category share of the LCC.
    pub categories: FiveNumber,
    /// Expansion ratio |X(q)|/|L(q.k)| within the LCC.
    pub expansion_ratio: FiveNumber,
}

impl Table3 {
    /// Render paper-vs-measured.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Table 3 — largest connected component (min q1 med q3 max)"
        );
        let rows = [
            ("%size", &self.size, PAPER_TABLE3[0]),
            ("%query nodes", &self.query_nodes, PAPER_TABLE3[1]),
            ("%articles", &self.articles, PAPER_TABLE3[2]),
            ("%categories", &self.categories, PAPER_TABLE3[3]),
            ("expansion ratio", &self.expansion_ratio, PAPER_TABLE3[4]),
        ];
        for (label, five, paper) in rows {
            let _ = writeln!(
                s,
                "  {label:<16} paper {} | measured {}",
                fmt_row(&paper),
                fmt_row(&five.row())
            );
        }
        s
    }
}

/// Table 4: average precision by cycle-length configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4 {
    /// `(configuration label, [P@1, P@5, P@10, P@15])`.
    pub rows: Vec<(String, [f64; 4])>,
}

impl Table4 {
    /// Render paper-vs-measured.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Table 4 — precision by cycle lengths (top-1 top-5 top-10 top-15)"
        );
        for (label, measured) in &self.rows {
            let paper = PAPER_TABLE4
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| *v);
            match paper {
                Some(p) => {
                    let _ = writeln!(
                        s,
                        "  {label:<8} paper {} | measured {}",
                        fmt4(&p),
                        fmt4(measured)
                    );
                }
                None => {
                    let _ = writeln!(s, "  {label:<8} measured {}", fmt4(measured));
                }
            }
        }
        s
    }
}

/// A per-cycle-length series (Figs. 5, 6, 7a, 7b). Index = cycle
/// length; entries below the series' first length are `None`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LengthSeries {
    /// Figure label.
    pub label: String,
    /// `values[len]` = measured mean for that cycle length.
    pub values: Vec<Option<f64>>,
    /// Paper values aligned to `first_len`.
    pub paper: Vec<f64>,
    /// Cycle length of `paper[0]`.
    pub first_len: usize,
}

impl LengthSeries {
    /// Render paper-vs-measured per length.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.label);
        for (i, &p) in self.paper.iter().enumerate() {
            let len = self.first_len + i;
            let m = self.values.get(len).copied().flatten();
            match m {
                Some(v) => {
                    let _ = writeln!(s, "  len {len}: paper {p:>8.3} | measured {v:>8.3}");
                }
                None => {
                    let _ = writeln!(s, "  len {len}: paper {p:>8.3} | measured      n/a");
                }
            }
        }
        s
    }
}

/// Fig. 9: density of extra edges vs. contribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9 {
    /// Binned means: `(bin centre density, mean contribution, count)`.
    pub bins: Vec<(f64, f64, usize)>,
    /// OLS trend `(slope, intercept)` over the raw points.
    pub trend: Option<(f64, f64)>,
    /// Number of raw (density, contribution) points.
    pub points: usize,
}

impl Fig9 {
    /// Render the trend and bins. The paper shows a positive trend
    /// ("the denser the cycle, the better its contribution").
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Fig. 9 — density of extra edges vs contribution");
        match self.trend {
            Some((slope, intercept)) => {
                let _ = writeln!(
                    s,
                    "  trend: contribution ≈ {slope:.2}·density + {intercept:.2}  \
                     (paper: positive slope) over {} cycles",
                    self.points
                );
            }
            None => {
                let _ = writeln!(s, "  trend undefined ({} points)", self.points);
            }
        }
        for &(centre, mean, count) in &self.bins {
            let _ = writeln!(
                s,
                "  density {centre:>4.2}: mean contribution {mean:>8.2}%  (n={count})"
            );
        }
        s
    }
}

/// §3/§4 scalar statistics, paper-vs-measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalarStats {
    /// Mean TPR of the largest components (paper ≈ 0.3).
    pub tpr_mean: f64,
    /// Link reciprocity of the knowledge base (paper 0.1147).
    pub link_reciprocity: f64,
    /// Mean query-graph size in nodes (paper 208.22).
    pub avg_query_graph_nodes: f64,
    /// Mean cycles per query graph.
    pub avg_cycles_per_query: f64,
}

impl ScalarStats {
    /// Render paper-vs-measured.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "§3 scalar statistics");
        let _ = writeln!(
            s,
            "  TPR of LCCs:          paper ≈{PAPER_TPR:.3} | measured {:.3}",
            self.tpr_mean
        );
        let _ = writeln!(
            s,
            "  link reciprocity:     paper {PAPER_RECIPROCITY:.4} | measured {:.4}",
            self.link_reciprocity
        );
        let _ = writeln!(
            s,
            "  query-graph nodes:    paper {PAPER_QG_NODES:.2} | measured {:.2}",
            self.avg_query_graph_nodes
        );
        let _ = writeln!(
            s,
            "  cycles per query:     measured {:.2}",
            self.avg_cycles_per_query
        );
        s
    }
}

fn fmt_row(v: &[f64; 5]) -> String {
    format!(
        "[{:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>7.3}]",
        v[0], v[1], v[2], v[3], v[4]
    )
}

fn fmt4(v: &[f64; 4]) -> String {
    format!("[{:>5.3} {:>5.3} {:>5.3} {:>5.3}]", v[0], v[1], v[2], v[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use querygraph_retrieval::stats::five_number;

    fn fv(values: &[f64]) -> FiveNumber {
        five_number(values).unwrap()
    }

    #[test]
    fn table2_renders_both_columns() {
        let t = Table2 {
            rows: [fv(&[1.0]), fv(&[0.8]), fv(&[0.6]), fv(&[0.5])],
        };
        let out = t.render();
        assert!(out.contains("top-1"));
        assert!(out.contains("paper"));
        assert!(out.contains("measured"));
    }

    #[test]
    fn table4_includes_all_paper_rows() {
        let rows = PAPER_TABLE4
            .iter()
            .map(|(l, v)| (l.to_string(), *v))
            .collect();
        let out = Table4 { rows }.render();
        for (label, _) in PAPER_TABLE4 {
            assert!(out.contains(label), "missing {label}");
        }
    }

    #[test]
    fn length_series_renders_na_for_missing() {
        let s = LengthSeries {
            label: "Fig. 5".into(),
            values: vec![None, None, Some(42.0)],
            paper: PAPER_FIG5.to_vec(),
            first_len: 2,
        };
        let out = s.render();
        assert!(out.contains("42.000"));
        assert!(out.contains("n/a"));
    }

    #[test]
    fn fig9_renders_trend() {
        let f = Fig9 {
            bins: vec![(0.1, 20.0, 5)],
            trend: Some((30.0, 10.0)),
            points: 5,
        };
        let out = f.render();
        assert!(out.contains("30.00"));
        assert!(out.contains("n=5"));
    }

    #[test]
    fn scalar_stats_render() {
        let s = ScalarStats {
            tpr_mean: 0.31,
            link_reciprocity: 0.12,
            avg_query_graph_nodes: 150.0,
            avg_cycles_per_query: 80.0,
        };
        let out = s.render();
        assert!(out.contains("0.310"));
        assert!(out.contains("0.1147"));
    }

    #[test]
    fn serde_round_trip() {
        let t = Table2 {
            rows: [fv(&[1.0]), fv(&[0.8]), fv(&[0.6]), fv(&[0.5])],
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: Table2 = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows[0].max, t.rows[0].max);
    }
}
