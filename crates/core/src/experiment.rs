//! The end-to-end reproduction pipeline.
//!
//! [`Experiment::build`] synthesizes the Wikipedia and the corpus, and
//! indexes every document's linking text (the Fig. 2 extraction).
//! [`Experiment::run`] then executes, per query, the paper's §2–§3
//! pipeline:
//!
//! 1. entity-link the keywords → L(q.k) and the relevant documents →
//!    L(q.D);
//! 2. hill-climb the ground truth X(q) (§2.2);
//! 3. assemble the query graph G(q) (§2.3);
//! 4. enumerate and measure its cycles (§3), including per-cycle
//!    retrieval contributions;
//! 5. evaluate the Table 4 cycle-length configurations.
//!
//! [`Report`] aggregates everything into the paper's tables and
//! figures. The per-query pipeline itself — shared context, per-stage
//! timing, and the deterministic work-stealing runner behind
//! [`Experiment::run_parallel`] — lives in [`crate::pipeline`]; the
//! paper's §4 closes on precisely this performance challenge.

pub use crate::config::ExperimentConfig;

use crate::cycle_analysis::{mean_by_length, CycleRecord};
use crate::ground_truth::GroundTruth;
use crate::pipeline::{self, PipelineCtx, RunSummary};
use crate::query_graph::LccStats;
use crate::tables::{
    Fig9, LengthSeries, ScalarStats, Table2, Table3, Table4, PAPER_FIG5, PAPER_FIG6, PAPER_FIG7A,
    PAPER_FIG7B,
};
use querygraph_corpus::synth::SynthCorpus;
use querygraph_link::EntityLinker;
use querygraph_retrieval::backend::AnyEngine;
use querygraph_retrieval::stats::{five_number, ols, FiveNumber};
use querygraph_wiki::stats::{kb_stats, KbStats};
use querygraph_wiki::synth::SynthWiki;
use querygraph_wiki::ArticleId;
use serde::{Deserialize, Serialize};

/// The built world: knowledge base, corpus, and search engine.
pub struct Experiment {
    /// The synthetic Wikipedia.
    pub wiki: SynthWiki,
    /// The synthetic ImageCLEF-like corpus and query set.
    pub corpus: SynthCorpus,
    /// The INDRI-like retrieval backend over the documents' linking
    /// text — monolithic or sharded ([`AnyEngine`]); the analysis is
    /// byte-identical either way.
    pub engine: AnyEngine,
    /// The configuration used to build this experiment.
    pub config: ExperimentConfig,
}

/// Everything measured for one query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryAnalysis {
    /// Query id (1-based).
    pub query_id: u32,
    /// The raw keywords.
    pub keywords: String,
    /// L(q.k): articles linked from the keywords.
    pub lqk: Vec<ArticleId>,
    /// |L(q.D)| before pool capping.
    pub lqd_size: usize,
    /// Ground-truth result (§2.2).
    pub ground_truth: GroundTruth,
    /// Largest-component statistics of G(q) (Table 3).
    pub lcc: LccStats,
    /// Measured cycles with contributions (§3).
    pub cycles: Vec<CycleRecord>,
    /// Per-configuration precisions for Table 4.
    pub table4_rows: Vec<(String, [f64; 4])>,
    /// §4 article-frequency correlation `(pearson, spearman)`.
    pub correlation: Option<(f64, f64)>,
}

/// The aggregated reproduction results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Configuration of the run.
    pub config: ExperimentConfig,
    /// One analysis per query, in query order.
    pub per_query: Vec<QueryAnalysis>,
    /// Knowledge-base statistics (reciprocity etc.).
    pub kb: KbStats,
}

/// The Table 4 cycle-length configurations, in paper order.
pub const TABLE4_CONFIGS: [(&str, &[usize]); 7] = [
    ("2", &[2]),
    ("3", &[3]),
    ("4", &[4]),
    ("5", &[5]),
    ("2&3", &[2, 3]),
    ("2&3&4", &[2, 3, 4]),
    ("2&3&4&5", &[2, 3, 4, 5]),
];

impl Experiment {
    /// Generate the world and index it.
    ///
    /// Cache-backed and in-memory construction share one internal
    /// constructor path (`cache::build_world`), so the two can never
    /// drift: this is exactly [`Experiment::build_with_cache`] with no
    /// cache directory.
    pub fn build(config: &ExperimentConfig) -> Experiment {
        Self::build_with_cache(config, None).0
    }

    /// [`Experiment::build`] with an optional on-disk index cache: when
    /// `cache_dir` holds a valid artifact for this configuration, the
    /// index (and warm phrase dictionary) is loaded instead of rebuilt;
    /// otherwise it is built and persisted for the next run. See
    /// [`crate::cache`] for the artifact/fingerprint story.
    pub fn build_with_cache(
        config: &ExperimentConfig,
        cache_dir: Option<&std::path::Path>,
    ) -> (Experiment, crate::cache::BuildStats) {
        crate::cache::build_experiment(config, cache_dir)
    }

    /// [`Experiment::build`] over a sharded backend: `shards`
    /// doc-partitioned shards behind deterministic scatter-gather. The
    /// `Report` is byte-identical to the monolithic build at any shard
    /// count (golden-pinned and property-tested in
    /// `tests/sharded_equivalence.rs`).
    pub fn build_sharded(config: &ExperimentConfig, shards: usize) -> Experiment {
        crate::cache::build_experiment_with(
            config,
            None,
            &crate::cache::WorldOptions::sharded(shards),
        )
        .0
    }

    /// A serving facade ([`crate::service::QueryExpander`]) over this
    /// experiment's world, with default knobs. Builds the entity
    /// linker; construct once and reuse.
    pub fn expander(&self) -> crate::service::QueryExpander<'_> {
        crate::service::QueryExpander::new(&self.wiki.kb, &self.engine)
    }

    /// Analyze every query sequentially.
    pub fn run(&self) -> Report {
        self.run_with_summary().0
    }

    /// Analyze every query sequentially, also returning the per-stage
    /// timing summary.
    pub fn run_with_summary(&self) -> (Report, RunSummary) {
        self.execute(1)
    }

    /// Analyze queries across `threads` scoped worker threads using the
    /// [`crate::pipeline`] work-stealing runner. The engine (phrase
    /// cache behind a mutex), linker and knowledge base are shared;
    /// results land in query order and the `Report` is byte-identical
    /// to [`Experiment::run`]'s. `threads == 0` is treated as 1.
    pub fn run_parallel(&self, threads: usize) -> Report {
        self.run_parallel_with_summary(threads).0
    }

    /// [`Experiment::run_parallel`], also returning the per-stage
    /// timing summary.
    pub fn run_parallel_with_summary(&self, threads: usize) -> (Report, RunSummary) {
        self.execute(threads.max(1))
    }

    fn execute(&self, threads: usize) -> (Report, RunSummary) {
        let ctx = PipelineCtx::new(self);
        let (per_query, summary) = pipeline::run_queries(&ctx, threads);
        let report = Report {
            config: self.config.clone(),
            per_query,
            kb: kb_stats(&self.wiki.kb),
        };
        (report, summary)
    }

    /// The §2–§3 pipeline for one query (untimed; see
    /// [`PipelineCtx::analyze_timed`] for the instrumented variant).
    pub fn analyze_query(&self, linker: &EntityLinker<'_>, qi: usize) -> QueryAnalysis {
        pipeline::analyze_one(
            &self.config,
            &self.corpus,
            self.engine.backend(),
            &self.wiki.kb,
            linker,
            qi,
        )
        .0
    }
}

impl Report {
    /// Table 2: ground-truth precision summary.
    pub fn table2(&self) -> Table2 {
        let mut rows = Vec::with_capacity(4);
        for cut in 0..4 {
            let values: Vec<f64> = self
                .per_query
                .iter()
                .map(|q| q.ground_truth.precisions[cut])
                .collect();
            rows.push(summary(&values));
        }
        Table2 {
            rows: [rows[0], rows[1], rows[2], rows[3]],
        }
    }

    /// Table 3: largest-component statistics.
    pub fn table3(&self) -> Table3 {
        let collect = |f: fn(&LccStats) -> f64| -> Vec<f64> {
            self.per_query.iter().map(|q| f(&q.lcc)).collect()
        };
        Table3 {
            size: summary(&collect(|l| l.size_ratio)),
            query_nodes: summary(&collect(|l| l.query_node_ratio)),
            articles: summary(&collect(|l| l.article_ratio)),
            categories: summary(&collect(|l| l.category_ratio)),
            expansion_ratio: summary(&collect(|l| l.expansion_ratio)),
        }
    }

    /// Table 4: mean precision per cycle-length configuration.
    pub fn table4(&self) -> Table4 {
        let mut rows = Vec::new();
        for (label, _) in TABLE4_CONFIGS {
            let mut sums = [0.0f64; 4];
            let mut n = 0usize;
            for q in &self.per_query {
                if let Some((_, p)) = q.table4_rows.iter().find(|(l, _)| l == label) {
                    for i in 0..4 {
                        sums[i] += p[i];
                    }
                    n += 1;
                }
            }
            if n > 0 {
                for s in &mut sums {
                    *s /= n as f64;
                }
            }
            rows.push((label.to_string(), sums));
        }
        Table4 { rows }
    }

    fn all_cycles(&self) -> impl Iterator<Item = &CycleRecord> {
        self.per_query.iter().flat_map(|q| q.cycles.iter())
    }

    /// Fig. 5: mean contribution (%) per cycle length.
    pub fn fig5(&self) -> LengthSeries {
        let records: Vec<CycleRecord> = self.all_cycles().cloned().collect();
        LengthSeries {
            label: "Fig. 5 — average contribution (%) vs cycle length".into(),
            values: mean_by_length(&records, self.config.max_cycle_len, |r| r.contribution),
            paper: PAPER_FIG5.to_vec(),
            first_len: 2,
        }
    }

    /// Fig. 6: mean number of cycles per length, averaged over queries.
    pub fn fig6(&self) -> LengthSeries {
        let max_len = self.config.max_cycle_len;
        let nq = self.per_query.len().max(1);
        let mut counts = vec![0usize; max_len + 1];
        for q in &self.per_query {
            for rec in &q.cycles {
                if rec.len <= max_len {
                    counts[rec.len] += 1;
                }
            }
        }
        LengthSeries {
            label: "Fig. 6 — average number of cycles vs cycle length".into(),
            values: counts
                .iter()
                .enumerate()
                .map(|(l, &c)| (l >= 2).then(|| c as f64 / nq as f64))
                .collect(),
            paper: PAPER_FIG6.to_vec(),
            first_len: 2,
        }
    }

    /// Fig. 7a: mean category ratio per cycle length (3..=5).
    pub fn fig7a(&self) -> LengthSeries {
        let records: Vec<CycleRecord> = self.all_cycles().cloned().collect();
        let mut values = mean_by_length(&records, self.config.max_cycle_len, |r| {
            Some(r.category_ratio)
        });
        // The paper's Fig. 7a starts at length 3 (2-cycles cannot hold
        // categories).
        if values.len() > 2 {
            values[2] = None;
        }
        LengthSeries {
            label: "Fig. 7a — average category ratio vs cycle length".into(),
            values,
            paper: PAPER_FIG7A.to_vec(),
            first_len: 3,
        }
    }

    /// Fig. 7b: mean density of extra edges per cycle length (3..=5).
    pub fn fig7b(&self) -> LengthSeries {
        let records: Vec<CycleRecord> = self.all_cycles().cloned().collect();
        LengthSeries {
            label: "Fig. 7b — average density of extra edges vs cycle length".into(),
            values: mean_by_length(&records, self.config.max_cycle_len, |r| {
                r.extra_edge_density
            }),
            paper: PAPER_FIG7B.to_vec(),
            first_len: 3,
        }
    }

    /// Fig. 9: density of extra edges vs contribution (binned + OLS
    /// trend).
    pub fn fig9(&self) -> Fig9 {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for rec in self.all_cycles() {
            if let (Some(d), Some(c)) = (rec.extra_edge_density, rec.contribution) {
                xs.push(d);
                ys.push(c);
            }
        }
        let trend = ols(&xs, &ys);
        const BINS: usize = 10;
        let mut sums = [0.0; BINS];
        let mut counts = [0usize; BINS];
        for (&x, &y) in xs.iter().zip(&ys) {
            let b = ((x * BINS as f64) as usize).min(BINS - 1);
            sums[b] += y;
            counts[b] += 1;
        }
        let bins = (0..BINS)
            .filter(|&b| counts[b] > 0)
            .map(|b| {
                (
                    (b as f64 + 0.5) / BINS as f64,
                    sums[b] / counts[b] as f64,
                    counts[b],
                )
            })
            .collect();
        Fig9 {
            bins,
            trend,
            points: xs.len(),
        }
    }

    /// §3 scalar statistics.
    pub fn scalar_stats(&self) -> ScalarStats {
        let nq = self.per_query.len().max(1) as f64;
        ScalarStats {
            tpr_mean: self.per_query.iter().map(|q| q.lcc.tpr).sum::<f64>() / nq,
            link_reciprocity: self.kb.link_reciprocity.unwrap_or(0.0),
            avg_query_graph_nodes: self
                .per_query
                .iter()
                .map(|q| q.lcc.total_nodes as f64)
                .sum::<f64>()
                / nq,
            avg_cycles_per_query: self
                .per_query
                .iter()
                .map(|q| q.cycles.len() as f64)
                .sum::<f64>()
                / nq,
        }
    }

    /// Mean §4 correlation over queries where it is defined.
    pub fn mean_correlation(&self) -> Option<(f64, f64)> {
        let pairs: Vec<(f64, f64)> = self
            .per_query
            .iter()
            .filter_map(|q| q.correlation)
            .collect();
        if pairs.is_empty() {
            return None;
        }
        let n = pairs.len() as f64;
        Some((
            pairs.iter().map(|p| p.0).sum::<f64>() / n,
            pairs.iter().map(|p| p.1).sum::<f64>() / n,
        ))
    }

    /// Render every table and figure, paper-vs-measured.
    pub fn render_all(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.table2().render());
        s.push('\n');
        s.push_str(&self.table3().render());
        s.push('\n');
        s.push_str(&self.table4().render());
        s.push('\n');
        s.push_str(&self.fig5().render());
        s.push('\n');
        s.push_str(&self.fig6().render());
        s.push('\n');
        s.push_str(&self.fig7a().render());
        s.push('\n');
        s.push_str(&self.fig7b().render());
        s.push('\n');
        s.push_str(&self.fig9().render());
        s.push('\n');
        s.push_str(&self.scalar_stats().render());
        if let Some((p, sp)) = self.mean_correlation() {
            s.push_str(&format!(
                "\n§4 article frequency↔goodness correlation: pearson {p:.3}, spearman {sp:.3}\n"
            ));
        }
        s
    }
}

/// Five-number summary with an all-zero fallback for empty input (keeps
/// report rendering total).
fn summary(values: &[f64]) -> FiveNumber {
    five_number(values).unwrap_or(FiveNumber {
        min: 0.0,
        q1: 0.0,
        median: 0.0,
        q3: 0.0,
        max: 0.0,
        mean: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> Report {
        let exp = Experiment::build(&ExperimentConfig::tiny());
        exp.run()
    }

    #[test]
    fn builds_and_runs_tiny() {
        let report = tiny_report();
        assert_eq!(
            report.per_query.len(),
            ExperimentConfig::tiny().corpus.num_queries
        );
        for q in &report.per_query {
            assert!(!q.lqk.is_empty(), "keywords must link: {:?}", q.keywords);
            assert!(q.lqd_size > 0, "relevant docs must mention articles");
        }
    }

    #[test]
    fn ground_truth_beats_or_equals_baseline() {
        let report = tiny_report();
        for q in &report.per_query {
            assert!(
                q.ground_truth.quality >= q.ground_truth.baseline_quality - 1e-9,
                "query {}: gt {} < baseline {}",
                q.query_id,
                q.ground_truth.quality,
                q.ground_truth.baseline_quality
            );
        }
    }

    #[test]
    fn expansion_improves_some_query() {
        let report = tiny_report();
        let improved = report
            .per_query
            .iter()
            .filter(|q| q.ground_truth.quality > q.ground_truth.baseline_quality + 1e-9)
            .count();
        assert!(
            improved > 0,
            "vocabulary mismatch must make expansion profitable somewhere"
        );
    }

    #[test]
    fn tables_render() {
        let report = tiny_report();
        let out = report.render_all();
        assert!(out.contains("Table 2"));
        assert!(out.contains("Table 3"));
        assert!(out.contains("Table 4"));
        assert!(out.contains("Fig. 5"));
        assert!(out.contains("Fig. 9"));
    }

    #[test]
    fn parallel_matches_sequential() {
        let exp = Experiment::build(&ExperimentConfig::tiny());
        let seq = exp.run();
        let par = exp.run_parallel(4);
        assert_eq!(seq.per_query.len(), par.per_query.len());
        for (a, b) in seq.per_query.iter().zip(&par.per_query) {
            assert_eq!(a.query_id, b.query_id);
            assert_eq!(a.ground_truth.expansion, b.ground_truth.expansion);
            assert_eq!(a.cycles.len(), b.cycles.len());
            assert_eq!(a.table4_rows, b.table4_rows);
        }
    }

    #[test]
    fn cycles_have_contributions() {
        let report = tiny_report();
        for q in &report.per_query {
            for c in &q.cycles {
                assert!(c.contribution.is_some());
            }
        }
    }

    #[test]
    fn report_serializes() {
        let report = tiny_report();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("per_query"));
    }

    #[test]
    fn table4_rows_complete() {
        let report = tiny_report();
        let t4 = report.table4();
        assert_eq!(t4.rows.len(), 7);
        for (_, p) in &t4.rows {
            for v in p {
                assert!((0.0..=1.0).contains(v));
            }
        }
    }
}
