//! The serving facade: per-query expansion as an online API.
//!
//! The paper's deliverable is an *online* technique — expand one
//! incoming query via the cycle structure of its Wikipedia subgraph —
//! but the reproduction pipeline ([`crate::experiment`]) only exposes
//! it through the batch `Experiment::run()` loop that rebuilds ground
//! truths and aggregates every table per call. This module is the
//! serving-time entrypoint that amortizes the expensive state (index,
//! knowledge base, entity-linker dictionary) once and answers ad-hoc
//! queries end to end:
//!
//! * [`QueryExpander`] — built once from a knowledge base and a
//!   [`RetrievalBackend`]; answers [`ExpansionRequest`]s (entity linking →
//!   expansion features → INDRI query → optional retrieval) through
//!   [`ExpansionResponse`]s. Every failure on the serving path is a
//!   typed [`ServiceError`], never a panic.
//! * [`QueryExpanderBuilder`] — the knobs: expansion strategy
//!   ([`ExpansionStrategy`]), language-model smoothing, linker synonym
//!   pass, feature caps, default retrieval depth.
//! * [`QueryExpander::expand_batch`] — many requests over the same
//!   deterministic work-stealing runner the reproduction pipeline uses
//!   ([`crate::pipeline::parallel_map`]); output order always matches
//!   input order.
//! * [`ServingWorld`] — the owned world a long-lived server holds:
//!   synthesized knowledge base + engine, loaded either strictly from a
//!   PR-3 on-disk artifact ([`ServingWorld::load`], typed errors) or
//!   leniently with build-and-persist fallback ([`ServingWorld::open`]).
//!
//! The reproduction pipeline itself consumes this facade — its
//! [`crate::pipeline::PipelineCtx`] holds a [`QueryExpander`] — so the
//! batch experiment is one client of the serving API rather than the
//! only entrypoint.
//!
//! ```
//! use querygraph_core::config::ExperimentConfig;
//! use querygraph_core::service::{ExpansionRequest, ServingWorld};
//!
//! // Build (or load) the world once; serve many queries.
//! let world = ServingWorld::open(&ExperimentConfig::tiny(), None);
//! let expander = world.expander();
//! let query = world.wiki.kb.title(world.wiki.kb.main_articles().next().unwrap());
//! let response = expander.expand(&ExpansionRequest::new(query)).unwrap();
//! assert!(!response.entities.is_empty());
//! assert!(response.expanded_query.starts_with("#combine("));
//! ```

use crate::cache::{self, WorldOptions};
use crate::config::ExperimentConfig;
use crate::expansion::{
    expanded_titles, CycleExpander, CycleExpanderConfig, DirectLinkExpander, Expander,
    RedirectExpander,
};
use crate::expcache::{CacheKey, ExpansionCache};
use crate::pipeline::parallel_map;
use querygraph_link::EntityLinker;
use querygraph_retrieval::backend::{AnyEngine, RetrievalBackend};
use querygraph_retrieval::engine::SearchMode;
use querygraph_retrieval::lm::LmParams;
use querygraph_retrieval::ondisk::OndiskError;
use querygraph_retrieval::query_lang::QueryNode;
use querygraph_retrieval::sharded::ShardedError;
use querygraph_wiki::synth::{generate, SynthWiki};
use querygraph_wiki::{ArticleId, KnowledgeBase};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Typed failure on the serving path. Everything reachable from
/// [`ServingWorld::load`] and [`QueryExpander::expand`] surfaces as one
/// of these — the serving path never panics on bad input or a bad
/// artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request text is empty (or whitespace-only).
    EmptyQuery,
    /// Entity linking found no article mention in the query text, so
    /// there is nothing to expand (§2.1: expansion starts from L(q.k)).
    NoLinkedEntities {
        /// The query text as served.
        query: String,
    },
    /// Retrieval was requested but the expander was built without a
    /// search engine ([`QueryExpanderBuilder::build_offline`]).
    NoEngine,
    /// No artifact exists at the expected cache path (cold cache).
    ArtifactMissing {
        /// The fingerprint-keyed path that was probed.
        path: PathBuf,
    },
    /// The artifact exists but failed to load (corruption, truncation,
    /// version skew — see the wrapped [`OndiskError`]). For sharded
    /// artifacts this covers the *manifest*; segment failures carry
    /// their shard index in [`ServiceError::ArtifactShard`].
    ArtifactLoad {
        /// The artifact path.
        path: PathBuf,
        /// The loader's typed failure.
        source: OndiskError,
    },
    /// One segment of a sharded artifact failed to load — corruption,
    /// truncation, a segment swapped into the wrong slot. Names the
    /// shard so an operator knows exactly which segment to replace.
    ArtifactShard {
        /// The failing segment's path.
        path: PathBuf,
        /// Index of the failing shard.
        shard: usize,
        /// The segment loader's typed failure.
        source: OndiskError,
    },
    /// The artifact loaded but was written for a different world
    /// configuration (embedded fingerprint mismatch, e.g. a renamed
    /// file).
    ArtifactFingerprint {
        /// The artifact path.
        path: PathBuf,
        /// Fingerprint of the requested configuration.
        expected: u64,
        /// Fingerprint recorded in the artifact header.
        found: u64,
    },
    /// The artifact matches the configuration fingerprint but indexes a
    /// different number of documents than the regenerated corpus —
    /// generator or tokenizer code drifted since it was written.
    ArtifactStale {
        /// The artifact path.
        path: PathBuf,
        /// Documents in the loaded index.
        indexed_docs: usize,
        /// Documents in the regenerated corpus.
        corpus_docs: usize,
    },
    /// The request exceeded its serving [`Deadline`] — while queued
    /// before admission, or because its answer (computed *or* served
    /// from the expansion cache) landed after the budget ran out. The
    /// network front-end maps this to HTTP 408 with `Retry-After`.
    Timeout {
        /// Milliseconds actually elapsed when the deadline check fired.
        elapsed_ms: u64,
        /// The request's deadline budget, in milliseconds.
        budget_ms: u64,
    },
    /// The server refused this request before serving it because its
    /// bounded queue was full — graceful load shedding. The network
    /// front-end maps this to HTTP 503 with `Retry-After`.
    Overloaded {
        /// Connections already waiting when the request was shed.
        queue_depth: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::EmptyQuery => write!(f, "empty query"),
            ServiceError::NoLinkedEntities { query } => {
                write!(f, "no article mention links in query {query:?}")
            }
            ServiceError::NoEngine => {
                write!(f, "retrieval requested but expander has no search engine")
            }
            ServiceError::ArtifactMissing { path } => {
                write!(f, "no index artifact at {}", path.display())
            }
            ServiceError::ArtifactLoad { path, source } => {
                write!(f, "index artifact {}: {source}", path.display())
            }
            ServiceError::ArtifactShard {
                path,
                shard,
                source,
            } => write!(
                f,
                "index artifact shard {shard} ({}): {source}",
                path.display()
            ),
            ServiceError::ArtifactFingerprint {
                path,
                expected,
                found,
            } => write!(
                f,
                "index artifact {}: written for configuration {found:#018x}, \
                 expected {expected:#018x}",
                path.display()
            ),
            ServiceError::ArtifactStale {
                path,
                indexed_docs,
                corpus_docs,
            } => write!(
                f,
                "index artifact {}: stale ({indexed_docs} docs indexed, corpus has \
                 {corpus_docs})",
                path.display()
            ),
            ServiceError::Timeout {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "deadline exceeded after {elapsed_ms} ms (budget {budget_ms} ms)"
            ),
            ServiceError::Overloaded { queue_depth } => {
                write!(f, "server overloaded ({queue_depth} requests queued)")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::ArtifactLoad { source, .. }
            | ServiceError::ArtifactShard { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl ServiceError {
    /// Every code [`ServiceError::code`] can produce, in variant
    /// declaration order. A wire-stability test pins this list: adding
    /// a variant without extending it (and the serde impls below) is a
    /// compile- or test-time error, never a silent wire change.
    pub const CODES: [&'static str; 10] = [
        "empty_query",
        "no_linked_entities",
        "no_engine",
        "artifact_missing",
        "artifact_load",
        "artifact_shard",
        "artifact_fingerprint",
        "artifact_stale",
        "timeout",
        "overloaded",
    ];

    /// The wire-stable machine-readable code for this error — the
    /// discriminator the HTTP error body, the serde form, and the
    /// `ServeRecord`'s per-code counters all share. Codes never change
    /// meaning; new variants append new codes.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::EmptyQuery => "empty_query",
            ServiceError::NoLinkedEntities { .. } => "no_linked_entities",
            ServiceError::NoEngine => "no_engine",
            ServiceError::ArtifactMissing { .. } => "artifact_missing",
            ServiceError::ArtifactLoad { .. } => "artifact_load",
            ServiceError::ArtifactShard { .. } => "artifact_shard",
            ServiceError::ArtifactFingerprint { .. } => "artifact_fingerprint",
            ServiceError::ArtifactStale { .. } => "artifact_stale",
            ServiceError::Timeout { .. } => "timeout",
            ServiceError::Overloaded { .. } => "overloaded",
        }
    }

    /// Seconds a client should wait before retrying, for the errors
    /// that are worth retrying at all (shed and timed-out requests).
    /// The HTTP front-end renders this value — *this* value, not a
    /// fixed constant — as the `Retry-After` header, so the two
    /// overload shapes give different back-off hints: a timed-out
    /// request (408) can retry almost immediately (its budget simply
    /// ran out), while a shed connection (503) means the queue is full
    /// and piling back on one second later just re-sheds.
    pub fn retry_after_seconds(&self) -> Option<u32> {
        match self {
            ServiceError::Timeout { .. } => Some(1),
            ServiceError::Overloaded { .. } => Some(2),
            _ => None,
        }
    }
}

// The wire form is a tagged object — `{"code": ..., fields...}` — with
// exactly the fields of the variant. Hand-written because the offline
// serde shim cannot derive data-carrying enums. The wrapped
// [`OndiskError`] of the artifact variants crosses the wire as its
// rendered message and is reconstructed as `OndiskError::Io(message)`:
// artifact errors are operator diagnostics that never need structured
// re-dispatch on the far side of a socket.
impl Serialize for ServiceError {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        // `Io` carries a plain message already — ship it bare so Io
        // sources round-trip exactly; other variants ship rendered.
        fn source_wire(source: &OndiskError) -> String {
            match source {
                OndiskError::Io(message) => message.clone(),
                other => other.to_string(),
            }
        }
        let mut fields: Vec<(String, Value)> =
            vec![("code".to_string(), Value::Str(self.code().to_string()))];
        let mut push = |name: &str, value: Value| fields.push((name.to_string(), value));
        match self {
            ServiceError::EmptyQuery | ServiceError::NoEngine => {}
            ServiceError::NoLinkedEntities { query } => {
                push("query", Value::Str(query.clone()));
            }
            ServiceError::ArtifactMissing { path } => {
                push("path", Value::Str(path.display().to_string()));
            }
            ServiceError::ArtifactLoad { path, source } => {
                push("path", Value::Str(path.display().to_string()));
                push("source", Value::Str(source_wire(source)));
            }
            ServiceError::ArtifactShard {
                path,
                shard,
                source,
            } => {
                push("path", Value::Str(path.display().to_string()));
                push("shard", Value::UInt(*shard as u64));
                push("source", Value::Str(source_wire(source)));
            }
            ServiceError::ArtifactFingerprint {
                path,
                expected,
                found,
            } => {
                push("path", Value::Str(path.display().to_string()));
                push("expected", Value::UInt(*expected));
                push("found", Value::UInt(*found));
            }
            ServiceError::ArtifactStale {
                path,
                indexed_docs,
                corpus_docs,
            } => {
                push("path", Value::Str(path.display().to_string()));
                push("indexed_docs", Value::UInt(*indexed_docs as u64));
                push("corpus_docs", Value::UInt(*corpus_docs as u64));
            }
            ServiceError::Timeout {
                elapsed_ms,
                budget_ms,
            } => {
                push("elapsed_ms", Value::UInt(*elapsed_ms));
                push("budget_ms", Value::UInt(*budget_ms));
            }
            ServiceError::Overloaded { queue_depth } => {
                push("queue_depth", Value::UInt(*queue_depth as u64));
            }
        }
        Value::Object(fields)
    }
}

impl Deserialize for ServiceError {
    fn from_value(v: &serde::Value) -> Result<ServiceError, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::expected("object", "ServiceError", v))?;
        let field = |name: &str| serde::__private::field::<String>(entries, name, "ServiceError");
        let path = || field("path").map(PathBuf::from);
        let source = || field("source").map(OndiskError::Io);
        let code = field("code")?;
        Ok(match code.as_str() {
            "empty_query" => ServiceError::EmptyQuery,
            "no_linked_entities" => ServiceError::NoLinkedEntities {
                query: field("query")?,
            },
            "no_engine" => ServiceError::NoEngine,
            "artifact_missing" => ServiceError::ArtifactMissing { path: path()? },
            "artifact_load" => ServiceError::ArtifactLoad {
                path: path()?,
                source: source()?,
            },
            "artifact_shard" => ServiceError::ArtifactShard {
                path: path()?,
                shard: serde::__private::field(entries, "shard", "ServiceError")?,
                source: source()?,
            },
            "artifact_fingerprint" => ServiceError::ArtifactFingerprint {
                path: path()?,
                expected: serde::__private::field(entries, "expected", "ServiceError")?,
                found: serde::__private::field(entries, "found", "ServiceError")?,
            },
            "artifact_stale" => ServiceError::ArtifactStale {
                path: path()?,
                indexed_docs: serde::__private::field(entries, "indexed_docs", "ServiceError")?,
                corpus_docs: serde::__private::field(entries, "corpus_docs", "ServiceError")?,
            },
            "timeout" => ServiceError::Timeout {
                elapsed_ms: serde::__private::field(entries, "elapsed_ms", "ServiceError")?,
                budget_ms: serde::__private::field(entries, "budget_ms", "ServiceError")?,
            },
            "overloaded" => ServiceError::Overloaded {
                queue_depth: serde::__private::field(entries, "queue_depth", "ServiceError")?,
            },
            other => {
                return Err(serde::Error(format!(
                    "unknown ServiceError code {other:?} (known: {})",
                    ServiceError::CODES.join(", ")
                )))
            }
        })
    }
}

/// A per-request serving deadline: an arrival instant plus a budget.
///
/// Deadlines measure *total* request age — queue wait included — not
/// just compute time, so a request that spent its whole budget waiting
/// for a worker is refused at admission rather than served late. The
/// HTTP front-end stamps one of these per request; batch callers can
/// pass [`QueryExpander::expand_deadlined`] their own.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline starting now with the given budget.
    pub fn after(budget: Duration) -> Deadline {
        Deadline::starting_at(Instant::now(), budget)
    }

    /// A deadline whose clock started at `start` (e.g. when the request
    /// was *accepted*, before it waited in a queue).
    pub fn starting_at(start: Instant, budget: Duration) -> Deadline {
        Deadline { start, budget }
    }

    /// The total budget.
    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// Time consumed since the deadline's start instant.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Budget not yet consumed (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.elapsed())
    }

    /// Whether the budget is exhausted.
    pub fn expired(&self) -> bool {
        self.elapsed() >= self.budget
    }

    /// `Err(`[`ServiceError::Timeout`]`)` once the budget is exhausted.
    pub fn check(&self) -> Result<(), ServiceError> {
        if self.expired() {
            Err(self.timeout_error())
        } else {
            Ok(())
        }
    }

    /// The typed timeout this deadline produces, stamped with the
    /// actual elapsed time.
    pub fn timeout_error(&self) -> ServiceError {
        ServiceError::Timeout {
            elapsed_ms: self.elapsed().as_millis() as u64,
            budget_ms: self.budget.as_millis() as u64,
        }
    }
}

/// Which expansion engine ([`crate::expansion`]) serves the features.
///
/// (Not serde-derivable under the offline shim — data-carrying enum
/// variants are unsupported there; the CLI surface uses
/// [`ExpansionStrategy::parse`] instead.)
#[derive(Debug, Clone, PartialEq)]
pub enum ExpansionStrategy {
    /// No expansion: the response carries the linked entities only.
    None,
    /// Link-neighbourhood baseline of the related work.
    DirectLinks {
        /// Maximum number of features returned.
        max_features: usize,
    },
    /// §4 future-work variant: redirect titles as features.
    Redirects {
        /// Maximum number of features returned.
        max_features: usize,
    },
    /// The paper's prescription: dense cycles with ≈30 % categories.
    Cycles(CycleExpanderConfig),
}

impl Default for ExpansionStrategy {
    fn default() -> Self {
        ExpansionStrategy::Cycles(CycleExpanderConfig::default())
    }
}

impl ExpansionStrategy {
    /// Short name for logs and bench records.
    pub fn name(&self) -> &'static str {
        match self {
            ExpansionStrategy::None => "none",
            ExpansionStrategy::DirectLinks { .. } => "direct-links",
            ExpansionStrategy::Redirects { .. } => "redirects",
            ExpansionStrategy::Cycles(_) => "cycles",
        }
    }

    /// Parse a CLI strategy name (`cycles`, `links`, `redirects`,
    /// `none`). Non-cycle strategies default to 10 features.
    pub fn parse(name: &str) -> Option<ExpansionStrategy> {
        match name {
            "none" => Some(ExpansionStrategy::None),
            "links" | "direct-links" => Some(ExpansionStrategy::DirectLinks { max_features: 10 }),
            "redirects" => Some(ExpansionStrategy::Redirects { max_features: 10 }),
            "cycles" => Some(ExpansionStrategy::Cycles(CycleExpanderConfig::default())),
            _ => None,
        }
    }

    /// Run the selected engine.
    fn features(&self, kb: &KnowledgeBase, query_articles: &[ArticleId]) -> Vec<ArticleId> {
        match self {
            ExpansionStrategy::None => Vec::new(),
            ExpansionStrategy::DirectLinks { max_features } => DirectLinkExpander {
                max_features: *max_features,
            }
            .expand(kb, query_articles),
            ExpansionStrategy::Redirects { max_features } => RedirectExpander {
                max_features: *max_features,
            }
            .expand(kb, query_articles),
            ExpansionStrategy::Cycles(config) => CycleExpander {
                config: config.clone(),
            }
            .expand(kb, query_articles),
        }
    }
}

/// One ad-hoc expansion request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpansionRequest {
    /// The free-text query (the paper's `q.k`).
    pub text: String,
    /// Cap on returned features; combined with the builder's cap the
    /// *lower* bound wins (a request can tighten the server's cap,
    /// never raise it). `None` uses the builder's cap alone, which
    /// itself defaults to the strategy's own limit.
    pub max_features: Option<usize>,
    /// Retrieve this many documents with the expanded query; `None`
    /// falls back to the builder's default (off unless configured).
    pub top_k: Option<usize>,
}

impl ExpansionRequest {
    /// Request with the builder's defaults for every knob.
    pub fn new(text: impl Into<String>) -> ExpansionRequest {
        ExpansionRequest {
            text: text.into(),
            max_features: None,
            top_k: None,
        }
    }

    /// Cap the number of expansion features for this request.
    pub fn with_max_features(mut self, max: usize) -> ExpansionRequest {
        self.max_features = Some(max);
        self
    }

    /// Also retrieve the top `k` documents with the expanded query.
    pub fn with_retrieval(mut self, k: usize) -> ExpansionRequest {
        self.top_k = Some(k);
        self
    }
}

/// One resolved article in a response: id plus its (main) title.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpansionTerm {
    /// The article.
    pub article: ArticleId,
    /// Its title — the text actually added to the expanded query.
    pub title: String,
}

/// One retrieved document (mirrors
/// [`querygraph_retrieval::SearchHit`], serializable).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrievedDoc {
    /// Document id.
    pub doc: u32,
    /// Query-likelihood score (log domain, higher is better).
    pub score: f64,
}

/// The served expansion for one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpansionResponse {
    /// The query text as served (trimmed).
    pub query: String,
    /// L(q.k): the entities linked from the query text.
    pub entities: Vec<ExpansionTerm>,
    /// The expansion features, in rank order.
    pub features: Vec<ExpansionTerm>,
    /// The INDRI query over entity + feature titles (`#combine` of
    /// exact `#1` phrases — what the paper feeds the engine).
    pub expanded_query: String,
    /// Retrieval results (empty unless the request asked for them).
    pub hits: Vec<RetrievedDoc>,
}

impl ExpansionResponse {
    /// The feature titles, in rank order.
    pub fn feature_titles(&self) -> Vec<&str> {
        self.features.iter().map(|t| t.title.as_str()).collect()
    }
}

/// Knobs for a [`QueryExpander`]: expansion strategy, linker behaviour,
/// feature caps, retrieval defaults, and — on the loading constructors —
/// language-model smoothing.
#[derive(Debug, Clone)]
pub struct QueryExpanderBuilder {
    strategy: ExpansionStrategy,
    use_synonyms: bool,
    max_features: Option<usize>,
    default_top_k: Option<usize>,
    lm: LmParams,
    search_mode: SearchMode,
    cache: Option<Arc<ExpansionCache>>,
}

impl Default for QueryExpanderBuilder {
    fn default() -> Self {
        QueryExpanderBuilder {
            strategy: ExpansionStrategy::default(),
            use_synonyms: true,
            max_features: None,
            default_top_k: None,
            lm: LmParams::default(),
            search_mode: SearchMode::Exact,
            cache: None,
        }
    }
}

impl QueryExpanderBuilder {
    /// Select the expansion strategy (default: the paper's cycle-based
    /// expander).
    pub fn strategy(mut self, strategy: ExpansionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enable or disable the linker's synonym pass (default: on, the
    /// paper's behaviour).
    pub fn synonyms(mut self, on: bool) -> Self {
        self.use_synonyms = on;
        self
    }

    /// Cap features for every request (requests can still lower it).
    pub fn max_features(mut self, max: usize) -> Self {
        self.max_features = Some(max);
        self
    }

    /// Retrieve this many documents per request by default (requests
    /// can override; default: no retrieval).
    pub fn retrieve_top(mut self, k: usize) -> Self {
        self.default_top_k = Some(k);
        self
    }

    /// Dirichlet smoothing for engines built by [`Self::load_world`] /
    /// [`Self::open_world`] (borrowed engines keep their own params).
    pub fn lm(mut self, params: LmParams) -> Self {
        self.lm = params;
        self
    }

    /// Retrieval execution mode (default: [`SearchMode::Exact`]).
    /// [`SearchMode::Pruned`] trades bit-identical scores for block-max
    /// top-k pruning; results stay rank-equivalent (same documents in
    /// the same order, scores within 1e-9).
    pub fn search_mode(mut self, mode: SearchMode) -> Self {
        self.search_mode = mode;
        self
    }

    /// Memoize complete responses in `cache` (shared via `Arc`, so a
    /// server can also read its hit statistics; default: no cache).
    /// Safe because expansion is a pure function of the read-only world
    /// and the effective request knobs — all of which are in the cache
    /// key.
    pub fn expansion_cache(mut self, cache: Arc<ExpansionCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Build the expander over a borrowed world. Constructs the entity
    /// linker's title dictionary — the expensive part — exactly once.
    /// Takes any [`RetrievalBackend`] — a `&SearchEngine`, a
    /// `&ShardedEngine`, or an `&AnyEngine` all coerce.
    pub fn build<'w>(
        &self,
        kb: &'w KnowledgeBase,
        engine: &'w dyn RetrievalBackend,
    ) -> QueryExpander<'w> {
        self.assemble(kb, Some(engine))
    }

    /// [`Self::build`] without a search engine: expansion only, any
    /// retrieval request fails with [`ServiceError::NoEngine`].
    pub fn build_offline<'w>(&self, kb: &'w KnowledgeBase) -> QueryExpander<'w> {
        self.assemble(kb, None)
    }

    /// Strictly load a [`ServingWorld`] from a cached artifact with
    /// this builder's LM params (see [`ServingWorld::load`]).
    pub fn load_world(
        &self,
        config: &ExperimentConfig,
        cache_dir: &std::path::Path,
    ) -> Result<ServingWorld, ServiceError> {
        ServingWorld::load_with(config, cache_dir, self.lm)
    }

    /// Load-or-build a [`ServingWorld`] with this builder's LM params
    /// (see [`ServingWorld::open`]).
    pub fn open_world(
        &self,
        config: &ExperimentConfig,
        cache_dir: Option<&std::path::Path>,
    ) -> ServingWorld {
        ServingWorld::open_with(config, cache_dir, self.lm)
    }

    fn assemble<'w>(
        &self,
        kb: &'w KnowledgeBase,
        engine: Option<&'w dyn RetrievalBackend>,
    ) -> QueryExpander<'w> {
        let linker = if self.use_synonyms {
            EntityLinker::new(kb)
        } else {
            EntityLinker::new(kb).without_synonyms()
        };
        QueryExpander {
            kb,
            engine,
            linker,
            strategy: self.strategy.clone(),
            max_features: self.max_features,
            default_top_k: self.default_top_k,
            search_mode: self.search_mode,
            cache: self.cache.clone(),
        }
    }
}

/// The per-query serving facade: entity linking → expansion → INDRI
/// query → optional retrieval, over a world built once.
///
/// Construction is the expensive step (the linker's title dictionary);
/// [`QueryExpander::expand`] is allocation-light and lock-free except
/// for the engine's memoizing phrase cache, so one expander can serve
/// many threads ([`QueryExpander::expand_batch`] does exactly that).
///
/// ```
/// use querygraph_core::config::ExperimentConfig;
/// use querygraph_core::service::{ExpansionRequest, QueryExpander, ServingWorld};
///
/// let world = ServingWorld::open(&ExperimentConfig::tiny(), None);
/// let expander = QueryExpander::new(&world.wiki.kb, &world.engine);
/// let title = world.wiki.kb.title(world.wiki.kb.main_articles().next().unwrap());
/// // Expand and also retrieve the top 5 documents.
/// let response = expander
///     .expand(&ExpansionRequest::new(title).with_retrieval(5))
///     .unwrap();
/// assert!(!response.hits.is_empty());
/// ```
pub struct QueryExpander<'w> {
    kb: &'w KnowledgeBase,
    engine: Option<&'w dyn RetrievalBackend>,
    linker: EntityLinker<'w>,
    strategy: ExpansionStrategy,
    max_features: Option<usize>,
    default_top_k: Option<usize>,
    search_mode: SearchMode,
    cache: Option<Arc<ExpansionCache>>,
}

impl<'w> QueryExpander<'w> {
    /// Expander with the default knobs (cycle strategy, synonyms on,
    /// no default retrieval). Use [`QueryExpander::builder`] for more.
    pub fn new(kb: &'w KnowledgeBase, engine: &'w dyn RetrievalBackend) -> QueryExpander<'w> {
        QueryExpanderBuilder::default().build(kb, engine)
    }

    /// Start a [`QueryExpanderBuilder`].
    pub fn builder() -> QueryExpanderBuilder {
        QueryExpanderBuilder::default()
    }

    /// The knowledge base this expander serves from.
    pub fn kb(&self) -> &'w KnowledgeBase {
        self.kb
    }

    /// The retrieval backend, when built with one.
    pub fn engine(&self) -> Option<&'w dyn RetrievalBackend> {
        self.engine
    }

    /// The entity linker (title dictionary built at construction). The
    /// reproduction pipeline links documents through this.
    pub fn linker(&self) -> &EntityLinker<'w> {
        &self.linker
    }

    /// The active expansion strategy.
    pub fn strategy(&self) -> &ExpansionStrategy {
        &self.strategy
    }

    /// The retrieval execution mode requests are served with.
    pub fn search_mode(&self) -> SearchMode {
        self.search_mode
    }

    /// The response cache, when built with one (read it for hit
    /// statistics; the server's `Arc` is the same cache).
    pub fn cache(&self) -> Option<&Arc<ExpansionCache>> {
        self.cache.as_ref()
    }

    /// Serve one request end to end.
    ///
    /// Pipeline: trim + entity-link the text (typed errors for empty or
    /// unlinkable queries), run the expansion strategy, assemble the
    /// INDRI `#combine`-of-phrases query, and — when the request (or
    /// builder) asks — retrieve the top-k documents.
    ///
    /// With an [`ExpansionCache`] configured, the whole pipeline is
    /// memoized by served text + *effective* knobs: repeats cost one
    /// probe and a clone, concurrent identical misses compute once
    /// (single-flight), and failures are never cached. The cached
    /// response is byte-for-byte what recomputing would return.
    pub fn expand(&self, request: &ExpansionRequest) -> Result<ExpansionResponse, ServiceError> {
        let Some(cache) = &self.cache else {
            return self.expand_uncached(request);
        };
        let text = request.text.trim();
        if text.is_empty() {
            // Trivially malformed requests never touch (or count
            // against) the cache.
            return Err(ServiceError::EmptyQuery);
        }
        // Two requests with the same *effective* knobs get identical
        // responses, so they share an entry even if their raw knobs
        // differ (e.g. a request cap above the builder cap).
        let max_features = match (request.max_features, self.max_features) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let key = CacheKey {
            query: text.to_string(),
            max_features,
            // None and Some(0) both mean "no retrieval" — same response.
            top_k: request.top_k.or(self.default_top_k).unwrap_or(0),
            mode: self.search_mode.name(),
            // A reloadable engine bumps its epoch on every live swap,
            // so entries from the previous generation can never answer
            // a post-swap request (offline expanders pin epoch 0 —
            // there is nothing to go stale without an engine).
            epoch: self.engine.map(|e| e.cache_epoch()).unwrap_or(0),
        };
        cache.get_or_compute(&key, || self.expand_uncached(request))
    }

    /// Map a query-time scatter failure to the serving error space:
    /// a failing shard becomes [`ServiceError::ArtifactShard`] naming
    /// the shard and (for remote backends) its socket endpoint as the
    /// "path"; a manifest-level failure becomes
    /// [`ServiceError::ArtifactLoad`].
    fn search_failure(engine: &dyn RetrievalBackend, error: ShardedError) -> ServiceError {
        match error {
            ShardedError::Shard { shard, source } => ServiceError::ArtifactShard {
                path: PathBuf::from(
                    engine
                        .shard_endpoint(shard)
                        .unwrap_or_else(|| format!("shard{shard}")),
                ),
                shard,
                source,
            },
            ShardedError::Manifest(source) => ServiceError::ArtifactLoad {
                path: PathBuf::from("shard-manifest"),
                source,
            },
        }
    }

    fn expand_uncached(
        &self,
        request: &ExpansionRequest,
    ) -> Result<ExpansionResponse, ServiceError> {
        let text = request.text.trim();
        if text.is_empty() {
            return Err(ServiceError::EmptyQuery);
        }
        let entities = self.linker.link_articles(text);
        if entities.is_empty() {
            return Err(ServiceError::NoLinkedEntities {
                query: text.to_string(),
            });
        }

        let mut features = self.strategy.features(self.kb, &entities);
        // The builder's cap is a server-side resource bound: a request
        // can lower it, never raise it.
        match (request.max_features, self.max_features) {
            (Some(a), Some(b)) => features.truncate(a.min(b)),
            (Some(a), None) => features.truncate(a),
            (None, Some(b)) => features.truncate(b),
            (None, None) => {}
        }

        let titles = expanded_titles(self.kb, &entities, &features);
        let query_node = QueryNode::phrases_of_titles(&titles);
        let expanded_query = query_node.to_string();

        let hits = match request.top_k.or(self.default_top_k) {
            None | Some(0) => Vec::new(),
            Some(k) => {
                let engine = self.engine.ok_or(ServiceError::NoEngine)?;
                // The fallible form so a remote shard process dying
                // mid-query surfaces as a typed 500 naming the shard
                // and its endpoint, not as silently empty results.
                engine
                    .try_search_with(&query_node, k, self.search_mode)
                    .map_err(|e| Self::search_failure(engine, e))?
                    .into_iter()
                    .map(|h| RetrievedDoc {
                        doc: h.doc,
                        score: h.score,
                    })
                    .collect()
            }
        };

        Ok(ExpansionResponse {
            query: text.to_string(),
            entities: self.terms(&entities),
            features: self.terms(&features),
            expanded_query,
            hits,
        })
    }

    /// [`QueryExpander::expand`] under a per-request [`Deadline`].
    ///
    /// The deadline is honored on **every** serving path, cache hits
    /// included: a request that exhausted its budget waiting for a
    /// worker is refused at admission with [`ServiceError::Timeout`]
    /// before it can touch the cache (so timed-out requests never
    /// inflate hit statistics), and an answer — computed *or* served
    /// from the expansion cache — that lands after the budget ran out
    /// is converted to the same typed timeout. A late answer is a
    /// wrong answer to a deadlined client; the caller's latency
    /// accounting sees the timeout, not a silently slow success.
    pub fn expand_deadlined(
        &self,
        request: &ExpansionRequest,
        deadline: Deadline,
    ) -> Result<ExpansionResponse, ServiceError> {
        deadline.check()?;
        let response = self.expand(request)?;
        deadline.check()?;
        Ok(response)
    }

    /// [`QueryExpander::expand`] for bare text with default knobs.
    pub fn expand_text(&self, text: &str) -> Result<ExpansionResponse, ServiceError> {
        self.expand(&ExpansionRequest::new(text))
    }

    /// Serve many requests across `threads` workers on the same
    /// deterministic work-stealing runner the reproduction pipeline
    /// uses. Results are in request order and identical to a sequential
    /// loop regardless of thread count (each expansion is a pure
    /// function of the shared read-only world and its request).
    pub fn expand_batch(
        &self,
        requests: &[ExpansionRequest],
        threads: usize,
    ) -> Vec<Result<ExpansionResponse, ServiceError>> {
        parallel_map(requests.len(), threads, |i| self.expand(&requests[i]))
    }

    fn terms(&self, articles: &[ArticleId]) -> Vec<ExpansionTerm> {
        articles
            .iter()
            .map(|&article| ExpansionTerm {
                article,
                title: self.kb.title(article).to_string(),
            })
            .collect()
    }
}

/// The owned world a long-lived server holds: knowledge base + engine,
/// without the reproduction pipeline's corpus, ground truths, or
/// report machinery.
///
/// The synthetic knowledge base is always regenerated (cheap, fully
/// determined by the configuration); the index either loads strictly
/// from a PR-3 artifact ([`ServingWorld::load`]) or falls back to
/// build-and-persist ([`ServingWorld::open`]).
pub struct ServingWorld {
    /// The knowledge base (and topic inventory) queries link against.
    pub wiki: SynthWiki,
    /// The retrieval backend over the corpus's linking text —
    /// monolithic or sharded per the options it was opened with.
    pub engine: AnyEngine,
    /// The configuration that determines this world.
    pub config: ExperimentConfig,
    /// Build-vs-load wall-clock breakdown.
    pub stats: crate::cache::BuildStats,
}

impl ServingWorld {
    /// Strictly load the world from `cache_dir`: the fingerprint-keyed
    /// artifact must exist and decode, or a typed [`ServiceError`]
    /// explains why. The corpus is *not* regenerated on this path
    /// (serving does not need it), so the doc-count staleness
    /// cross-check of the lenient path does not apply; the artifact's
    /// checksums and embedded fingerprint still do.
    pub fn load(
        config: &ExperimentConfig,
        cache_dir: &std::path::Path,
    ) -> Result<ServingWorld, ServiceError> {
        Self::load_with(config, cache_dir, LmParams::default())
    }

    /// [`ServingWorld::load`] with explicit Dirichlet smoothing.
    pub fn load_with(
        config: &ExperimentConfig,
        cache_dir: &std::path::Path,
        lm: LmParams,
    ) -> Result<ServingWorld, ServiceError> {
        Self::load_with_options(config, cache_dir, lm, &WorldOptions::default())
    }

    /// [`ServingWorld::load_with`] with explicit [`WorldOptions`]:
    /// `shards: Some(n)` loads the `n`-way sharded artifact (manifest +
    /// segments, segments in parallel, typed per-shard errors); `mmap`
    /// maps artifact bytes instead of reading them.
    pub fn load_with_options(
        config: &ExperimentConfig,
        cache_dir: &std::path::Path,
        lm: LmParams,
        options: &WorldOptions,
    ) -> Result<ServingWorld, ServiceError> {
        let t0 = Instant::now();
        let wiki = generate(&config.wiki);
        let world_seconds = t0.elapsed().as_secs_f64();
        let t = Instant::now();
        let (engine, shard_load_seconds) = match options.shards {
            None => (
                AnyEngine::Mono(cache::load_engine_with(
                    config,
                    cache_dir,
                    None,
                    lm,
                    options.source(),
                )?),
                Vec::new(),
            ),
            Some(n) => {
                let (engine, secs) =
                    cache::load_sharded_engine(config, cache_dir, n, None, lm, options.source())?;
                (AnyEngine::Sharded(engine), secs)
            }
        };
        let stats = crate::cache::BuildStats {
            world_seconds,
            index_build_seconds: 0.0,
            index_write_seconds: 0.0,
            index_load_seconds: t.elapsed().as_secs_f64(),
            index_source: crate::cache::IndexSource::Loaded,
            shard_count: options.shard_count(),
            shard_load_seconds,
        };
        Ok(ServingWorld {
            wiki,
            engine,
            config: config.clone(),
            stats,
        })
    }

    /// Load the world from `cache_dir` when a valid artifact exists;
    /// otherwise build the index (regenerating the corpus) and persist
    /// it for the next run. Never fails: a cache can lose time, not
    /// correctness.
    pub fn open(config: &ExperimentConfig, cache_dir: Option<&std::path::Path>) -> ServingWorld {
        Self::open_with(config, cache_dir, LmParams::default())
    }

    /// [`ServingWorld::open`] with explicit Dirichlet smoothing.
    pub fn open_with(
        config: &ExperimentConfig,
        cache_dir: Option<&std::path::Path>,
        lm: LmParams,
    ) -> ServingWorld {
        Self::open_with_corpus(config, cache_dir, lm).0
    }

    /// [`ServingWorld::open_with`], also returning the synthetic corpus
    /// the open path regenerates anyway (for the staleness cross-check
    /// and cache-miss indexing). Callers that need the query set or the
    /// documents — `qgx --seed-queries` serves the generated queries —
    /// reuse it instead of paying a second generation pass; a plain
    /// long-lived server uses [`ServingWorld::open`] and lets the
    /// corpus drop.
    pub fn open_with_corpus(
        config: &ExperimentConfig,
        cache_dir: Option<&std::path::Path>,
        lm: LmParams,
    ) -> (ServingWorld, querygraph_corpus::synth::SynthCorpus) {
        Self::open_with_options(config, cache_dir, lm, &WorldOptions::default())
    }

    /// [`ServingWorld::open_with_corpus`] with explicit
    /// [`WorldOptions`] — the `--shards N` / `--mmap` knobs of the
    /// `qgx` server. Expansion (and retrieval) results are
    /// byte-identical at any shard count.
    pub fn open_with_options(
        config: &ExperimentConfig,
        cache_dir: Option<&std::path::Path>,
        lm: LmParams,
        options: &WorldOptions,
    ) -> (ServingWorld, querygraph_corpus::synth::SynthCorpus) {
        let (wiki, corpus, engine, stats) = cache::build_world(config, cache_dir, lm, options);
        let world = ServingWorld {
            wiki,
            engine,
            config: config.clone(),
            stats,
        };
        (world, corpus)
    }

    /// An expander with default knobs over this world.
    pub fn expander(&self) -> QueryExpander<'_> {
        QueryExpander::new(&self.wiki.kb, &self.engine)
    }

    /// An expander with explicit knobs over this world.
    pub fn expander_from(&self, builder: &QueryExpanderBuilder) -> QueryExpander<'_> {
        builder.build(&self.wiki.kb, &self.engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querygraph_wiki::fixture::venice_mini_wiki;

    fn venice_expander(kb: &KnowledgeBase) -> QueryExpander<'_> {
        QueryExpander::builder().build_offline(kb)
    }

    #[test]
    fn expands_the_paper_query() {
        let kb = venice_mini_wiki();
        let ex = venice_expander(&kb);
        let r = ex.expand_text("gondola in venice").expect("expands");
        // L(q.k) is sorted by article id, like the pipeline's lqk.
        let mut entity_titles: Vec<&str> = r.entities.iter().map(|t| t.title.as_str()).collect();
        entity_titles.sort_unstable();
        assert_eq!(entity_titles, ["Gondola", "Venice"]);
        assert!(!r.features.is_empty(), "venice query grows features");
        assert!(r.feature_titles().contains(&"Grand Canal (Venice)"));
        assert!(r.expanded_query.starts_with("#combine("));
        assert!(r.expanded_query.contains("#1(gondola)"));
        assert!(r.hits.is_empty(), "no retrieval unless requested");
    }

    #[test]
    fn empty_query_is_typed() {
        let kb = venice_mini_wiki();
        let ex = venice_expander(&kb);
        assert_eq!(ex.expand_text("   ").unwrap_err(), ServiceError::EmptyQuery);
        assert_eq!(ex.expand_text("").unwrap_err(), ServiceError::EmptyQuery);
    }

    #[test]
    fn unlinkable_query_is_typed() {
        let kb = venice_mini_wiki();
        let ex = venice_expander(&kb);
        let err = ex.expand_text("completely unrelated words").unwrap_err();
        assert_eq!(
            err,
            ServiceError::NoLinkedEntities {
                query: "completely unrelated words".to_string()
            }
        );
        assert!(err.to_string().contains("unrelated"));
    }

    #[test]
    fn retrieval_without_engine_is_typed() {
        let kb = venice_mini_wiki();
        let ex = venice_expander(&kb);
        let err = ex
            .expand(&ExpansionRequest::new("venice").with_retrieval(5))
            .unwrap_err();
        assert_eq!(err, ServiceError::NoEngine);
        // top_k = 0 means "no retrieval" and must not need an engine.
        let r = ex
            .expand(&ExpansionRequest {
                text: "venice".into(),
                max_features: None,
                top_k: Some(0),
            })
            .expect("k=0 is expansion-only");
        assert!(r.hits.is_empty());
    }

    #[test]
    fn request_feature_cap_can_lower_but_not_raise() {
        let kb = venice_mini_wiki();
        let ex = QueryExpander::builder().max_features(2).build_offline(&kb);
        // A request can tighten the server's cap …
        let lowered = ex
            .expand(&ExpansionRequest::new("gondola in venice").with_max_features(1))
            .expect("expands");
        assert_eq!(lowered.features.len(), 1);
        // … but never raise it past the builder's resource bound.
        let raised = ex
            .expand(&ExpansionRequest::new("gondola in venice").with_max_features(1000))
            .expect("expands");
        let capped = ex
            .expand(&ExpansionRequest::new("gondola in venice"))
            .expect("expands");
        assert_eq!(raised.features.len(), capped.features.len());
        assert!(raised.features.len() <= 2);
    }

    #[test]
    fn strategies_differ() {
        let kb = venice_mini_wiki();
        let cycles = venice_expander(&kb);
        let none = QueryExpander::builder()
            .strategy(ExpansionStrategy::None)
            .build_offline(&kb);
        let a = cycles.expand_text("gondola in venice").unwrap();
        let b = none.expand_text("gondola in venice").unwrap();
        assert!(!a.features.is_empty());
        assert!(b.features.is_empty());
        assert_eq!(a.entities, b.entities, "linking is strategy-independent");
    }

    #[test]
    fn strategy_names_parse() {
        for (name, parsed) in [
            ("cycles", "cycles"),
            ("links", "direct-links"),
            ("redirects", "redirects"),
            ("none", "none"),
        ] {
            assert_eq!(ExpansionStrategy::parse(name).unwrap().name(), parsed);
        }
        assert_eq!(ExpansionStrategy::parse("bogus"), None);
    }

    #[test]
    fn batch_matches_sequential_any_thread_count() {
        let kb = venice_mini_wiki();
        let ex = venice_expander(&kb);
        let requests: Vec<ExpansionRequest> = [
            "gondola in venice",
            "the bridge of sighs",
            "",
            "unrelated words entirely",
            "grand canal venice",
        ]
        .iter()
        .map(|t| ExpansionRequest::new(*t))
        .collect();
        let sequential: Vec<_> = requests.iter().map(|r| ex.expand(r)).collect();
        for threads in [1, 2, 8] {
            let batch = ex.expand_batch(&requests, threads);
            assert_eq!(batch, sequential, "threads={threads}");
        }
    }

    #[test]
    fn response_serializes_round_trip() {
        let kb = venice_mini_wiki();
        let ex = venice_expander(&kb);
        let r = ex.expand_text("gondola in venice").unwrap();
        let json = serde_json::to_string(&r).expect("serializes");
        assert!(json.contains("expanded_query"));
        let back: ExpansionResponse = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn serving_world_expands_with_retrieval() {
        let world = ServingWorld::open(&ExperimentConfig::tiny(), None);
        assert_eq!(world.stats.index_source, crate::cache::IndexSource::Built);
        let expander = world.expander();
        let title = world
            .wiki
            .kb
            .title(world.wiki.kb.main_articles().next().unwrap());
        let r = expander
            .expand(&ExpansionRequest::new(title).with_retrieval(5))
            .expect("tiny-world title expands");
        assert!(!r.entities.is_empty());
        assert!(!r.hits.is_empty(), "a topic title retrieves documents");
        for w in r.hits.windows(2) {
            assert!(w[0].score >= w[1].score, "hits sorted by score");
        }
    }

    #[test]
    fn serving_world_load_is_strict() {
        let dir =
            std::env::temp_dir().join(format!("querygraph-svc-missing-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("dir");
        let config = ExperimentConfig::tiny();
        std::fs::remove_file(crate::cache::artifact_path(&dir, &config)).ok();
        match ServingWorld::load(&config, &dir) {
            Err(ServiceError::ArtifactMissing { path }) => {
                assert_eq!(path, crate::cache::artifact_path(&dir, &config));
            }
            other => panic!("expected ArtifactMissing, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serving_world_open_persists_then_load_agrees() {
        let dir =
            std::env::temp_dir().join(format!("querygraph-svc-roundtrip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("dir");
        let config = ExperimentConfig::tiny();
        std::fs::remove_file(crate::cache::artifact_path(&dir, &config)).ok();

        let built = ServingWorld::open(&config, Some(&dir));
        assert_eq!(built.stats.index_source, crate::cache::IndexSource::Built);
        let loaded = ServingWorld::load(&config, &dir).expect("artifact persisted");
        assert_eq!(loaded.stats.index_source, crate::cache::IndexSource::Loaded);

        let title = built
            .wiki
            .kb
            .title(built.wiki.kb.main_articles().next().unwrap());
        let request = ExpansionRequest::new(title).with_retrieval(10);
        let a = built.expander().expand(&request).expect("built world");
        let b = loaded.expander().expand(&request).expect("loaded world");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "loaded-index responses must be byte-identical to built-index responses"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_expander_matches_uncached_and_reports_hits() {
        let kb = venice_mini_wiki();
        let uncached = venice_expander(&kb);
        let cache = Arc::new(ExpansionCache::new(64));
        let cached = QueryExpander::builder()
            .expansion_cache(cache.clone())
            .build_offline(&kb);
        let queries = [
            "gondola in venice",
            "the bridge of sighs",
            "grand canal venice",
        ];
        // Two passes: the first fills the cache, the second must hit —
        // and every response (cold or warm) must equal the uncached one.
        for pass in 0..2 {
            for q in queries {
                let a = cached.expand_text(q).expect("expands");
                let b = uncached.expand_text(q).expect("expands");
                assert_eq!(a, b, "pass {pass}, query {q:?}");
            }
        }
        assert_eq!(cache.lookups(), 6);
        assert_eq!(cache.hits(), 3, "second pass hits every query");
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 3);
        assert!(cached.cache().is_some() && uncached.cache().is_none());
    }

    #[test]
    fn cache_never_stores_failures_and_splits_by_effective_knobs() {
        let kb = venice_mini_wiki();
        let cache = Arc::new(ExpansionCache::new(64));
        let ex = QueryExpander::builder()
            .max_features(2)
            .expansion_cache(cache.clone())
            .build_offline(&kb);
        // Typed failures pass through uncached: empty queries never
        // reach the cache, unlinkable ones count a lookup but store
        // nothing (a retry recomputes).
        assert_eq!(ex.expand_text("   ").unwrap_err(), ServiceError::EmptyQuery);
        for _ in 0..2 {
            assert!(matches!(
                ex.expand_text("completely unrelated words").unwrap_err(),
                ServiceError::NoLinkedEntities { .. }
            ));
        }
        assert_eq!(cache.lookups(), 2);
        assert_eq!(cache.hits(), 0);
        assert!(cache.is_empty(), "failures must not occupy capacity");
        // A request cap above the builder cap is the same effective
        // request — one entry; a lower cap is a different one.
        let q = "gondola in venice";
        let base = ex.expand(&ExpansionRequest::new(q)).unwrap();
        let raised = ex
            .expand(&ExpansionRequest::new(q).with_max_features(1000))
            .unwrap();
        assert_eq!(raised, base, "ineffective caps share the entry");
        assert_eq!(cache.len(), 1);
        let lowered = ex
            .expand(&ExpansionRequest::new(q).with_max_features(1))
            .unwrap();
        assert_eq!(lowered.features.len(), 1);
        assert_eq!(cache.len(), 2, "a tighter cap is its own entry");
    }

    #[test]
    fn cached_batch_matches_uncached_sequential_any_thread_count() {
        let kb = venice_mini_wiki();
        let uncached = venice_expander(&kb);
        let cache = Arc::new(ExpansionCache::new(64));
        let cached = QueryExpander::builder()
            .expansion_cache(cache.clone())
            .build_offline(&kb);
        // A head-heavy batch: repeats exercise hits and the
        // single-flight path under the real work-stealing runner.
        let requests: Vec<ExpansionRequest> = [
            "gondola in venice",
            "grand canal venice",
            "gondola in venice",
            "the bridge of sighs",
            "gondola in venice",
            "grand canal venice",
        ]
        .iter()
        .map(|t| ExpansionRequest::new(*t))
        .collect();
        let expected: Vec<_> = requests.iter().map(|r| uncached.expand(r)).collect();
        for threads in [1, 2, 8] {
            assert_eq!(
                cached.expand_batch(&requests, threads),
                expected,
                "threads={threads}"
            );
        }
        assert_eq!(cache.lookups(), 18);
        assert!(cache.hits() >= 12, "repeats across passes must hit");
        assert_eq!(cache.len(), 3);
    }

    /// One sample per variant — the exhaustiveness anchor for the
    /// wire-stability tests below. The `match` inside forces a compile
    /// error when a variant is added without extending the samples.
    fn every_variant() -> Vec<ServiceError> {
        let samples = vec![
            ServiceError::EmptyQuery,
            ServiceError::NoLinkedEntities {
                query: "gondola in \"venice\"".to_string(),
            },
            ServiceError::NoEngine,
            ServiceError::ArtifactMissing {
                path: PathBuf::from("/cache/a.qgidx"),
            },
            ServiceError::ArtifactLoad {
                path: PathBuf::from("/cache/a.qgidx"),
                source: OndiskError::Io("disk on fire".to_string()),
            },
            ServiceError::ArtifactShard {
                path: PathBuf::from("/cache/a.shard2.qgidx"),
                shard: 2,
                source: OndiskError::Io("segment truncated".to_string()),
            },
            ServiceError::ArtifactFingerprint {
                path: PathBuf::from("/cache/a.qgidx"),
                expected: 0xDEAD_BEEF,
                found: 0xFEED_FACE,
            },
            ServiceError::ArtifactStale {
                path: PathBuf::from("/cache/a.qgidx"),
                indexed_docs: 10,
                corpus_docs: 12,
            },
            ServiceError::Timeout {
                elapsed_ms: 2500,
                budget_ms: 2000,
            },
            ServiceError::Overloaded { queue_depth: 64 },
        ];
        for sample in &samples {
            // Exhaustiveness tripwire: extend `samples` when this match
            // gains an arm.
            match sample {
                ServiceError::EmptyQuery
                | ServiceError::NoLinkedEntities { .. }
                | ServiceError::NoEngine
                | ServiceError::ArtifactMissing { .. }
                | ServiceError::ArtifactLoad { .. }
                | ServiceError::ArtifactShard { .. }
                | ServiceError::ArtifactFingerprint { .. }
                | ServiceError::ArtifactStale { .. }
                | ServiceError::Timeout { .. }
                | ServiceError::Overloaded { .. } => {}
            }
        }
        samples
    }

    #[test]
    fn error_codes_are_stable_and_exhaustive() {
        let samples = every_variant();
        assert_eq!(samples.len(), ServiceError::CODES.len());
        for (sample, &code) in samples.iter().zip(ServiceError::CODES.iter()) {
            assert_eq!(sample.code(), code, "CODES order must match variants");
        }
        // The exact strings are the wire contract — changing one breaks
        // every deployed client, so they are pinned verbatim.
        assert_eq!(
            ServiceError::CODES,
            [
                "empty_query",
                "no_linked_entities",
                "no_engine",
                "artifact_missing",
                "artifact_load",
                "artifact_shard",
                "artifact_fingerprint",
                "artifact_stale",
                "timeout",
                "overloaded",
            ]
        );
        // Only shed/timed-out requests invite a retry, and the two
        // back-off hints deliberately differ: 408 retries fast, 503
        // backs off harder (the queue is full).
        for sample in &samples {
            let retry = sample.retry_after_seconds();
            match sample {
                ServiceError::Timeout { .. } => assert_eq!(retry, Some(1)),
                ServiceError::Overloaded { .. } => assert_eq!(retry, Some(2)),
                _ => assert_eq!(retry, None),
            }
        }
    }

    #[test]
    fn every_variant_displays_and_round_trips_through_serde() {
        for sample in every_variant() {
            // Display must be non-empty and mention the interesting
            // payload (spot-checked per variant below).
            let rendered = sample.to_string();
            assert!(!rendered.is_empty());
            let json = serde_json::to_string(&sample).expect("error serializes");
            assert!(
                json.contains(&format!("\"code\":\"{}\"", sample.code())),
                "{json}"
            );
            let back: ServiceError = serde_json::from_str(&json).expect("error parses");
            // Samples carry `Io` sources, so the round trip is exact for
            // every variant (non-Io artifact sources come back as
            // `OndiskError::Io(rendered message)` — see the impl note).
            assert_eq!(back, sample);
            assert_eq!(back.code(), sample.code());
            assert_eq!(back.to_string(), rendered);
        }
        // Display spot checks: the operator-facing payload is in the text.
        assert!(ServiceError::Timeout {
            elapsed_ms: 2500,
            budget_ms: 2000
        }
        .to_string()
        .contains("2500 ms"));
        assert!(ServiceError::Overloaded { queue_depth: 64 }
            .to_string()
            .contains("64"));
    }

    #[test]
    fn non_io_artifact_sources_keep_code_and_message_on_the_wire() {
        let original = ServiceError::ArtifactLoad {
            path: PathBuf::from("/cache/a.qgidx"),
            source: OndiskError::ChecksumMismatch { section: "header" },
        };
        let json = serde_json::to_string(&original).unwrap();
        let back: ServiceError = serde_json::from_str(&json).unwrap();
        assert_eq!(back.code(), original.code());
        match back {
            ServiceError::ArtifactLoad { path, source } => {
                assert_eq!(path, PathBuf::from("/cache/a.qgidx"));
                // The structured source degrades to its rendered
                // message, never silently to nothing.
                assert_eq!(
                    source.to_string(),
                    format!(
                        "index artifact io error: {}",
                        OndiskError::ChecksumMismatch { section: "header" }
                    )
                );
            }
            other => panic!("wrong variant after round trip: {other:?}"),
        }
    }

    #[test]
    fn unknown_wire_code_is_rejected_with_the_known_list() {
        let err = serde_json::from_str::<ServiceError>("{\"code\":\"bogus\"}").unwrap_err();
        assert!(err.to_string().contains("bogus"));
        assert!(err.to_string().contains("timeout"), "lists known codes");
    }

    #[test]
    fn deadline_expires_and_reports_elapsed_time() {
        let generous = Deadline::after(Duration::from_secs(3600));
        assert!(!generous.expired());
        assert!(generous.check().is_ok());
        assert!(generous.remaining() > Duration::from_secs(3000));
        let spent = Deadline::starting_at(
            Instant::now() - Duration::from_millis(50),
            Duration::from_millis(10),
        );
        assert!(spent.expired());
        assert_eq!(spent.remaining(), Duration::ZERO);
        match spent.check().unwrap_err() {
            ServiceError::Timeout {
                elapsed_ms,
                budget_ms,
            } => {
                assert!(elapsed_ms >= 50, "elapsed {elapsed_ms}");
                assert_eq!(budget_ms, 10);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_refuses_before_and_cache_hits_stay_deadlined() {
        let kb = venice_mini_wiki();
        let cache = Arc::new(ExpansionCache::new(16));
        let ex = QueryExpander::builder()
            .expansion_cache(cache.clone())
            .build_offline(&kb);
        let request = ExpansionRequest::new("gondola in venice");
        // Warm the cache.
        let warm = ex.expand(&request).expect("expands");
        assert_eq!(cache.len(), 1);
        let lookups_after_warm = cache.lookups();
        // A request that spent its whole budget queued is refused at
        // admission — even though the cache holds its answer — and the
        // refusal never counts as a cache lookup or hit.
        let expired = Deadline::starting_at(
            Instant::now() - Duration::from_millis(50),
            Duration::from_millis(1),
        );
        assert!(matches!(
            ex.expand_deadlined(&request, expired).unwrap_err(),
            ServiceError::Timeout { .. }
        ));
        assert_eq!(
            cache.lookups(),
            lookups_after_warm,
            "timed-out admission must not touch the cache"
        );
        // Under a live deadline the cache hit is served — byte-identical
        // to the uncached response — and counted.
        let live = Deadline::after(Duration::from_secs(3600));
        let hit = ex.expand_deadlined(&request, live).expect("hit serves");
        assert_eq!(hit, warm);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn live_swap_invalidates_cached_expansions() {
        use querygraph_retrieval::backend::ReloadableEngine;
        // Two worlds over the same knowledge base whose retrieval
        // answers differ (extra noise docs shift collection stats and
        // scores), served through one reloadable engine.
        let config_a = ExperimentConfig::tiny();
        let mut config_b = config_a.clone();
        config_b.corpus.noise_docs += 7;
        let world_a = ServingWorld::open(&config_a, None);
        let world_b = ServingWorld::open(&config_b, None);

        let reloadable = ReloadableEngine::new(world_a.engine, 1);
        let engine = AnyEngine::Reloadable(reloadable.clone());
        let cache = Arc::new(ExpansionCache::new(64));
        let cached = QueryExpander::builder()
            .retrieve_top(10)
            .expansion_cache(cache.clone())
            .build(&world_a.wiki.kb, &engine);

        let title = world_a
            .wiki
            .kb
            .title(world_a.wiki.kb.main_articles().next().unwrap());
        let request = ExpansionRequest::new(title);

        assert_eq!(engine.cache_epoch(), 1);
        let before = cached.expand(&request).expect("generation 1 serves");
        assert_eq!(cached.expand(&request).unwrap(), before);
        assert_eq!(cache.hits(), 1, "same generation repeats hit");

        // The live swap: generation 2 replaces the engine between
        // queries; the very next expansion must be computed against it,
        // never served from the generation-1 cache entry.
        reloadable.swap(world_b.engine, 2);
        assert_eq!(engine.cache_epoch(), 2);
        let after = cached.expand(&request).expect("generation 2 serves");
        let expected = QueryExpander::builder()
            .retrieve_top(10)
            .build(&world_b.wiki.kb, &AnyEngine::Reloadable(reloadable.clone()))
            .expand(&request)
            .expect("uncached generation 2");
        assert_eq!(after, expected, "post-swap answers come from the new index");
        assert_ne!(
            before.hits, after.hits,
            "the two generations must be distinguishable for this test to mean anything"
        );
        assert_eq!(
            cache.hits(),
            1,
            "the swap forces a recompute, not a stale hit"
        );
        // The new generation's entry memoizes normally.
        assert_eq!(cached.expand(&request).unwrap(), after);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn pruned_serving_is_rank_equivalent_to_exact() {
        let world = ServingWorld::open(&ExperimentConfig::tiny(), None);
        let exact = world.expander();
        let pruned_builder = QueryExpander::builder().search_mode(SearchMode::Pruned);
        let pruned = world.expander_from(&pruned_builder);
        assert_eq!(pruned.search_mode(), SearchMode::Pruned);
        let titles: Vec<String> = world
            .wiki
            .kb
            .main_articles()
            .take(8)
            .map(|a| world.wiki.kb.title(a).to_string())
            .collect();
        for title in &titles {
            let request = ExpansionRequest::new(title).with_retrieval(10);
            let a = exact.expand(&request).expect("exact serves");
            let b = pruned.expand(&request).expect("pruned serves");
            // The rank-equivalence contract: same expansion, same
            // documents in the same order, scores within 1e-9.
            assert_eq!(a.expanded_query, b.expanded_query);
            assert_eq!(
                a.hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
                b.hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
                "doc ranking must match for {title:?}"
            );
            for (x, y) in a.hits.iter().zip(&b.hits) {
                assert!(
                    (x.score - y.score).abs() <= 1e-9,
                    "score drift for {title:?}"
                );
            }
        }
    }
}
