//! Bounded, shard-aware expansion cache with single-flight misses.
//!
//! The paper's regime — millions of users over one knowledge base — is
//! heavily head-weighted: the same few queries arrive over and over,
//! and each one re-runs entity linking, cycle enumeration, and
//! retrieval from scratch. [`ExpansionCache`] sits in front of
//! [`QueryExpander`](crate::service::QueryExpander) and memoizes
//! complete [`ExpansionResponse`]s keyed by the served query text plus
//! the *effective* request knobs, so a repeated query costs one map
//! probe and a clone.
//!
//! Design points:
//!
//! * **Sharded locking** — entries are spread over eight
//!   `parking_lot::Mutex`-protected maps by key hash (the same recipe
//!   as the engine's phrase cache), so concurrent serving threads
//!   rarely contend.
//! * **Single-flight misses** — the first thread to miss a key inserts
//!   a locked result cell *before* computing; concurrent requests for
//!   the same key block on that cell and then share the leader's
//!   response instead of stampeding the expander. (A blocked follower
//!   still counts as a cache hit: it did not compute.)
//! * **Only successes are cached** — a failed expansion removes its
//!   in-flight cell, so transient errors are retried, and error
//!   variants never occupy capacity.
//! * **Approximate LRU** — every entry carries a monotone touch stamp;
//!   when a shard reaches its share of the capacity, the stalest entry
//!   of that shard is evicted. The global entry count is bounded by
//!   `CACHE_SHARDS · max(1, capacity / CACHE_SHARDS)` (equal to
//!   `capacity` once `capacity ≥ CACHE_SHARDS`).
//!
//! Correctness never depends on the cache: expansion is a pure
//! function of the read-only world and the request, so a hit returns
//! exactly what recomputing would — the serving tests pin cached
//! against uncached responses.

use crate::service::{ExpansionResponse, ServiceError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked cache shards.
const CACHE_SHARDS: usize = 8;

/// The memoization key: the served (trimmed) query text plus every
/// knob that shapes the response. Two requests with different raw
/// knobs but the same *effective* values (e.g. a request cap above the
/// builder cap) share an entry, because their uncached responses are
/// identical.
/// Keys are totally ordered (field declaration order, query text
/// first) so eviction can break stamp ties deterministically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// The query text as served (trimmed — exactly the `query` field
    /// of the response).
    pub query: String,
    /// Effective feature cap (builder cap tightened by the request).
    pub max_features: Option<usize>,
    /// Effective retrieval depth (0 = expansion only).
    pub top_k: usize,
    /// Search-mode name, so exact and pruned retrieval never share an
    /// entry (their scores are only pinned to 1e-9 of each other).
    pub mode: &'static str,
    /// The engine's cache epoch ([`RetrievalBackend::cache_epoch`]):
    /// 0 for static engines, the manifest generation for reloadable
    /// ones. A live index swap bumps the epoch, so entries computed
    /// against the old generation can never answer for the new one —
    /// they simply stop being reachable and age out via LRU.
    ///
    /// [`RetrievalBackend::cache_epoch`]:
    ///     querygraph_retrieval::backend::RetrievalBackend::cache_epoch
    pub epoch: u64,
}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.query.hash(state);
        self.max_features.hash(state);
        self.top_k.hash(state);
        self.mode.hash(state);
        self.epoch.hash(state);
    }
}

/// One cached (or in-flight) expansion. The cell starts `None` and
/// locked by the computing leader; followers block on the lock, then
/// read the stored response.
struct Entry {
    /// Last-touch stamp for approximate LRU eviction.
    stamp: u64,
    /// The response, once the leader stores it.
    cell: Arc<Mutex<Option<ExpansionResponse>>>,
}

/// Bounded memoization of query → [`ExpansionResponse`] (see the
/// module docs). Share behind `Arc`; every method takes `&self`.
pub struct ExpansionCache {
    shards: Vec<Mutex<HashMap<CacheKey, Entry>>>,
    per_shard_cap: usize,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    lookups: AtomicU64,
}

impl std::fmt::Debug for ExpansionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpansionCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("lookups", &self.lookups())
            .finish()
    }
}

impl ExpansionCache {
    /// Cache holding roughly `capacity` responses (see the module docs
    /// for the exact bound). `capacity = 0` disables caching entirely:
    /// every lookup computes.
    pub fn new(capacity: usize) -> ExpansionCache {
        let per_shard_cap = if capacity == 0 {
            0
        } else {
            (capacity / CACHE_SHARDS).max(1)
        };
        ExpansionCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            per_shard_cap,
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently resident (including in-flight cells).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache (including followers that
    /// waited out a single-flight computation).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// `hits / lookups`, or 0.0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }

    fn slot(key: &CacheKey) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        h.finish() as usize % CACHE_SHARDS
    }

    /// Return the cached response for `key`, or run `compute` exactly
    /// once per concurrent cohort (single-flight) and cache its
    /// success. Errors propagate uncached.
    pub fn get_or_compute<F>(
        &self,
        key: &CacheKey,
        compute: F,
    ) -> Result<ExpansionResponse, ServiceError>
    where
        F: FnOnce() -> Result<ExpansionResponse, ServiceError>,
    {
        if self.per_shard_cap == 0 {
            return compute();
        }
        self.lookups.fetch_add(1, Ordering::Relaxed);
        // Touch stamps are draws from a shared u64 counter. Wrap-around
        // is assumed unreachable, not handled: at 10^9 lookups/second
        // the counter overflows after ~584 years, and a wrapped stamp
        // would only misorder LRU eviction (a performance matter),
        // never correctness — entries are still valid responses.
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let shard = &self.shards[Self::slot(key)];

        // A fresh cell, locked *before* it can become visible: if this
        // thread turns out to lead the miss, followers block on the
        // cell until the computation resolves.
        let fresh = Arc::new(Mutex::new(None));
        let mut fresh_guard = Some(fresh.lock());

        let existing = {
            let mut map = shard.lock();
            match map.get_mut(key) {
                Some(entry) => {
                    entry.stamp = stamp; // LRU touch
                    Some(entry.cell.clone())
                }
                None => {
                    if map.len() >= self.per_shard_cap {
                        // Stalest entry first; equal stamps (possible
                        // only if the clock ever wrapped) fall back to
                        // key order, so the victim never depends on
                        // HashMap iteration order.
                        let victim = map
                            .iter()
                            .min_by(|a, b| a.1.stamp.cmp(&b.1.stamp).then_with(|| a.0.cmp(b.0)))
                            .map(|(k, _)| k.clone());
                        if let Some(v) = victim {
                            map.remove(&v);
                        }
                    }
                    map.insert(
                        key.clone(),
                        Entry {
                            stamp,
                            cell: fresh.clone(),
                        },
                    );
                    None
                }
            }
        };

        if let Some(cell) = existing {
            drop(fresh_guard.take()); // not the leader; discard the spare
            let slot = cell.lock(); // blocks while a leader computes
            if let Some(resp) = slot.as_ref() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(resp.clone());
            }
            // The leader failed and withdrew the entry: compute
            // uncached (only successes are ever stored).
            drop(slot);
            return compute();
        }

        // Leader: compute while holding the cell lock. The shard lock
        // is NOT held here, so other keys proceed unimpeded; followers
        // of *this* key queue on the cell.
        match compute() {
            Ok(resp) => {
                **fresh_guard.as_mut().expect("leader holds its cell") = Some(resp.clone());
                Ok(resp)
            }
            Err(e) => {
                drop(fresh_guard.take()); // release followers first
                let mut map = shard.lock();
                if let Some(entry) = map.get(key) {
                    // Remove only our own failed cell — a concurrent
                    // re-insert under the same key must survive.
                    if Arc::ptr_eq(&entry.cell, &fresh) {
                        map.remove(key);
                    }
                }
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: &str) -> CacheKey {
        CacheKey {
            query: q.to_string(),
            max_features: None,
            top_k: 0,
            mode: "exact",
            epoch: 0,
        }
    }

    fn response(q: &str) -> ExpansionResponse {
        ExpansionResponse {
            query: q.to_string(),
            entities: Vec::new(),
            features: Vec::new(),
            expanded_query: String::new(),
            hits: Vec::new(),
        }
    }

    #[test]
    fn miss_then_hit_counts_and_returns_identical_value() {
        let cache = ExpansionCache::new(16);
        let k = key("venice");
        let mut computes = 0;
        for _ in 0..3 {
            let r = cache
                .get_or_compute(&k, || {
                    computes += 1;
                    Ok(response("venice"))
                })
                .unwrap();
            assert_eq!(r, response("venice"));
        }
        assert_eq!(computes, 1, "one compute, then hits");
        assert_eq!(cache.lookups(), 3);
        assert_eq!(cache.hits(), 2);
        assert!((cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_knobs_are_distinct_entries() {
        let cache = ExpansionCache::new(16);
        let a = key("venice");
        let mut b = key("venice");
        b.top_k = 5;
        let mut c = key("venice");
        c.mode = "pruned";
        let mut d = key("venice");
        d.epoch = 1;
        for k in [&a, &b, &c, &d] {
            cache.get_or_compute(k, || Ok(response("venice"))).unwrap();
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn errors_are_not_cached_and_retry() {
        let cache = ExpansionCache::new(16);
        let k = key("broken");
        let mut attempts = 0;
        for _ in 0..2 {
            let err = cache
                .get_or_compute(&k, || {
                    attempts += 1;
                    Err(ServiceError::EmptyQuery)
                })
                .unwrap_err();
            assert_eq!(err, ServiceError::EmptyQuery);
        }
        assert_eq!(attempts, 2, "errors must be retried");
        assert_eq!(cache.hits(), 0);
        assert!(cache.is_empty(), "failed cells must be withdrawn");
        // A success after failures caches normally.
        cache.get_or_compute(&k, || Ok(response("broken"))).unwrap();
        cache.get_or_compute(&k, || panic!("must hit")).unwrap();
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn capacity_is_bounded_with_lru_eviction() {
        let cache = ExpansionCache::new(16); // 2 per shard
        for i in 0..200 {
            let q = format!("query-{i}");
            cache.get_or_compute(&key(&q), || Ok(response(&q))).unwrap();
        }
        assert!(
            cache.len() <= 16,
            "capacity bound violated: {} entries",
            cache.len()
        );
        assert!(!cache.is_empty());
        // Recently inserted keys are still resident (stale ones were
        // the eviction victims); at least the very last key must hit.
        let last = key("query-199");
        let before = cache.hits();
        cache
            .get_or_compute(&last, || panic!("latest key must be resident"))
            .unwrap();
        assert_eq!(cache.hits(), before + 1);
    }

    #[test]
    fn equal_stamp_eviction_victims_are_chosen_in_key_order() {
        // Stamps from the live clock are unique, so equal stamps can
        // only arise after a (documented-unreachable) u64 wrap. Inject
        // that state directly: three same-slot entries, all stamp 7.
        let cache = ExpansionCache::new(CACHE_SHARDS); // 1 per shard
        let mut same_slot: Vec<CacheKey> = Vec::new();
        let target = ExpansionCache::slot(&key("probe-0"));
        for i in 0.. {
            let k = key(&format!("probe-{i}"));
            if ExpansionCache::slot(&k) == target {
                same_slot.push(k);
            }
            if same_slot.len() == 4 {
                break;
            }
        }
        {
            let mut map = cache.shards[target].lock();
            for k in &same_slot[..3] {
                map.insert(
                    k.clone(),
                    Entry {
                        stamp: 7,
                        cell: Arc::new(Mutex::new(Some(response(&k.query)))),
                    },
                );
            }
        }
        // The miss on the fourth key evicts exactly one victim: the
        // smallest key in CacheKey order among the equal stamps.
        cache
            .get_or_compute(&same_slot[3], || Ok(response("fourth")))
            .unwrap();
        let expected_victim = same_slot[..3].iter().min().unwrap().clone();
        let map = cache.shards[target].lock();
        assert!(
            !map.contains_key(&expected_victim),
            "the smallest equal-stamp key must be the victim"
        );
        for k in same_slot[..3].iter().filter(|k| **k != expected_victim) {
            assert!(map.contains_key(k), "non-victims must survive");
        }
        assert!(map.contains_key(&same_slot[3]));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ExpansionCache::new(0);
        let k = key("venice");
        let mut computes = 0;
        for _ in 0..3 {
            cache
                .get_or_compute(&k, || {
                    computes += 1;
                    Ok(response("venice"))
                })
                .unwrap();
        }
        assert_eq!(computes, 3);
        assert_eq!(cache.lookups(), 0);
        assert_eq!(cache.hit_rate(), 0.0);
        assert!(cache.is_empty());
    }

    #[test]
    fn single_flight_shares_one_computation() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(ExpansionCache::new(16));
        let computes = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let computes = computes.clone();
                std::thread::spawn(move || {
                    cache
                        .get_or_compute(&key("hot"), || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so followers pile up
                            // behind the in-flight cell.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(response("hot"))
                        })
                        .unwrap()
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), response("hot"));
        }
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "concurrent identical queries must not stampede"
        );
        assert_eq!(cache.lookups(), 8);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn single_flight_does_not_serialize_distinct_keys() {
        // Two leaders computing *different* keys must be in flight at
        // the same time: a leader holds only its own cell's lock while
        // computing (the shard lock is released), so single-flight
        // dedup of identical queries must not serialize the rest of
        // the mix. Each closure waits until BOTH computations have
        // started; if the cache held a shard- or cache-wide lock
        // during compute, neither could see the other and both would
        // time out.
        use std::sync::atomic::AtomicUsize;
        use std::time::{Duration, Instant};
        let cache = Arc::new(ExpansionCache::new(16));
        let started = Arc::new(AtomicUsize::new(0));
        let wait_for_both = |started: &AtomicUsize| {
            started.fetch_add(1, Ordering::SeqCst);
            let t0 = Instant::now();
            while started.load(Ordering::SeqCst) < 2 {
                if t0.elapsed() > Duration::from_secs(5) {
                    return false; // fail the test, don't hang it
                }
                std::thread::yield_now();
            }
            true
        };
        let threads: Vec<_> = ["left", "right"]
            .into_iter()
            .map(|q| {
                let cache = cache.clone();
                let started = started.clone();
                std::thread::spawn(move || {
                    let mut overlapped = false;
                    let got = cache
                        .get_or_compute(&key(q), || {
                            overlapped = wait_for_both(&started);
                            Ok(response(q))
                        })
                        .unwrap();
                    assert_eq!(got, response(q));
                    overlapped
                })
            })
            .collect();
        for t in threads {
            assert!(
                t.join().unwrap(),
                "distinct keys must compute concurrently, not serialize"
            );
        }
    }
}
