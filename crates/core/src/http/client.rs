//! A minimal blocking HTTP/1.1 client over `std::net::TcpStream`.
//!
//! Exactly enough protocol for smoke tests, replay drivers, and the
//! `qgx client` CLI: one request, one `Content-Length`-framed response
//! (or read-to-EOF on close), all under one wall-clock timeout. Not a
//! general client — no redirects, no TLS, no chunked bodies.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// The status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The response body, exactly as received.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first value of `name`, matched case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy — diagnostics only).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad_data(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Send one request and read the full response.
///
/// `timeout` bounds connect, write, and every read; a dead or stalled
/// server surfaces as an `Err`, never a hang.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let addr = addr
        .parse()
        .map_err(|e| bad_data(format!("bad address {addr:?}: {e}")))?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let body = body.unwrap_or(b"");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response(&mut stream)
}

/// `GET path` — health probes and `/statz` polls.
pub fn get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    request(addr, "GET", path, None, timeout)
}

/// `POST path` with a JSON body.
pub fn post_json(
    addr: &str,
    path: &str,
    json: &str,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    request(addr, "POST", path, Some(json.as_bytes()), timeout)
}

/// Read and parse one full response from `stream` (timeouts already
/// set by the caller).
fn read_response(stream: &mut TcpStream) -> std::io::Result<HttpResponse> {
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4096];
    // Head first: everything up to the blank line.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        match stream.read(&mut tmp)? {
            0 => {
                return Err(bad_data(
                    "connection closed before response head".to_string(),
                ))
            }
            n => buf.extend_from_slice(&tmp[..n]),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| bad_data("response head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let (proto, status) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if !proto.starts_with("HTTP/1.") {
        return Err(bad_data(format!("bad status line {status_line:?}")));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| bad_data(format!("bad status in {status_line:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad_data(format!("bad response header {line:?}")))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| bad_data(format!("bad Content-Length {v:?}")))
        })
        .transpose()?;
    let mut body = buf[head_end + 4..].to_vec();
    match content_length {
        Some(want) => {
            while body.len() < want {
                match stream.read(&mut tmp)? {
                    0 => return Err(bad_data("connection closed mid-body".to_string())),
                    n => body.extend_from_slice(&tmp[..n]),
                }
            }
            body.truncate(want);
        }
        None => {
            // No framing: the body runs to EOF (Connection: close).
            loop {
                match stream.read(&mut tmp)? {
                    0 => break,
                    n => body.extend_from_slice(&tmp[..n]),
                }
            }
        }
    }
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Position of the `\r\n\r\n` head terminator, if buffered.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}
