//! `core::http` — the dependency-free network front-end.
//!
//! A hand-rolled HTTP/1.1 server over [`std::net::TcpListener`] and a
//! fixed worker pool (no async runtime — the box has no crates.io, and
//! the compat-shim rule of DESIGN.md §9 applies to the network layer
//! too), putting [`crate::service::QueryExpander`] on a socket:
//!
//! * `POST /expand` — a JSON [`crate::service::ExpansionRequest`] in,
//!   a JSON [`crate::service::ExpansionResponse`] out, **byte-identical**
//!   to the in-process facade's serialization (the `http-smoke` CI job
//!   `cmp`s the two).
//! * `GET /healthz` — liveness (`ok`).
//! * `GET /statz` — the live serving counters as a
//!   [`server::StatzSnapshot`] (the serve-side shape of a
//!   `ServeRecord`).
//!
//! Honest overload semantics, per the serving model the paper's 5M-
//! article deployment target implies (DESIGN.md §12):
//!
//! * Every request runs under a [`crate::service::Deadline`] that
//!   starts at **accept** — queue wait counts, so a request that aged
//!   out waiting for a worker is refused with 408 (typed
//!   [`crate::service::ServiceError::Timeout`]) instead of served
//!   late.
//! * The connection queue is bounded; a full queue sheds new
//!   connections at the edge with 503 + `Retry-After` (typed
//!   [`crate::service::ServiceError::Overloaded`]).
//! * Protocol limits ([`parser::HttpLimits`]) are enforced while bytes
//!   arrive — oversized heads and bodies and slowloris-style partial
//!   writes get typed 4xx answers within one deadline budget; no
//!   worker hangs, no panics on hostile input.
//!
//! [`client`] is the matching minimal blocking client (`qgx client`
//! and the conformance tests drive the server with it).

pub mod client;
pub mod parser;
pub mod server;

pub use client::{get, post_json, request, HttpResponse};
pub use parser::{HttpLimits, ParseError, RequestHead};
pub use server::{HttpServer, ServerConfig, ServerStats, StatzSnapshot};

use crate::service::ServiceError;

/// The HTTP status each [`ServiceError`] is answered with:
/// caller errors are 4xx, server-side artifact failures 5xx, and the
/// two overload shapes get their dedicated retryable statuses.
pub fn status_for(error: &ServiceError) -> u16 {
    match error {
        ServiceError::EmptyQuery => 400,
        ServiceError::NoLinkedEntities { .. } => 404,
        ServiceError::NoEngine => 501,
        ServiceError::Timeout { .. } => 408,
        ServiceError::Overloaded { .. } => 503,
        ServiceError::ArtifactMissing { .. }
        | ServiceError::ArtifactLoad { .. }
        | ServiceError::ArtifactShard { .. }
        | ServiceError::ArtifactFingerprint { .. }
        | ServiceError::ArtifactStale { .. } => 500,
    }
}

/// JSON-escape a string the way the serde_json shim does, so every
/// error body is built from the same serializer as every success body.
fn json_string(s: &str) -> String {
    serde_json::to_string(&s.to_string()).expect("string serializes")
}

/// The error body for a failed `/expand`:
/// `{"query":…,"code":…,"error":…}` — the same line `qgx replay`
/// prints for an in-process failure, so error responses stay
/// `cmp`-identical across the socket boundary too.
pub fn expand_error_body(query: &str, error: &ServiceError) -> String {
    format!(
        "{{\"query\":{},\"code\":{},\"error\":{}}}",
        json_string(query),
        json_string(error.code()),
        json_string(&error.to_string()),
    )
}

/// The error body for protocol-level rejections (no query to echo):
/// `{"code":…,"error":…}` with a [`ParseError::code`]-style code.
pub fn protocol_error_body(code: &str, message: &str) -> String {
    format!(
        "{{\"code\":{},\"error\":{}}}",
        json_string(code),
        json_string(message),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_service_error_code_has_a_status() {
        use crate::service::Deadline;
        use std::time::Duration;
        // One instance per variant, same anchors as the service tests.
        let samples = [
            (ServiceError::EmptyQuery, 400),
            (
                ServiceError::NoLinkedEntities {
                    query: "x".to_string(),
                },
                404,
            ),
            (ServiceError::NoEngine, 501),
            (ServiceError::ArtifactMissing { path: "/a".into() }, 500),
            (
                Deadline::starting_at(
                    std::time::Instant::now() - Duration::from_millis(5),
                    Duration::from_millis(1),
                )
                .timeout_error(),
                408,
            ),
            (ServiceError::Overloaded { queue_depth: 3 }, 503),
        ];
        for (error, status) in &samples {
            assert_eq!(status_for(error), *status, "{error:?}");
            // Retryable statuses and Retry-After agree.
            assert_eq!(
                error.retry_after_seconds().is_some(),
                matches!(status, 408 | 503),
                "{error:?}"
            );
        }
    }

    #[test]
    fn error_bodies_are_valid_json_with_escaping() {
        let error = ServiceError::NoLinkedEntities {
            query: "he said \"hi\"\n".to_string(),
        };
        let body = expand_error_body("he said \"hi\"\n", &error);
        let value: serde::Value = serde_json::from_str(&body).expect("body parses");
        let entries = value.as_object().expect("object");
        let get = |name: &str| {
            entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(
            get("query"),
            Some(serde::Value::Str("he said \"hi\"\n".into()))
        );
        assert_eq!(
            get("code"),
            Some(serde::Value::Str("no_linked_entities".into()))
        );
        assert!(matches!(get("error"), Some(serde::Value::Str(_))));
        let proto = protocol_error_body("bad_request", "body is not UTF-8");
        let value: serde::Value = serde_json::from_str(&proto).expect("body parses");
        assert!(value.as_object().is_some());
    }
}
