//! Minimal, strict HTTP/1.1 request parsing over raw bytes.
//!
//! The parser is pure — it consumes a byte buffer and either produces a
//! [`RequestHead`], asks for more bytes (`Ok(None)`), or rejects with a
//! typed [`ParseError`] that knows its HTTP status code. Every limit in
//! [`HttpLimits`] is enforced *while the bytes arrive*, so a hostile
//! client can never make the server buffer an unbounded head or body.
//!
//! Scope is deliberately small: request line + headers + an optional
//! `Content-Length` body. No chunked transfer encoding (typed 501), no
//! multiline header folding (typed 400), no trailers. Lines terminate
//! on `\n` with an optional preceding `\r`, which accepts every
//! well-formed HTTP client and keeps hand-written test requests honest.

use std::fmt;

/// Hard ceilings on what one request may ask the server to buffer.
///
/// Defaults are generous for JSON expansion requests and hostile to
/// abuse: an 8 KiB request line, 64 headers in 16 KiB of head, a 1 MiB
/// body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Maximum bytes in the request line (method + target + version).
    pub max_request_line: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum total bytes in the head (request line + all headers).
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_request_line: 8 * 1024,
            max_headers: 64,
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Typed protocol rejection; every variant maps to one HTTP status and
/// a wire-stable code string (the same shape `ServiceError::code` uses,
/// so error bodies are uniform across protocol and service failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line exceeded [`HttpLimits::max_request_line`].
    RequestLineTooLong {
        /// The configured ceiling.
        limit: usize,
    },
    /// The head (request line + headers) exceeded
    /// [`HttpLimits::max_head_bytes`].
    HeadTooLarge {
        /// The configured ceiling.
        limit: usize,
    },
    /// More header lines than [`HttpLimits::max_headers`].
    TooManyHeaders {
        /// The configured ceiling.
        limit: usize,
    },
    /// The request line is not `METHOD SP TARGET SP VERSION`.
    MalformedRequestLine,
    /// The version is not `HTTP/1.0` or `HTTP/1.1`.
    UnsupportedVersion {
        /// The version token as sent.
        version: String,
    },
    /// A header line without a colon, or with whitespace in the name.
    MalformedHeader,
    /// `Content-Length` is non-numeric or repeated with different
    /// values.
    BadContentLength,
    /// The declared body exceeds [`HttpLimits::max_body_bytes`].
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// `Transfer-Encoding` was sent; this server only speaks
    /// `Content-Length`.
    UnsupportedTransferEncoding,
    /// A method that requires a body arrived without `Content-Length`.
    LengthRequired,
}

impl ParseError {
    /// Every code [`ParseError::code`] can produce, in variant
    /// declaration order (the protocol half of the closed wire-code
    /// universe; [`ServiceError::CODES`] is the service half). The
    /// server's lock-free per-code counters enumerate exactly this
    /// union, so adding a variant without extending the list is a
    /// test-time error, never a silently dropped counter.
    ///
    /// [`ServiceError::CODES`]: crate::service::ServiceError::CODES
    pub const CODES: [&'static str; 10] = [
        "request_line_too_long",
        "head_too_large",
        "too_many_headers",
        "malformed_request_line",
        "unsupported_version",
        "malformed_header",
        "bad_content_length",
        "body_too_large",
        "unsupported_transfer_encoding",
        "length_required",
    ];

    /// The HTTP status this rejection is answered with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::RequestLineTooLong { .. }
            | ParseError::HeadTooLarge { .. }
            | ParseError::TooManyHeaders { .. } => 431,
            ParseError::MalformedRequestLine
            | ParseError::MalformedHeader
            | ParseError::BadContentLength => 400,
            ParseError::UnsupportedVersion { .. } => 505,
            ParseError::BodyTooLarge { .. } => 413,
            ParseError::UnsupportedTransferEncoding => 501,
            ParseError::LengthRequired => 411,
        }
    }

    /// The wire-stable machine-readable code for the error body.
    pub fn code(&self) -> &'static str {
        match self {
            ParseError::RequestLineTooLong { .. } => "request_line_too_long",
            ParseError::HeadTooLarge { .. } => "head_too_large",
            ParseError::TooManyHeaders { .. } => "too_many_headers",
            ParseError::MalformedRequestLine => "malformed_request_line",
            ParseError::UnsupportedVersion { .. } => "unsupported_version",
            ParseError::MalformedHeader => "malformed_header",
            ParseError::BadContentLength => "bad_content_length",
            ParseError::BodyTooLarge { .. } => "body_too_large",
            ParseError::UnsupportedTransferEncoding => "unsupported_transfer_encoding",
            ParseError::LengthRequired => "length_required",
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::RequestLineTooLong { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            ParseError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            ParseError::TooManyHeaders { limit } => {
                write!(f, "more than {limit} header lines")
            }
            ParseError::MalformedRequestLine => {
                write!(f, "malformed request line")
            }
            ParseError::UnsupportedVersion { version } => {
                write!(f, "unsupported HTTP version {version:?}")
            }
            ParseError::MalformedHeader => write!(f, "malformed header line"),
            ParseError::BadContentLength => write!(f, "bad Content-Length"),
            ParseError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds {limit}")
            }
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding is not supported (use Content-Length)")
            }
            ParseError::LengthRequired => {
                write!(f, "a request body requires Content-Length")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed request head: line + headers, body not yet read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// The method token, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target (`/expand`, `/healthz?x=1`, …).
    pub target: String,
    /// `HTTP/1.0` or `HTTP/1.1` (anything else is rejected).
    pub version: String,
    /// Header `(name, value)` pairs in arrival order; names keep their
    /// sent casing, lookups are case-insensitive.
    pub headers: Vec<(String, String)>,
    /// Bytes of the buffer the head consumed (body starts here).
    pub head_len: usize,
}

impl RequestHead {
    /// The first value of `name`, matched case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The declared body length under `limits`. `Ok(0)` when absent
    /// (per [`ParseError::LengthRequired`], callers that *need* a body
    /// reject that case themselves).
    pub fn content_length(&self, limits: &HttpLimits) -> Result<usize, ParseError> {
        if self.header("transfer-encoding").is_some() {
            return Err(ParseError::UnsupportedTransferEncoding);
        }
        let mut declared: Option<usize> = None;
        for (name, value) in &self.headers {
            if !name.eq_ignore_ascii_case("content-length") {
                continue;
            }
            let parsed: usize = value
                .trim()
                .parse()
                .map_err(|_| ParseError::BadContentLength)?;
            match declared {
                // Repeated identical Content-Length is tolerated;
                // conflicting values are request smuggling, rejected.
                Some(prev) if prev != parsed => return Err(ParseError::BadContentLength),
                _ => declared = Some(parsed),
            }
        }
        let declared = declared.unwrap_or(0);
        if declared > limits.max_body_bytes {
            return Err(ParseError::BodyTooLarge {
                declared,
                limit: limits.max_body_bytes,
            });
        }
        Ok(declared)
    }

    /// Whether the connection stays open after this exchange:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an
    /// explicit `Connection` header overrides either way.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }
}

/// Find the end of the next line (`\n`) in `buf[from..]`; returns
/// `(content_end, next_line_start)` with an optional `\r` stripped.
fn next_line(buf: &[u8], from: usize) -> Option<(usize, usize)> {
    let nl = buf[from..].iter().position(|&b| b == b'\n')? + from;
    let end = if nl > from && buf[nl - 1] == b'\r' {
        nl - 1
    } else {
        nl
    };
    Some((end, nl + 1))
}

/// Parse a request head from the start of `buf`.
///
/// * `Ok(Some(head))` — a complete head; `head.head_len` is where the
///   body begins in `buf`.
/// * `Ok(None)` — the head is incomplete *and* still within limits;
///   read more bytes and call again.
/// * `Err(e)` — the bytes can never become an acceptable head.
pub fn parse_head(buf: &[u8], limits: &HttpLimits) -> Result<Option<RequestHead>, ParseError> {
    // Request line first, with its own tighter limit.
    let (line_end, mut cursor) = match next_line(buf, 0) {
        Some(pos) => pos,
        None => {
            if buf.len() > limits.max_request_line {
                return Err(ParseError::RequestLineTooLong {
                    limit: limits.max_request_line,
                });
            }
            return Ok(None);
        }
    };
    if line_end > limits.max_request_line {
        return Err(ParseError::RequestLineTooLong {
            limit: limits.max_request_line,
        });
    }
    let line =
        std::str::from_utf8(&buf[..line_end]).map_err(|_| ParseError::MalformedRequestLine)?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::MalformedRequestLine),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::UnsupportedVersion {
            version: version.to_string(),
        });
    }

    // Header lines until the empty line, all within the head budget.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let (end, next) = match next_line(buf, cursor) {
            Some(pos) => pos,
            None => {
                if buf.len() > limits.max_head_bytes {
                    return Err(ParseError::HeadTooLarge {
                        limit: limits.max_head_bytes,
                    });
                }
                return Ok(None);
            }
        };
        if next > limits.max_head_bytes {
            return Err(ParseError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
        if end == cursor {
            // Empty line: the head is complete.
            return Ok(Some(RequestHead {
                method: method.to_string(),
                target: target.to_string(),
                version: version.to_string(),
                headers,
                head_len: next,
            }));
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::TooManyHeaders {
                limit: limits.max_headers,
            });
        }
        let line =
            std::str::from_utf8(&buf[cursor..end]).map_err(|_| ParseError::MalformedHeader)?;
        // Obsolete line folding (a continuation starting with
        // whitespace) is a smuggling vector — rejected outright.
        let colon = line.find(':').ok_or(ParseError::MalformedHeader)?;
        let name = &line[..colon];
        if name.is_empty()
            || name
                .chars()
                .any(|c| c.is_ascii_whitespace() || c.is_ascii_control())
        {
            return Err(ParseError::MalformedHeader);
        }
        headers.push((name.to_string(), line[colon + 1..].trim().to_string()));
        cursor = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<RequestHead>, ParseError> {
        parse_head(bytes, &HttpLimits::default())
    }

    #[test]
    fn codes_list_matches_every_variant_in_order() {
        let samples = [
            ParseError::RequestLineTooLong { limit: 1 },
            ParseError::HeadTooLarge { limit: 1 },
            ParseError::TooManyHeaders { limit: 1 },
            ParseError::MalformedRequestLine,
            ParseError::UnsupportedVersion {
                version: "HTTP/0.9".to_string(),
            },
            ParseError::MalformedHeader,
            ParseError::BadContentLength,
            ParseError::BodyTooLarge {
                declared: 2,
                limit: 1,
            },
            ParseError::UnsupportedTransferEncoding,
            ParseError::LengthRequired,
        ];
        assert_eq!(samples.len(), ParseError::CODES.len());
        for (sample, &code) in samples.iter().zip(ParseError::CODES.iter()) {
            assert_eq!(sample.code(), code, "CODES order must match variants");
        }
    }

    #[test]
    fn parses_a_full_post_head() {
        let head =
            parse(b"POST /expand HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\nbody follows")
                .unwrap()
                .unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.target, "/expand");
        assert_eq!(head.version, "HTTP/1.1");
        assert_eq!(head.header("HOST"), Some("x"));
        assert_eq!(head.content_length(&HttpLimits::default()).unwrap(), 12);
        assert!(head.keep_alive());
        assert_eq!(&b"body follows"[..], &b"body follows"[..]);
        assert_eq!(
            head.head_len,
            b"POST /expand HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\n".len()
        );
    }

    #[test]
    fn incomplete_heads_ask_for_more_bytes() {
        assert_eq!(parse(b""), Ok(None));
        assert_eq!(parse(b"POST /expand HT"), Ok(None));
        assert_eq!(parse(b"POST /expand HTTP/1.1\r\nHost: x\r\n"), Ok(None));
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let head = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(head.target, "/healthz");
        assert_eq!(head.header("host"), Some("x"));
    }

    #[test]
    fn malformed_request_lines_are_typed_400s() {
        for bad in [
            &b"GET/expand HTTP/1.1\r\n\r\n"[..],
            b"GET /expand HTTP/1.1 extra\r\n\r\n",
            b" GET /expand HTTP/1.1\r\n\r\n",
            b"\r\n\r\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err, ParseError::MalformedRequestLine, "{bad:?}");
            assert_eq!(err.status(), 400);
        }
        let err = parse(b"GET /x HTTP/2.0\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 505);
        assert_eq!(err.code(), "unsupported_version");
    }

    #[test]
    fn malformed_headers_are_typed_400s() {
        for bad in [
            &b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
            b"GET / HTTP/1.1\r\n: empty\r\n\r\n",
            b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err, ParseError::MalformedHeader, "{bad:?}");
            assert_eq!(err.status(), 400);
        }
    }

    #[test]
    fn oversized_heads_are_rejected_while_arriving() {
        let limits = HttpLimits {
            max_request_line: 32,
            max_headers: 2,
            max_head_bytes: 128,
            max_body_bytes: 64,
        };
        // Request line over budget without a newline yet — rejected
        // *before* the attacker finishes it.
        let long_line = vec![b'A'; 33];
        assert_eq!(
            parse_head(&long_line, &limits),
            Err(ParseError::RequestLineTooLong { limit: 32 })
        );
        // Too many headers.
        let heads = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
        assert_eq!(
            parse_head(heads, &limits),
            Err(ParseError::TooManyHeaders { limit: 2 })
        );
        // Head bytes over budget with no terminator in sight.
        let mut creep = b"GET / HTTP/1.1\r\n".to_vec();
        while creep.len() <= 128 {
            creep.extend_from_slice(b"A: x\r\n".as_ref());
        }
        assert!(matches!(
            parse_head(&creep, &limits),
            Err(ParseError::TooManyHeaders { .. }) | Err(ParseError::HeadTooLarge { .. })
        ));
    }

    #[test]
    fn content_length_abuse_is_typed() {
        let limits = HttpLimits::default();
        let head = parse(b"POST / HTTP/1.1\r\nContent-Length: huge\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(
            head.content_length(&limits),
            Err(ParseError::BadContentLength)
        );
        let head = parse(b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(
            head.content_length(&limits),
            Err(ParseError::BadContentLength)
        );
        let head = parse(b"POST / HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(
            head.content_length(&limits),
            Err(ParseError::BodyTooLarge {
                declared: 2_000_000,
                limit: limits.max_body_bytes,
            })
        );
        let head = parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .unwrap()
            .unwrap();
        let err = head.content_length(&limits).unwrap_err();
        assert_eq!(err, ParseError::UnsupportedTransferEncoding);
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let head = |bytes: &[u8]| parse(bytes).unwrap().unwrap();
        assert!(head(b"GET / HTTP/1.1\r\n\r\n").keep_alive());
        assert!(!head(b"GET / HTTP/1.0\r\n\r\n").keep_alive());
        assert!(!head(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
        assert!(head(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive());
    }

    #[test]
    fn parse_error_codes_are_distinct_and_statused() {
        let all = [
            ParseError::RequestLineTooLong { limit: 1 },
            ParseError::HeadTooLarge { limit: 1 },
            ParseError::TooManyHeaders { limit: 1 },
            ParseError::MalformedRequestLine,
            ParseError::UnsupportedVersion {
                version: "HTTP/9".to_string(),
            },
            ParseError::MalformedHeader,
            ParseError::BadContentLength,
            ParseError::BodyTooLarge {
                declared: 2,
                limit: 1,
            },
            ParseError::UnsupportedTransferEncoding,
            ParseError::LengthRequired,
        ];
        let mut codes: Vec<&str> = all.iter().map(ParseError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "codes must be distinct");
        for e in &all {
            assert!((400..=599).contains(&e.status()), "{e:?}");
            assert!(!e.to_string().is_empty());
        }
    }
}
