//! The HTTP/1.1 server: accept loop, bounded queue, worker pool.
//!
//! One thread accepts; a fixed pool of workers drains a bounded
//! connection queue. Admission control happens **at the edge**: a full
//! queue sheds the connection immediately with a 503 + `Retry-After`
//! instead of letting it queue unboundedly, and a request's
//! [`Deadline`] starts at *accept*, so time spent waiting for a worker
//! counts against the budget and a request that aged out in the queue
//! is refused (408) rather than served late.
//!
//! Reads are deadline-bounded in short slices (≤100 ms per `read`), so
//! a slowloris client trickling header bytes ties up a worker for at
//! most one deadline budget, and a drain request (SIGTERM) is noticed
//! within ~100 ms even by workers parked on idle keep-alive
//! connections.

use super::parser::{self, HttpLimits, ParseError, RequestHead};
use super::{expand_error_body, protocol_error_body, status_for};
use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use crate::service::{Deadline, ExpansionRequest, QueryExpander, ServiceError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Lock a queue mutex, recovering from poison. A worker that panicked
/// while holding it leaves the queue state at worst one connection
/// short — never structurally corrupt — so serving must continue
/// instead of cascading the panic into every worker that touches the
/// same mutex afterwards. (Stats need no recovery: every counter,
/// per-code tally, and latency histogram is lock-free.)
fn lock_recovered<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The closed universe of wire codes the serving path can count: every
/// [`ServiceError::code`], every [`ParseError::code`], and the
/// server-local rejections minted in this module. Listing them lets
/// the per-code failure counters be a fixed array of `AtomicU64`s —
/// bumped lock-free on the hot path — instead of a mutex-guarded map;
/// a tripwire test pins the list against both `CODES` constants, so a
/// new error variant cannot silently lose its counter.
const WIRE_CODES: [&str; 24] = [
    // ServiceError::CODES (typed /expand failures).
    "empty_query",
    "no_linked_entities",
    "no_engine",
    "artifact_missing",
    "artifact_load",
    "artifact_shard",
    "artifact_fingerprint",
    "artifact_stale",
    "timeout",
    "overloaded",
    // ParseError::CODES (protocol rejections).
    "request_line_too_long",
    "head_too_large",
    "too_many_headers",
    "malformed_request_line",
    "unsupported_version",
    "malformed_header",
    "bad_content_length",
    "body_too_large",
    "unsupported_transfer_encoding",
    "length_required",
    // Server-local codes (router + body decoding + serialization).
    "bad_request",
    "internal",
    "method_not_allowed",
    "not_found",
];

/// Lock-free per-code failure tallies over [`WIRE_CODES`].
struct CodeCounters {
    counts: [AtomicU64; WIRE_CODES.len()],
}

impl Default for CodeCounters {
    fn default() -> CodeCounters {
        CodeCounters {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for CodeCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.nonzero()).finish()
    }
}

impl CodeCounters {
    fn bump(&self, code: &str) {
        match WIRE_CODES.iter().position(|&c| c == code) {
            Some(i) => {
                self.counts[i].fetch_add(1, Ordering::Relaxed);
            }
            None => debug_assert!(false, "wire code {code:?} missing from WIRE_CODES"),
        }
    }

    fn nonzero(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        WIRE_CODES
            .iter()
            .zip(self.counts.iter())
            .filter_map(|(&code, n)| {
                let n = n.load(Ordering::Relaxed);
                (n > 0).then_some((code, n))
            })
    }
}

/// Everything the server needs to know before binding.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port; see
    /// [`HttpServer::local_addr`]).
    pub addr: String,
    /// Worker threads draining the connection queue.
    pub workers: usize,
    /// Connections allowed to wait for a worker; one more is shed.
    pub queue_depth: usize,
    /// Per-request deadline, measured from **accept** for the first
    /// request on a connection (queue wait counts) and from read start
    /// for keep-alive follow-ups.
    pub deadline: Duration,
    /// Requests served per connection before it is closed (keep-alive
    /// recycling bound; 1 disables keep-alive).
    pub keep_alive_requests: usize,
    /// Protocol buffering ceilings.
    pub limits: HttpLimits,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 128,
            deadline: Duration::from_secs(2),
            keep_alive_requests: 100,
            limits: HttpLimits::default(),
        }
    }
}

/// Live serving counters, shared between workers and observers.
/// Everything is monotonic and **lock-free**: scalar counters and the
/// per-code tallies are atomics, and the latency distributions are
/// log-bucketed [`LatencyHistogram`]s (constant memory over any run
/// length, one relaxed `fetch_add` per sample) — so concurrent workers
/// never serialize on a stats mutex and [`ServerStats::snapshot`] is
/// safe to call from any thread at any time (the `/statz` endpoint
/// does).
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    queries_served: AtomicU64,
    failures: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    bad_requests: AtomicU64,
    error_codes: CodeCounters,
    request_us: LatencyHistogram,
    connection_us: LatencyHistogram,
}

/// What `/statz` serves: the serve-side counters of a `ServeRecord`,
/// readable while the server runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatzSnapshot {
    /// Connections accepted (shed ones included — they were accepted,
    /// then refused).
    pub connections: u64,
    /// `/expand` requests answered successfully.
    pub queries_served: u64,
    /// `/expand` requests answered with a typed `ServiceError`
    /// (timeouts included, shed connections not — those never reached
    /// a worker).
    pub failures: u64,
    /// Connections refused at the edge with 503 (queue full).
    pub shed: u64,
    /// Requests refused with 408 (deadline exceeded — queued too long,
    /// read too slowly, or computed too late).
    pub timeouts: u64,
    /// Protocol-level rejections (malformed heads, oversized bodies…).
    pub bad_requests: u64,
    /// Typed failures by wire code (`ServiceError::code` and
    /// `ParseError::code` values share this namespace).
    pub error_codes: BTreeMap<String, u64>,
    /// Median `/expand` service time, microseconds.
    pub p50_us: f64,
    /// 99th-percentile `/expand` service time, microseconds.
    pub p99_us: f64,
    /// 99th-percentile connection lifetime, microseconds.
    pub conn_p99_us: f64,
}

impl ServerStats {
    fn bump_code(&self, code: &str) {
        self.error_codes.bump(code);
    }

    fn record_service_error(&self, error: &ServiceError) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        if matches!(error, ServiceError::Timeout { .. }) {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
        }
        self.bump_code(error.code());
    }

    fn record_protocol_error(&self, error: &ParseError) {
        self.bad_requests.fetch_add(1, Ordering::Relaxed);
        self.bump_code(error.code());
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Successful `/expand` responses so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served.load(Ordering::Relaxed)
    }

    /// Typed-error `/expand` responses so far.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Connections shed at the edge so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests refused for exceeding their deadline so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Typed failures by wire code, copied out (codes never bumped are
    /// absent — exactly the map the old mutex-guarded implementation
    /// accumulated, so the `/statz` wire format is unchanged).
    pub fn error_codes(&self) -> BTreeMap<String, u64> {
        self.error_codes
            .nonzero()
            .map(|(code, n)| (code.to_string(), n))
            .collect()
    }

    /// The `/expand` service-time distribution (µs), copied out — what
    /// a `ServeRecord`'s histogram-mode latency summary is built from.
    pub fn request_latency(&self) -> HistogramSnapshot {
        self.request_us.snapshot()
    }

    /// The connection-lifetime distribution (µs), copied out.
    pub fn connection_latency(&self) -> HistogramSnapshot {
        self.connection_us.snapshot()
    }

    /// A consistent-enough copy of all counters for `/statz`.
    pub fn snapshot(&self) -> StatzSnapshot {
        let request = self.request_us.snapshot();
        let connection = self.connection_us.snapshot();
        StatzSnapshot {
            connections: self.connections(),
            queries_served: self.queries_served(),
            failures: self.failures(),
            shed: self.shed(),
            timeouts: self.timeouts(),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            error_codes: self.error_codes(),
            p50_us: request.percentile_us(50.0),
            p99_us: request.percentile_us(99.0),
            conn_p99_us: connection.percentile_us(99.0),
        }
    }
}

/// The bounded handoff between the accept loop and the workers.
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    conns: VecDeque<(TcpStream, Instant)>,
    draining: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                draining: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue, or hand the connection back with the depth that caused
    /// the shed (the caller answers 503 on it).
    fn push(&self, conn: TcpStream, accepted: Instant) -> Result<(), (TcpStream, usize)> {
        let mut state = lock_recovered(&self.state);
        if state.conns.len() >= self.capacity {
            let depth = state.conns.len();
            return Err((conn, depth));
        }
        state.conns.push_back((conn, accepted));
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` means the server is draining and empty —
    /// the worker should exit.
    fn pop(&self) -> Option<(TcpStream, Instant)> {
        let mut state = lock_recovered(&self.state);
        loop {
            if let Some(conn) = state.conns.pop_front() {
                return Some(conn);
            }
            if state.draining {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stop blocking pops once the queue empties; wake every worker.
    fn begin_drain(&self) {
        lock_recovered(&self.state).draining = true;
        self.ready.notify_all();
    }

    fn draining(&self) -> bool {
        lock_recovered(&self.state).draining
    }
}

/// Per-worker reusable buffers. Each worker thread owns exactly one,
/// created once at spawn and threaded through every connection it
/// serves, so steady-state serving performs near-zero allocation per
/// request: request bytes accumulate in `read`, the response is staged
/// in [`ResponseScratch`], and all three buffers keep their capacity
/// across requests.
#[derive(Default)]
struct WorkerScratch {
    /// Buffered request bytes for the connection being served
    /// (head + body + any pipelined follow-up bytes).
    read: Vec<u8>,
    /// Response staging buffers.
    response: ResponseScratch,
}

/// The two response buffers: the JSON body is serialized into `body`,
/// then head + body are assembled in `wire` and written with a single
/// `write_all` — same bytes on the socket as the old two-write path,
/// but no per-response `String`/`Vec` allocations.
#[derive(Default)]
struct ResponseScratch {
    /// The response body being staged (gains the trailing newline for
    /// JSON responses).
    body: String,
    /// The full wire image of the response (status line, headers,
    /// body).
    wire: Vec<u8>,
}

/// The bound server: call [`HttpServer::serve`] to run it.
pub struct HttpServer {
    listener: TcpListener,
    config: ServerConfig,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
}

impl HttpServer {
    /// Bind `config.addr`. The listener is live (a client can connect)
    /// but nothing is served until [`HttpServer::serve`] runs.
    pub fn bind(config: ServerConfig) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(HttpServer {
            listener,
            config,
            stats: Arc::new(ServerStats::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actual bound address (resolves a `:0` port request).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The live counters, shared; readable during and after `serve`.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Setting this flag makes [`HttpServer::serve`] stop accepting,
    /// drain queued and in-flight connections, and return. Signal
    /// handlers and tests share the same mechanism.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve until the shutdown flag is set, then drain and return.
    ///
    /// Blocks the calling thread (it becomes the accept loop); spawns
    /// `config.workers` scoped workers that borrow `expander`.
    pub fn serve(&self, expander: &QueryExpander<'_>) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let queue = ConnQueue::new(self.config.queue_depth);
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                let queue = &queue;
                scope.spawn(move || {
                    let mut scratch = WorkerScratch::default();
                    while let Some((stream, accepted)) = queue.pop() {
                        self.handle_connection(stream, accepted, expander, queue, &mut scratch);
                    }
                });
            }
            while !self.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        self.stats.connections.fetch_add(1, Ordering::Relaxed);
                        // Accepted sockets must not inherit the
                        // listener's nonblocking mode.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        let accepted = Instant::now();
                        if let Err((mut stream, depth)) = queue.push(stream, accepted) {
                            self.stats.shed.fetch_add(1, Ordering::Relaxed);
                            self.stats.bump_code("overloaded");
                            shed_connection(&mut stream, depth, self.config.deadline);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Transient accept failure (EMFILE etc.);
                        // back off instead of spinning.
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
            queue.begin_drain();
        });
        Ok(())
    }

    /// Serve one connection: up to `keep_alive_requests` exchanges,
    /// each under its own deadline.
    fn handle_connection(
        &self,
        mut stream: TcpStream,
        accepted: Instant,
        expander: &QueryExpander<'_>,
        queue: &ConnQueue,
        scratch: &mut WorkerScratch,
    ) {
        let _ = stream.set_nodelay(true);
        let conn_start = accepted;
        // Split the scratch so the read buffer and the response
        // buffers can be borrowed independently below.
        let WorkerScratch {
            read: buf,
            response,
        } = scratch;
        buf.clear();
        for exchange in 0..self.config.keep_alive_requests.max(1) {
            // The first request's clock started at accept (queue wait
            // counts); keep-alive follow-ups get a fresh budget.
            let deadline = if exchange == 0 {
                Deadline::starting_at(accepted, self.config.deadline)
            } else {
                Deadline::after(self.config.deadline)
            };
            if exchange == 0 && deadline.expired() {
                // The connection aged out waiting for a worker: an
                // admission refusal (typed 408), not an idle peer —
                // the silent-close path below is only for connections
                // a worker picked up promptly and that never spoke.
                let timeout = deadline.timeout_error();
                self.stats.record_service_error(&timeout);
                let body = protocol_error_body("timeout", &timeout.to_string());
                let retry = timeout.retry_after_seconds();
                let _ = self.respond(&mut stream, 408, &body, false, retry, &deadline, response);
                break;
            }
            let head = match self.read_head(&mut stream, buf, &deadline, queue) {
                ReadStep::Ready(head) => head,
                ReadStep::Closed => break,
                ReadStep::TimedOut => {
                    let timeout = deadline.timeout_error();
                    self.stats.record_service_error(&timeout);
                    let body = protocol_error_body("timeout", &timeout.to_string());
                    let retry = timeout.retry_after_seconds();
                    let _ =
                        self.respond(&mut stream, 408, &body, false, retry, &deadline, response);
                    break;
                }
                ReadStep::Protocol(e) => {
                    self.stats.record_protocol_error(&e);
                    let body = protocol_error_body(e.code(), &e.to_string());
                    let _ = self.respond(
                        &mut stream,
                        e.status(),
                        &body,
                        false,
                        None,
                        &deadline,
                        response,
                    );
                    break;
                }
                ReadStep::Io => break,
            };
            match self.read_body(&mut stream, buf, &head, &deadline) {
                BodyStep::Ready(body_len) => {
                    // Decide keep-alive only once the request is fully
                    // read: a drain that began while the body trickled
                    // in must advertise `Connection: close`.
                    let keep_alive = head.keep_alive()
                        && exchange + 1 < self.config.keep_alive_requests
                        && !queue.draining();
                    let consumed = head.head_len + body_len;
                    let ok = self.handle_request(
                        &mut stream,
                        &head,
                        &buf[head.head_len..consumed],
                        expander,
                        &deadline,
                        keep_alive,
                        response,
                    );
                    // Drop the exchange's bytes; pipelined bytes of the
                    // next request stay buffered.
                    buf.drain(..consumed);
                    if ok.is_err() || !keep_alive {
                        break;
                    }
                }
                BodyStep::TimedOut => {
                    let timeout = deadline.timeout_error();
                    self.stats.record_service_error(&timeout);
                    let body = protocol_error_body("timeout", &timeout.to_string());
                    let retry = timeout.retry_after_seconds();
                    let _ =
                        self.respond(&mut stream, 408, &body, false, retry, &deadline, response);
                    break;
                }
                BodyStep::Protocol(e) => {
                    self.stats.record_protocol_error(&e);
                    let body = protocol_error_body(e.code(), &e.to_string());
                    let _ = self.respond(
                        &mut stream,
                        e.status(),
                        &body,
                        false,
                        None,
                        &deadline,
                        response,
                    );
                    break;
                }
                BodyStep::Closed => break,
            }
        }
        graceful_close(&mut stream, Duration::from_millis(100));
        self.stats
            .connection_us
            .record(conn_start.elapsed().as_secs_f64() * 1e6);
    }

    /// Read until a complete head is buffered, in ≤100 ms slices so
    /// drain requests are noticed and slow writers hit the deadline.
    fn read_head(
        &self,
        stream: &mut TcpStream,
        buf: &mut Vec<u8>,
        deadline: &Deadline,
        queue: &ConnQueue,
    ) -> ReadStep {
        let mut tmp = [0u8; 4096];
        loop {
            match parser::parse_head(buf, &self.config.limits) {
                Ok(Some(head)) => return ReadStep::Ready(head),
                Ok(None) => {}
                Err(e) => return ReadStep::Protocol(e),
            }
            if deadline.expired() {
                // Zero buffered bytes is an *idle* keep-alive peer —
                // close silently; partial bytes are a timed-out (or
                // deliberately slow) request and get the typed 408.
                return if buf.is_empty() {
                    ReadStep::Closed
                } else {
                    ReadStep::TimedOut
                };
            }
            if buf.is_empty() && queue.draining() {
                // Draining and no request in flight: close now.
                return ReadStep::Closed;
            }
            match read_slice(stream, &mut tmp, deadline) {
                SliceStep::Data(n) => buf.extend_from_slice(&tmp[..n]),
                SliceStep::Eof => return ReadStep::Closed,
                SliceStep::TimedOutSlice => {}
                SliceStep::Io => return ReadStep::Io,
            }
        }
    }

    /// Read the declared body; on success the body sits in `buf` right
    /// after the head and its length is returned (no copy — the caller
    /// slices `buf`).
    fn read_body(
        &self,
        stream: &mut TcpStream,
        buf: &mut Vec<u8>,
        head: &RequestHead,
        deadline: &Deadline,
    ) -> BodyStep {
        let length = match head.content_length(&self.config.limits) {
            Ok(n) => n,
            Err(e) => return BodyStep::Protocol(e),
        };
        if length == 0 && head.method == "POST" && head.header("content-length").is_none() {
            return BodyStep::Protocol(ParseError::LengthRequired);
        }
        let want = head.head_len + length;
        let mut tmp = [0u8; 4096];
        while buf.len() < want {
            if deadline.expired() {
                return BodyStep::TimedOut;
            }
            match read_slice(stream, &mut tmp, deadline) {
                SliceStep::Data(n) => buf.extend_from_slice(&tmp[..n]),
                SliceStep::Eof => return BodyStep::Closed,
                SliceStep::TimedOutSlice => {}
                SliceStep::Io => return BodyStep::Closed,
            }
        }
        BodyStep::Ready(length)
    }

    /// Route one parsed request and write its response.
    #[allow(clippy::too_many_arguments)]
    fn handle_request(
        &self,
        stream: &mut TcpStream,
        head: &RequestHead,
        body: &[u8],
        expander: &QueryExpander<'_>,
        deadline: &Deadline,
        keep_alive: bool,
        rs: &mut ResponseScratch,
    ) -> std::io::Result<()> {
        let path = head.target.split('?').next().unwrap_or("");
        match (head.method.as_str(), path) {
            ("POST", "/expand") => {
                let t0 = Instant::now();
                let text = match std::str::from_utf8(body) {
                    Ok(text) => text,
                    Err(_) => {
                        self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                        self.stats.bump_code("bad_request");
                        let body = protocol_error_body("bad_request", "body is not UTF-8");
                        return self.respond(stream, 400, &body, keep_alive, None, deadline, rs);
                    }
                };
                let request: ExpansionRequest = match serde_json::from_str(text) {
                    Ok(request) => request,
                    Err(e) => {
                        self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                        self.stats.bump_code("bad_request");
                        let body =
                            protocol_error_body("bad_request", &format!("bad request JSON: {e}"));
                        return self.respond(stream, 400, &body, keep_alive, None, deadline, rs);
                    }
                };
                match expander.expand_deadlined(&request, *deadline) {
                    // Serialize before counting the query as served: a
                    // response that cannot serialize is a server bug,
                    // but it must cost one typed 500, not the worker.
                    Ok(response) => {
                        rs.body.clear();
                        match serde_json::to_string_into(&response, &mut rs.body) {
                            Ok(()) => {
                                self.stats.queries_served.fetch_add(1, Ordering::Relaxed);
                                self.stats
                                    .request_us
                                    .record(t0.elapsed().as_secs_f64() * 1e6);
                                self.respond_staged(stream, 200, keep_alive, None, deadline, rs)
                            }
                            Err(e) => {
                                self.stats.failures.fetch_add(1, Ordering::Relaxed);
                                self.stats.bump_code("internal");
                                let body = protocol_error_body(
                                    "internal",
                                    &format!("response serialization failed: {e}"),
                                );
                                self.respond(stream, 500, &body, keep_alive, None, deadline, rs)
                            }
                        }
                    }
                    Err(error) => {
                        self.stats.record_service_error(&error);
                        let status = status_for(&error);
                        // The typed error owns its back-off hint: 408
                        // and 503 advertise different Retry-After
                        // values (see ServiceError::retry_after_seconds).
                        let retry = error.retry_after_seconds();
                        let body = expand_error_body(&request.text, &error);
                        // A timed-out request gets its typed answer,
                        // then the connection closes: its read cursor
                        // can no longer be trusted.
                        let keep = keep_alive && status != 408;
                        self.respond(stream, status, &body, keep, retry, deadline, rs)
                    }
                }
            }
            ("GET", "/healthz") => write_http_response(
                stream,
                200,
                "text/plain",
                b"ok\n",
                keep_alive,
                None,
                deadline,
                &mut rs.wire,
            ),
            ("GET", "/statz") => {
                rs.body.clear();
                match serde_json::to_string_into(&self.stats.snapshot(), &mut rs.body) {
                    Ok(()) => self.respond_staged(stream, 200, keep_alive, None, deadline, rs),
                    Err(e) => {
                        self.stats.bump_code("internal");
                        let body = protocol_error_body(
                            "internal",
                            &format!("statz serialization failed: {e}"),
                        );
                        self.respond(stream, 500, &body, keep_alive, None, deadline, rs)
                    }
                }
            }
            (_, "/expand") | (_, "/healthz") | (_, "/statz") => {
                self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                self.stats.bump_code("method_not_allowed");
                let body = protocol_error_body(
                    "method_not_allowed",
                    &format!("{} is not served on {path}", head.method),
                );
                self.respond(stream, 405, &body, keep_alive, None, deadline, rs)
            }
            _ => {
                self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                self.stats.bump_code("not_found");
                let body = protocol_error_body("not_found", &format!("no endpoint at {path}"));
                self.respond(stream, 404, &body, keep_alive, None, deadline, rs)
            }
        }
    }

    /// Stage `body` in the scratch and write it as a JSON response.
    #[allow(clippy::too_many_arguments)]
    fn respond(
        &self,
        stream: &mut TcpStream,
        status: u16,
        body: &str,
        keep_alive: bool,
        retry_after: Option<u32>,
        deadline: &Deadline,
        rs: &mut ResponseScratch,
    ) -> std::io::Result<()> {
        rs.body.clear();
        rs.body.push_str(body);
        self.respond_staged(stream, status, keep_alive, retry_after, deadline, rs)
    }

    /// Write the JSON response already staged in `rs.body` (it gains a
    /// trailing newline so socket payloads are byte-identical to
    /// `qgx replay --json` lines).
    fn respond_staged(
        &self,
        stream: &mut TcpStream,
        status: u16,
        keep_alive: bool,
        retry_after: Option<u32>,
        deadline: &Deadline,
        rs: &mut ResponseScratch,
    ) -> std::io::Result<()> {
        rs.body.push('\n');
        write_http_response(
            stream,
            status,
            "application/json",
            rs.body.as_bytes(),
            keep_alive,
            retry_after,
            deadline,
            &mut rs.wire,
        )
    }
}

/// Outcome of one bounded read slice.
enum SliceStep {
    Data(usize),
    Eof,
    TimedOutSlice,
    Io,
}

/// One deadline-bounded read of at most 100 ms, so callers can
/// re-check the deadline and the drain flag between slices.
fn read_slice(stream: &mut TcpStream, tmp: &mut [u8], deadline: &Deadline) -> SliceStep {
    let slice = deadline
        .remaining()
        .min(Duration::from_millis(100))
        .max(Duration::from_millis(1));
    if stream.set_read_timeout(Some(slice)).is_err() {
        return SliceStep::Io;
    }
    match stream.read(tmp) {
        Ok(0) => SliceStep::Eof,
        Ok(n) => SliceStep::Data(n),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            SliceStep::TimedOutSlice
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => SliceStep::TimedOutSlice,
        Err(_) => SliceStep::Io,
    }
}

enum ReadStep {
    Ready(RequestHead),
    Protocol(ParseError),
    TimedOut,
    Closed,
    Io,
}

enum BodyStep {
    /// Body fully buffered; the payload carries its length.
    Ready(usize),
    Protocol(ParseError),
    TimedOut,
    Closed,
}

/// The reason phrase for every status this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// Serialize and send one response. The full wire image (status line,
/// headers, body) is assembled in `out` — a reusable per-worker buffer
/// — and written with a single `write_all`, so the bytes on the socket
/// are unchanged but the syscall count and per-response allocations
/// drop. Write timeout is the deadline remainder (at least 100 ms), so
/// an unread response cannot park a worker forever.
#[allow(clippy::too_many_arguments)]
pub(super) fn write_http_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    retry_after: Option<u32>,
    deadline: &Deadline,
    out: &mut Vec<u8>,
) -> std::io::Result<()> {
    out.clear();
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    if let Some(seconds) = retry_after {
        write!(out, "Retry-After: {seconds}\r\n")?;
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    let timeout = deadline.remaining().max(Duration::from_millis(100));
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(out)?;
    stream.flush()
}

/// Best-effort graceful close: FIN our side, then briefly read and
/// discard whatever the peer still has in flight. Dropping a socket
/// with unread received bytes makes the kernel answer with RST, which
/// can discard the response we just wrote — a shed client would see
/// "connection reset" instead of its clean 503. The drain is bounded
/// by `grace` and a byte cap, so a hostile trickler cannot hold the
/// thread past it.
fn graceful_close(stream: &mut TcpStream, grace: Duration) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let t0 = Instant::now();
    let mut tmp = [0u8; 4096];
    let mut drained = 0usize;
    while t0.elapsed() < grace && drained < 256 * 1024 {
        let left = grace
            .saturating_sub(t0.elapsed())
            .max(Duration::from_millis(1));
        if stream.set_read_timeout(Some(left)).is_err() {
            return;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return,
            Ok(n) => drained += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Shed one connection at the edge: best-effort 503, then a graceful
/// close (short grace — this runs on the accept thread).
pub(super) fn shed_connection(stream: &mut TcpStream, queue_depth: usize, deadline: Duration) {
    let error = ServiceError::Overloaded { queue_depth };
    let mut body = protocol_error_body(error.code(), &error.to_string());
    body.push('\n');
    let d = Deadline::after(deadline.min(Duration::from_millis(200)));
    // Cold path (runs on the accept thread): a throwaway wire buffer
    // is fine here.
    let _ = write_http_response(
        stream,
        503,
        "application/json",
        body.as_bytes(),
        false,
        error.retry_after_seconds(),
        &d,
        &mut Vec::new(),
    );
    graceful_close(stream, Duration::from_millis(50));
}
