//! Query-expansion engines: the paper's findings turned into a usable
//! system, plus baselines.
//!
//! The paper is an analysis, but its conclusion prescribes a technique:
//! *"dense cycles, in which the ratio of categories stands around the
//! 30 %, are specially useful to identify new expansion features. Among
//! \[them\], small cycles help to describe better the user needs … while
//! larger cycles introduce expansion features that widen the search
//! space"*. [`CycleExpander`] implements exactly that prescription;
//! [`DirectLinkExpander`] is the link-neighbourhood baseline of the
//! related work ([1, 2, 3] in the paper); [`RedirectExpander`] is the
//! §4 future-work idea of using redirect titles as features.

use querygraph_graph::cycles::{induced_cycle_edges, CycleFinder};
use querygraph_graph::subgraph::induce;
use querygraph_graph::traversal::ball;
use querygraph_wiki::{ArticleId, KnowledgeBase};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::cycle_analysis::max_edges;

/// A query-expansion engine: maps the query's articles to expansion
/// feature articles (whose titles are then added to the query).
pub trait Expander {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Produce expansion features for the given query articles.
    fn expand(&self, kb: &KnowledgeBase, query_articles: &[ArticleId]) -> Vec<ArticleId>;
}

/// No expansion — the unexpanded-query baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopExpander;

impl Expander for NoopExpander {
    fn name(&self) -> &'static str {
        "none"
    }

    fn expand(&self, _kb: &KnowledgeBase, _query_articles: &[ArticleId]) -> Vec<ArticleId> {
        Vec::new()
    }
}

/// Expansion from the individual wiki-links of the query articles — the
/// strategy of the related work the paper contrasts itself against
/// ("information extraction strategies by using the individual links of
/// each Wikipedia article, without going deeper into further
/// relationships").
#[derive(Debug, Clone, Copy)]
pub struct DirectLinkExpander {
    /// Maximum number of features returned.
    pub max_features: usize,
}

impl Expander for DirectLinkExpander {
    fn name(&self) -> &'static str {
        "direct-links"
    }

    fn expand(&self, kb: &KnowledgeBase, query_articles: &[ArticleId]) -> Vec<ArticleId> {
        let g = kb.graph();
        let mut counts: HashMap<ArticleId, usize> = HashMap::new();
        for &qa in query_articles {
            let node = kb.article_node(kb.resolve_redirect(qa));
            for (v, t) in g.out_edges(node) {
                if t == querygraph_graph::EdgeType::Link {
                    if let Some(a) = kb.node_article(v) {
                        *counts.entry(a).or_insert(0) += 1;
                    }
                }
            }
            for (v, t) in g.in_edges(node) {
                if t == querygraph_graph::EdgeType::Link {
                    if let Some(a) = kb.node_article(v) {
                        *counts.entry(a).or_insert(0) += 1;
                    }
                }
            }
        }
        rank_features(counts, query_articles, self.max_features)
    }
}

/// §4 future work: redirect titles of the query articles as features
/// ("they represent less common ways to refer a concept").
#[derive(Debug, Clone, Copy)]
pub struct RedirectExpander {
    /// Maximum number of features returned.
    pub max_features: usize,
}

impl Expander for RedirectExpander {
    fn name(&self) -> &'static str {
        "redirects"
    }

    fn expand(&self, kb: &KnowledgeBase, query_articles: &[ArticleId]) -> Vec<ArticleId> {
        let mut out = Vec::new();
        for &qa in query_articles {
            let main = kb.resolve_redirect(qa);
            for &r in kb.redirects_of(main) {
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        out.truncate(self.max_features);
        out
    }
}

/// Configuration of the cycle-based expander.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleExpanderConfig {
    /// Maximum cycle length (the paper stops at 5).
    pub max_len: usize,
    /// Which cycle lengths contribute features (Table 4's best row uses
    /// all of 2, 3, 4, 5).
    pub lengths: Vec<usize>,
    /// Accepted category-ratio band for cycles of length ≥ 3; the
    /// paper's finding centres it on ≈ 0.30. Length-2 cycles (which
    /// cannot contain categories) always pass.
    pub category_ratio_band: (f64, f64),
    /// Minimum density of extra edges when defined ("the denser the
    /// cycle, the better its contribution").
    pub min_density: f64,
    /// BFS radius around the query articles used to bound the search —
    /// the paper's §4 real-time challenge makes a local search
    /// mandatory on a 5M-article graph.
    pub neighborhood_radius: u32,
    /// Hard cap on neighbourhood size (nodes).
    pub max_neighborhood: usize,
    /// Hard cap on enumerated cycles.
    pub max_cycles: usize,
    /// Maximum number of features returned.
    pub max_features: usize,
}

impl Default for CycleExpanderConfig {
    fn default() -> Self {
        CycleExpanderConfig {
            max_len: 5,
            lengths: vec![2, 3, 4, 5],
            category_ratio_band: (0.2, 0.55),
            min_density: 0.0,
            neighborhood_radius: 2,
            max_neighborhood: 600,
            max_cycles: 20_000,
            max_features: 10,
        }
    }
}

/// The paper's prescription as an expander: enumerate cycles through
/// the query articles in their graph neighbourhood, keep dense cycles
/// whose category ratio sits in the configured band, and rank candidate
/// articles by how many qualifying cycles they appear in (short cycles
/// weighted higher — they "describe better the user needs").
#[derive(Debug, Clone, Default)]
pub struct CycleExpander {
    /// Tuning; `Default` follows the paper's findings.
    pub config: CycleExpanderConfig,
}

impl Expander for CycleExpander {
    fn name(&self) -> &'static str {
        "cycles"
    }

    fn expand(&self, kb: &KnowledgeBase, query_articles: &[ArticleId]) -> Vec<ArticleId> {
        let cfg = &self.config;
        let g = kb.graph();
        let query_nodes: Vec<u32> = query_articles
            .iter()
            .map(|&a| kb.article_node(kb.resolve_redirect(a)))
            .collect();
        if query_nodes.is_empty() {
            return Vec::new();
        }

        // Bounded neighbourhood (BFS ball, truncated deterministically
        // by node id after the radius cut).
        let mut neighborhood = ball(g, &query_nodes, cfg.neighborhood_radius);
        neighborhood.truncate(cfg.max_neighborhood);
        for &qn in &query_nodes {
            if !neighborhood.contains(&qn) {
                neighborhood.push(qn);
            }
        }
        let sub = induce(g, &neighborhood);
        let local_query: Vec<u32> = query_nodes
            .iter()
            .filter_map(|&qn| sub.local_of(qn))
            .collect();

        let mut scores: HashMap<ArticleId, f64> = HashMap::new();
        let finder = CycleFinder::new(&sub.graph)
            .max_len(cfg.max_len)
            .require_any_of(&local_query)
            .limit(cfg.max_cycles);
        finder.for_each(|nodes| {
            let len = nodes.len();
            if !cfg.lengths.contains(&len) {
                return;
            }
            let categories = nodes
                .iter()
                .filter(|&&l| kb.node_is_category(sub.parent_of(l)))
                .count();
            if len >= 3 {
                let ratio = categories as f64 / len as f64;
                if ratio < cfg.category_ratio_band.0 || ratio > cfg.category_ratio_band.1 {
                    return;
                }
                let e = induced_cycle_edges(&sub.graph, nodes);
                let m = max_edges(len - categories, categories);
                if m > len {
                    let density = (e - len) as f64 / (m - len) as f64;
                    if density < cfg.min_density {
                        return;
                    }
                }
            }
            // Short cycles weigh more: weight 1/len.
            let w = 1.0 / len as f64;
            for &l in nodes {
                if let Some(a) = kb.node_article(sub.parent_of(l)) {
                    if !kb.is_redirect(a) {
                        *scores.entry(a).or_insert(0.0) += w;
                    }
                }
            }
        });

        let counts: HashMap<ArticleId, usize> = scores
            .iter()
            .map(|(&a, &s)| (a, (s * 1_000_000.0) as usize))
            .collect();
        rank_features(counts, query_articles, cfg.max_features)
    }
}

/// Rank candidate features by score (descending), dropping the query
/// articles themselves; ties break by ascending article id for
/// determinism.
fn rank_features(
    scores: HashMap<ArticleId, usize>,
    query_articles: &[ArticleId],
    max_features: usize,
) -> Vec<ArticleId> {
    let mut items: Vec<(ArticleId, usize)> = scores
        .into_iter()
        .filter(|(a, _)| !query_articles.contains(a))
        .collect();
    items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    items.truncate(max_features);
    items.into_iter().map(|(a, _)| a).collect()
}

/// The expanded title list for a query: query-article titles followed
/// by feature titles — ready for
/// [`querygraph_retrieval::QueryNode::phrases_of_titles`].
pub fn expanded_titles<'kb>(
    kb: &'kb KnowledgeBase,
    query_articles: &[ArticleId],
    features: &[ArticleId],
) -> Vec<&'kb str> {
    query_articles
        .iter()
        .chain(features.iter())
        .map(|&a| kb.title(a))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use querygraph_wiki::fixture::venice_mini_wiki;

    fn venice_query(kb: &KnowledgeBase) -> Vec<ArticleId> {
        vec![
            kb.article_by_title("Gondola").unwrap(),
            kb.article_by_title("Venice").unwrap(),
        ]
    }

    #[test]
    fn noop_returns_nothing() {
        let kb = venice_mini_wiki();
        let q = venice_query(&kb);
        assert!(NoopExpander.expand(&kb, &q).is_empty());
    }

    #[test]
    fn direct_links_find_neighbours() {
        let kb = venice_mini_wiki();
        let q = venice_query(&kb);
        let feats = DirectLinkExpander { max_features: 10 }.expand(&kb, &q);
        assert!(!feats.is_empty());
        let titles: Vec<&str> = feats.iter().map(|&a| kb.title(a)).collect();
        assert!(titles.contains(&"Cannaregio"), "{titles:?}");
        // Query articles never appear as features.
        assert!(!titles.contains(&"Venice"));
        assert!(!titles.contains(&"Gondola"));
    }

    #[test]
    fn redirect_expander_returns_aliases() {
        let kb = venice_mini_wiki();
        let q = venice_query(&kb);
        let feats = RedirectExpander { max_features: 10 }.expand(&kb, &q);
        let titles: Vec<&str> = feats.iter().map(|&a| kb.title(a)).collect();
        // Venice has one alias; Gondola has none (Gondoliere aliases
        // Gondolier, a different article).
        assert_eq!(titles, vec!["La Serenissima"]);
        let gondolier = vec![kb.article_by_title("Gondolier").unwrap()];
        let feats2 = RedirectExpander { max_features: 10 }.expand(&kb, &gondolier);
        let titles2: Vec<&str> = feats2.iter().map(|&a| kb.title(a)).collect();
        assert_eq!(titles2, vec!["Gondoliere"]);
    }

    #[test]
    fn cycle_expander_prefers_cycle_members() {
        let kb = venice_mini_wiki();
        let q = venice_query(&kb);
        let feats = CycleExpander::default().expand(&kb, &q);
        assert!(!feats.is_empty());
        let titles: Vec<&str> = feats.iter().map(|&a| kb.title(a)).collect();
        // The strongest features are the densely cycled neighbours of
        // the query: the Grand Canal triangle and the Cannaregio
        // 2-cycle (Fig. 4a/4b).
        assert!(titles[..3].contains(&"Cannaregio"), "{titles:?}");
        assert!(titles[..3].contains(&"Grand Canal (Venice)"), "{titles:?}");
        // The anthrax trap is nowhere near the query neighbourhood.
        assert!(!titles.contains(&"Anthrax"));
        assert!(!titles.contains(&"Sheep"));
    }

    #[test]
    fn cycle_expander_category_band_filters() {
        let kb = venice_mini_wiki();
        let sheep = vec![kb.article_by_title("Sheep").unwrap()];
        // The trap triangle has category ratio 0 — a band starting
        // above 0 must reject it, so quarantine/anthrax are not
        // suggested from the trap cycle.
        let expander = CycleExpander {
            config: CycleExpanderConfig {
                category_ratio_band: (0.2, 0.55),
                lengths: vec![3, 4, 5],
                ..CycleExpanderConfig::default()
            },
        };
        let feats = expander.expand(&kb, &sheep);
        let titles: Vec<&str> = feats.iter().map(|&a| kb.title(a)).collect();
        assert!(
            !titles.contains(&"Anthrax"),
            "category-free trap must be filtered: {titles:?}"
        );
    }

    #[test]
    fn cycle_expander_accepts_trap_without_band() {
        let kb = venice_mini_wiki();
        let sheep = vec![kb.article_by_title("Sheep").unwrap()];
        let expander = CycleExpander {
            config: CycleExpanderConfig {
                category_ratio_band: (0.0, 1.0),
                ..CycleExpanderConfig::default()
            },
        };
        let feats = expander.expand(&kb, &sheep);
        let titles: Vec<&str> = feats.iter().map(|&a| kb.title(a)).collect();
        assert!(
            titles.contains(&"Anthrax"),
            "without the band the trap leaks through: {titles:?}"
        );
    }

    #[test]
    fn max_features_is_respected() {
        let kb = venice_mini_wiki();
        let q = venice_query(&kb);
        let feats = DirectLinkExpander { max_features: 1 }.expand(&kb, &q);
        assert_eq!(feats.len(), 1);
    }

    #[test]
    fn features_never_include_redirect_articles_for_cycles() {
        let kb = venice_mini_wiki();
        let q = venice_query(&kb);
        let feats = CycleExpander::default().expand(&kb, &q);
        for &f in &feats {
            assert!(!kb.is_redirect(f), "cycle features are main articles");
        }
    }

    #[test]
    fn expanded_titles_concatenates() {
        let kb = venice_mini_wiki();
        let q = venice_query(&kb);
        let feats = vec![kb.article_by_title("Cannaregio").unwrap()];
        let titles = expanded_titles(&kb, &q, &feats);
        assert_eq!(titles, vec!["Gondola", "Venice", "Cannaregio"]);
    }

    #[test]
    fn deterministic_expansion() {
        let kb = venice_mini_wiki();
        let q = venice_query(&kb);
        let a = CycleExpander::default().expand(&kb, &q);
        let b = CycleExpander::default().expand(&kb, &q);
        assert_eq!(a, b);
    }
}
