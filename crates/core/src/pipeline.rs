//! The query-analysis pipeline: shared context, per-stage timing, and a
//! deterministic work-stealing runner.
//!
//! [`Experiment::run`](crate::Experiment::run) and
//! [`Experiment::run_parallel`](crate::Experiment::run_parallel) are thin
//! wrappers over this module. The pieces:
//!
//! * [`PipelineCtx`] — the read-only world shared by every worker: the
//!   search engine, the entity linker, the knowledge base, the corpus,
//!   and the configuration. Building one constructs the linker's title
//!   dictionary once; analyzing a query never mutates it (the engine's
//!   phrase cache is interior-mutable behind a lock but only memoizes).
//! * [`analyze_timed`](PipelineCtx::analyze_timed) — the paper's §2–§3
//!   per-query pipeline, instrumented per [`Stage`].
//! * [`parallel_map`] — the deterministic work-stealing runner,
//!   re-exported from `querygraph_retrieval::par` (it moved down so the
//!   sharded engine can scatter per-shard work on it too): map `0..n`
//!   through a pure function over `std::thread::scope` workers with
//!   chunked work stealing, results reassembled in index order.
//!   [`run_queries`], the serving facade's
//!   [`crate::service::QueryExpander::expand_batch`], per-shard
//!   retrieval, and parallel segment loading are all clients.
//! * [`run_queries`] — distributes queries over [`parallel_map`].
//!   Output is **deterministic**: each analysis depends only on the
//!   read-only context and its query index, and results are
//!   reassembled in query order, so the `Report` is byte-identical to
//!   a sequential run no matter how the steal schedule interleaves
//!   (the experiment tests assert this via `serde_json`).
//! * [`RunSummary`] — the machine-readable timing record (wall clock +
//!   per-stage CPU seconds) that `repro_all` serializes to
//!   `BENCH_seed.json`, giving future PRs a perf trajectory. Timings
//!   live here, *outside* [`Report`](crate::Report), exactly so that
//!   reports stay byte-stable across runs and thread counts.

use crate::config::ExperimentConfig;
use crate::cycle_analysis::{article_frequency_correlation, enumerate_cycles, fill_contributions};
use crate::experiment::{Experiment, QueryAnalysis, TABLE4_CONFIGS};
use crate::ground_truth::{find_ground_truth, QualityEvaluator};
use crate::query_graph::assemble;
use crate::service::QueryExpander;
use querygraph_corpus::imageclef::linking_text;
use querygraph_corpus::synth::SynthCorpus;
use querygraph_link::EntityLinker;
use querygraph_retrieval::backend::RetrievalBackend;
use querygraph_wiki::{ArticleId, KnowledgeBase};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

pub use querygraph_retrieval::par::parallel_map;

/// The instrumented stages of one query's analysis, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// §2.1 entity linking: L(q.k) and the L(q.D) mention pool.
    Link,
    /// §2.2 ground-truth hill climb.
    GroundTruth,
    /// §2.3 query-graph assembly + largest-component statistics.
    GraphAssembly,
    /// §3 cycle enumeration.
    CycleEnum,
    /// §3 per-cycle retrieval contributions.
    Contributions,
    /// Table 4 cycle-length configurations.
    Table4,
    /// §4 article-frequency correlation (optional).
    Correlation,
}

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; 7] = [
        Stage::Link,
        Stage::GroundTruth,
        Stage::GraphAssembly,
        Stage::CycleEnum,
        Stage::Contributions,
        Stage::Table4,
        Stage::Correlation,
    ];

    /// Snake-case stage name, as written to `BENCH_seed.json`.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Link => "link",
            Stage::GroundTruth => "ground_truth",
            Stage::GraphAssembly => "graph_assembly",
            Stage::CycleEnum => "cycle_enum",
            Stage::Contributions => "contributions",
            Stage::Table4 => "table4",
            Stage::Correlation => "correlation",
        }
    }

    fn index(self) -> usize {
        Stage::ALL
            .iter()
            .position(|s| *s == self)
            .expect("stage listed in Stage::ALL")
    }
}

/// Wall-clock seconds per [`Stage`] for one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Seconds per stage, indexed like [`Stage::ALL`].
    pub seconds: [f64; Stage::ALL.len()],
}

impl StageTimings {
    /// Total seconds across all stages.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Seconds spent in `stage`.
    pub fn get(&self, stage: Stage) -> f64 {
        self.seconds[stage.index()]
    }

    fn add(&mut self, stage: Stage, seconds: f64) {
        self.seconds[stage.index()] += seconds;
    }

    fn accumulate(&mut self, other: &StageTimings) {
        for (a, b) in self.seconds.iter_mut().zip(&other.seconds) {
            *a += b;
        }
    }
}

/// The read-only world shared by every pipeline worker.
///
/// The reproduction pipeline is a consumer of the serving facade: the
/// entity linker lives inside a [`QueryExpander`], so the same
/// amortized state (linker dictionary, engine, knowledge base) serves
/// both ad-hoc queries and the batch experiment.
pub struct PipelineCtx<'a> {
    /// Run configuration.
    pub config: &'a ExperimentConfig,
    /// The corpus and query set under analysis.
    pub corpus: &'a SynthCorpus,
    /// The retrieval backend over the documents' linking text —
    /// monolithic or sharded, byte-identical either way.
    pub engine: &'a dyn RetrievalBackend,
    /// The knowledge base the query graphs are induced from.
    pub kb: &'a KnowledgeBase,
    /// The serving facade over the same world (entity linker built
    /// once at construction).
    pub expander: QueryExpander<'a>,
}

impl<'a> PipelineCtx<'a> {
    /// Borrow the experiment's world and build the serving facade
    /// (including the entity linker's title dictionary).
    pub fn new(experiment: &'a Experiment) -> PipelineCtx<'a> {
        PipelineCtx {
            config: &experiment.config,
            corpus: &experiment.corpus,
            engine: experiment.engine.backend(),
            kb: &experiment.wiki.kb,
            expander: QueryExpander::new(&experiment.wiki.kb, experiment.engine.backend()),
        }
    }

    /// The entity linker (owned by the serving facade).
    pub fn linker(&self) -> &EntityLinker<'a> {
        self.expander.linker()
    }

    /// Analyze query `qi` (untimed convenience).
    pub fn analyze(&self, qi: usize) -> QueryAnalysis {
        self.analyze_timed(qi).0
    }

    /// Analyze query `qi`, reporting per-stage wall-clock timings.
    pub fn analyze_timed(&self, qi: usize) -> (QueryAnalysis, StageTimings) {
        analyze_one(
            self.config,
            self.corpus,
            self.engine,
            self.kb,
            self.expander.linker(),
            qi,
        )
    }
}

/// Machine-readable summary of one pipeline run: configuration scale,
/// wall clock, and per-stage CPU seconds summed over queries. This is
/// the record `repro_all` writes to `BENCH_seed.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// `"sequential"` or `"work_stealing"`.
    pub mode: String,
    /// Worker threads used.
    pub threads: usize,
    /// Queries analyzed.
    pub queries: usize,
    /// End-to-end wall-clock seconds of the run.
    pub wall_seconds: f64,
    /// `(stage name, summed seconds across queries)`, in stage order.
    /// Summed per-stage time is CPU time: with N workers it can exceed
    /// `wall_seconds`.
    pub stage_seconds: Vec<(String, f64)>,
    /// Mean per-query seconds across **all** stages.
    pub per_query_mean_seconds: f64,
    /// Mean per-query seconds of the §3 cycle analysis alone
    /// (enumeration + contributions) — the quantity the paper's §4
    /// "≈6 minutes per query" refers to.
    pub cycle_analysis_mean_seconds: f64,
    /// Quality evaluations requested by the §2.2 hill climbs (summed
    /// over queries; memo hits included, so the count is comparable
    /// across fast-path on/off).
    pub ground_truth_evaluations: usize,
    /// Hill-climb evaluations answered from the subset memo.
    pub ground_truth_cached: usize,
    /// Hill-climb evaluations that ran a workspace search.
    pub ground_truth_computed: usize,
    /// `ground_truth_cached / ground_truth_evaluations` (0 when none).
    pub ground_truth_cache_hit_rate: f64,
}

impl RunSummary {
    fn new(
        mode: &str,
        threads: usize,
        wall_seconds: f64,
        totals: &StageTimings,
        per_query: &[QueryAnalysis],
    ) -> RunSummary {
        let queries = per_query.len();
        let gt_evaluations: usize = per_query.iter().map(|q| q.ground_truth.evaluations).sum();
        let gt_cached: usize = per_query
            .iter()
            .map(|q| q.ground_truth.cached_evaluations)
            .sum();
        let gt_computed: usize = per_query
            .iter()
            .map(|q| q.ground_truth.computed_evaluations)
            .sum();
        RunSummary {
            mode: mode.to_string(),
            threads,
            queries,
            wall_seconds,
            stage_seconds: Stage::ALL
                .iter()
                .map(|s| (s.name().to_string(), totals.get(*s)))
                .collect(),
            per_query_mean_seconds: totals.total() / queries.max(1) as f64,
            cycle_analysis_mean_seconds: (totals.get(Stage::CycleEnum)
                + totals.get(Stage::Contributions))
                / queries.max(1) as f64,
            ground_truth_evaluations: gt_evaluations,
            ground_truth_cached: gt_cached,
            ground_truth_computed: gt_computed,
            ground_truth_cache_hit_rate: if gt_evaluations > 0 {
                gt_cached as f64 / gt_evaluations as f64
            } else {
                0.0
            },
        }
    }

    /// Human-readable rendering for run logs.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "pipeline run: {} queries, {} thread(s) [{}], {:.3}s wall",
            self.queries, self.threads, self.mode, self.wall_seconds
        );
        for (name, secs) in &self.stage_seconds {
            let _ = writeln!(s, "  {name:<14} {secs:>9.4} s");
        }
        let _ = writeln!(
            s,
            "  ground-truth evaluations: {} ({} cached / {} computed, {:.1}% hit rate)",
            self.ground_truth_evaluations,
            self.ground_truth_cached,
            self.ground_truth_computed,
            100.0 * self.ground_truth_cache_hit_rate
        );
        let _ = writeln!(
            s,
            "  per-query mean {:>9.4} s (cycle analysis {:.4} s; paper ≈360 s \
             for cycle analysis on their graph DB)",
            self.per_query_mean_seconds, self.cycle_analysis_mean_seconds
        );
        s
    }
}

/// Analyze every query of `ctx` over `threads` workers and reassemble
/// results in query order.
///
/// `threads <= 1` runs inline on the calling thread. Otherwise each
/// worker owns one contiguous chunk of the query range and, when its
/// chunk is drained, steals from the remaining chunks round-robin —
/// cheap load balancing for the heavy-tailed per-query cost the paper's
/// §4 describes, with no locks on the work path (one `fetch_add` per
/// claimed query).
pub fn run_queries(ctx: &PipelineCtx<'_>, threads: usize) -> (Vec<QueryAnalysis>, RunSummary) {
    let n = ctx.corpus.queries.len();
    let start = Instant::now();
    let (mode, workers) = if threads <= 1 {
        ("sequential", 1)
    } else {
        ("work_stealing", threads.min(n.max(1)))
    };
    let results = parallel_map(n, workers, |qi| ctx.analyze_timed(qi));
    let mut totals = StageTimings::default();
    let per_query: Vec<QueryAnalysis> = results
        .into_iter()
        .map(|(analysis, timings)| {
            totals.accumulate(&timings);
            analysis
        })
        .collect();
    let summary = RunSummary::new(
        mode,
        workers,
        start.elapsed().as_secs_f64(),
        &totals,
        &per_query,
    );
    (per_query, summary)
}

/// The §2–§3 pipeline for one query, instrumented per stage.
pub(crate) fn analyze_one(
    config: &ExperimentConfig,
    corpus: &SynthCorpus,
    engine: &dyn RetrievalBackend,
    kb: &KnowledgeBase,
    linker: &EntityLinker<'_>,
    qi: usize,
) -> (QueryAnalysis, StageTimings) {
    let mut timings = StageTimings::default();
    let query = &corpus.queries.queries[qi];
    let relevant: Vec<u32> = query.relevant.iter().map(|d| d.0).collect();

    // §2.1 entity linking: keywords and relevant documents.
    let t = Instant::now();
    let lqk = linker.link_articles(&query.keywords);
    let mut mention_freq: HashMap<ArticleId, usize> = HashMap::new();
    for &d in &query.relevant {
        let text = linking_text(corpus.corpus.doc(d));
        for a in linker.link_articles(&text) {
            *mention_freq.entry(a).or_insert(0) += 1;
        }
    }
    let lqd_size = mention_freq.len();
    let mut pool: Vec<(ArticleId, usize)> = mention_freq.into_iter().collect();
    pool.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pool.truncate(config.max_pool);
    let pool: Vec<ArticleId> = pool.into_iter().map(|(a, _)| a).collect();
    timings.add(Stage::Link, t.elapsed().as_secs_f64());

    // §2.2 ground truth.
    let t = Instant::now();
    let evaluator = QualityEvaluator::new(kb, engine, &relevant, config.ground_truth.search_depth);
    let ground_truth = find_ground_truth(&evaluator, &config.ground_truth, query.id, &lqk, &pool);
    timings.add(Stage::GroundTruth, t.elapsed().as_secs_f64());

    // §2.3 query graph.
    let t = Instant::now();
    let qg = assemble(kb, &lqk, &ground_truth.expansion);
    let lcc = qg.lcc_stats();
    timings.add(Stage::GraphAssembly, t.elapsed().as_secs_f64());

    // §3 cycle enumeration …
    let t = Instant::now();
    let mut cycles = enumerate_cycles(&qg, kb, config.max_cycle_len, config.cycle_limit);
    timings.add(Stage::CycleEnum, t.elapsed().as_secs_f64());

    // … and per-cycle retrieval contributions.
    let t = Instant::now();
    fill_contributions(&mut cycles, &evaluator, &lqk, ground_truth.baseline_quality);
    timings.add(Stage::Contributions, t.elapsed().as_secs_f64());

    // Table 4 cycle-length configurations.
    let t = Instant::now();
    let table4_rows = TABLE4_CONFIGS
        .iter()
        .map(|(label, lengths)| {
            let mut features: Vec<ArticleId> = Vec::new();
            for rec in cycles.iter().filter(|r| lengths.contains(&r.len)) {
                for &a in &rec.articles {
                    if !features.contains(&a) {
                        features.push(a);
                    }
                }
            }
            let mut set = lqk.clone();
            for a in features {
                if !set.contains(&a) {
                    set.push(a);
                }
            }
            (label.to_string(), evaluator.precisions(&set))
        })
        .collect();
    timings.add(Stage::Table4, t.elapsed().as_secs_f64());

    // §4 article-frequency correlation.
    let t = Instant::now();
    let correlation = if config.compute_correlation {
        article_frequency_correlation(&cycles, &evaluator, &lqk, ground_truth.baseline_quality)
    } else {
        None
    };
    timings.add(Stage::Correlation, t.elapsed().as_secs_f64());

    let analysis = QueryAnalysis {
        query_id: query.id,
        keywords: query.keywords.clone(),
        lqk,
        lqd_size,
        ground_truth,
        lcc,
        cycles,
        table4_rows,
        correlation,
    };
    (analysis, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;

    #[test]
    fn stage_timings_accumulate_and_total() {
        let mut a = StageTimings::default();
        a.add(Stage::Link, 0.5);
        a.add(Stage::CycleEnum, 0.25);
        let mut b = StageTimings::default();
        b.add(Stage::Link, 0.5);
        b.accumulate(&a);
        assert!((b.get(Stage::Link) - 1.0).abs() < 1e-12);
        assert!((b.total() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn run_summary_covers_every_stage() {
        let exp = Experiment::build(&ExperimentConfig::tiny());
        let ctx = PipelineCtx::new(&exp);
        let (per_query, summary) = run_queries(&ctx, 2);
        assert_eq!(per_query.len(), exp.corpus.queries.len());
        assert_eq!(summary.stage_seconds.len(), Stage::ALL.len());
        assert_eq!(summary.queries, per_query.len());
        assert!(summary.wall_seconds > 0.0);
        assert!(summary.per_query_mean_seconds > 0.0);
        assert!(summary.ground_truth_evaluations > 0);
        assert_eq!(
            summary.ground_truth_cached + summary.ground_truth_computed,
            summary.ground_truth_evaluations,
            "cached/computed must partition the evaluation count"
        );
        assert!((0.0..=1.0).contains(&summary.ground_truth_cache_hit_rate));
        let names: Vec<&str> = summary
            .stage_seconds
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "link",
                "ground_truth",
                "graph_assembly",
                "cycle_enum",
                "contributions",
                "table4",
                "correlation"
            ]
        );
    }

    #[test]
    fn summary_serializes_with_stage_names() {
        let exp = Experiment::build(&ExperimentConfig::tiny());
        let (_, summary) = run_queries(&PipelineCtx::new(&exp), 1);
        let json = serde_json::to_string(&summary).expect("summary serializes");
        assert!(json.contains("\"ground_truth\""));
        let back: RunSummary = serde_json::from_str(&json).expect("summary parses");
        assert_eq!(back, summary);
    }
}
