//! Log-bucketed latency histogram with lock-free recording.
//!
//! The serving path records one latency sample per request; a
//! multi-hour `qgx serve` run at thousands of requests per second
//! would grow an exact sample `Vec` without bound. [`LatencyHistogram`]
//! holds **constant memory** (a fixed array of `AtomicU64` buckets)
//! and records with a single relaxed `fetch_add` — no lock, no
//! allocation — so concurrent workers never contend on it.
//!
//! Buckets are logarithmic: [`BUCKETS_PER_OCTAVE`] sub-buckets per
//! power of two of microseconds, so the relative quantization error of
//! a reported percentile is bounded by `2^(1/8) − 1 ≈ 9.1%` at any
//! magnitude — microseconds and minutes are resolved equally well.
//! Percentiles are nearest-rank over the cumulative bucket counts and
//! report the bucket's **upper bound** (clamped to the exact observed
//! maximum), so a histogram-mode tail figure never under-states the
//! tail. Mean and max are tracked exactly (nanosecond integer sum /
//! `fetch_max`).
//!
//! The exact-percentile path (`LatencySummary::of` over raw samples)
//! remains in use for bounded replay workloads; records say which mode
//! produced their numbers (`latency_mode`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Log-bucket resolution: sub-buckets per factor-of-two in value.
pub const BUCKETS_PER_OCTAVE: usize = 8;

/// Octaves covered above 1 µs: `2^40` µs ≈ 12.7 days, far past any
/// deadline this server can serve. Larger samples clamp into the top
/// bucket.
const OCTAVES: usize = 40;

/// Bucket 0 holds sub-microsecond samples; buckets `1..` are the log
/// grid.
const NUM_BUCKETS: usize = 1 + OCTAVES * BUCKETS_PER_OCTAVE;

/// Fixed-memory, lock-free histogram of latency samples in
/// microseconds. Share behind `Arc` (or a field of a shared stats
/// struct); every method takes `&self`.
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    /// Total samples recorded.
    count: AtomicU64,
    /// Exact sum, in integer nanoseconds (overflows after ~584 years
    /// of accumulated latency — treated as unreachable).
    sum_ns: AtomicU64,
    /// Exact maximum, in integer nanoseconds.
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish()
    }
}

/// The bucket index a microsecond sample lands in.
fn bucket_index(us: f64) -> usize {
    if us.is_nan() || us < 1.0 {
        // Sub-microsecond, zero, or NaN: the underflow bucket.
        return 0;
    }
    // `us >= 1.0` and non-NaN here, so `idx` is never NaN (log2 of
    // +∞ is +∞, which the top-bucket guard catches).
    let idx = (us.log2() * BUCKETS_PER_OCTAVE as f64).floor();
    // Past the grid (or infinite): the top bucket, whose reported
    // value is the exact max rather than a bucket bound.
    if idx >= (NUM_BUCKETS - 2) as f64 {
        return NUM_BUCKETS - 1;
    }
    1 + idx as usize
}

/// The exclusive upper bound (µs) of bucket `i` — what percentiles
/// report, so quantization can only over-state, never hide, the tail.
fn bucket_upper_us(i: usize) -> f64 {
    if i == 0 {
        return 1.0;
    }
    2f64.powf(i as f64 / BUCKETS_PER_OCTAVE as f64)
}

impl LatencyHistogram {
    /// Record one sample (microseconds). Lock-free; negative or NaN
    /// samples land in the underflow bucket rather than panicking.
    pub fn record(&self, us: f64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let ns = if us.is_finite() && us > 0.0 {
            (us * 1e3).round() as u64
        } else {
            0
        };
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters, cheap to take while
    /// recording continues (per-bucket reads are relaxed; a snapshot
    /// concurrent with recording may be at most a few samples skewed,
    /// never structurally wrong).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`LatencyHistogram`]'s state; all summary math
/// happens here so the live histogram is never locked.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl HistogramSnapshot {
    /// Samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum sample, microseconds (0 when empty).
    pub fn max_us(&self) -> f64 {
        self.max_ns as f64 / 1e3
    }

    /// Exact mean, microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / 1e3 / self.count as f64
        }
    }

    /// Nearest-rank percentile (`p` in 0..=100), reported as the
    /// holding bucket's upper bound clamped to the exact observed max
    /// — within +9.1% of the true value, never below it for tail
    /// percentiles. 0 when empty.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The top bucket is open-ended (samples past the grid
                // clamp into it), so its honest value is the exact max.
                if i + 1 == self.buckets.len() {
                    return self.max_us();
                }
                return bucket_upper_us(i).min(self.max_us());
            }
        }
        self.max_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::default();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile_us(50.0), 0.0);
        assert_eq!(s.percentile_us(99.9), 0.0);
        assert_eq!(s.max_us(), 0.0);
        assert_eq!(s.mean_us(), 0.0);
    }

    #[test]
    fn percentiles_are_within_one_bucket_of_exact() {
        let h = LatencyHistogram::default();
        let samples: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 10_000);
        // Exact nearest-rank values for this sample set.
        for (p, exact) in [(50.0, 5000.0), (99.0, 9900.0), (99.9, 9990.0)] {
            let got = snap.percentile_us(p);
            assert!(
                got >= exact && got <= exact * 1.0915,
                "p{p}: got {got}, exact {exact}"
            );
        }
        assert_eq!(snap.max_us(), 10_000.0);
        let exact_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((snap.mean_us() - exact_mean).abs() < 1e-6);
    }

    #[test]
    fn tail_is_never_understated() {
        let h = LatencyHistogram::default();
        for _ in 0..999 {
            h.record(100.0);
        }
        h.record(50_000.0); // one outlier = the p99.9+ tail
        let snap = h.snapshot();
        assert_eq!(snap.percentile_us(100.0), 50_000.0);
        assert!(snap.percentile_us(99.9) >= 50_000.0 * 0.999);
        assert!(snap.percentile_us(50.0) >= 100.0);
        assert!(snap.percentile_us(50.0) <= 100.0 * 1.0915);
    }

    #[test]
    fn degenerate_samples_do_not_panic() {
        let h = LatencyHistogram::default();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(0.3);
        h.record(f64::INFINITY); // clamps into the top bucket
        let snap = h.snapshot();
        assert_eq!(snap.count(), 5);
        // Sub-µs and degenerate samples report ≤ the underflow bound.
        assert!(snap.percentile_us(50.0) <= 1.0);
    }

    #[test]
    fn memory_is_bounded_regardless_of_sample_count() {
        // The whole point: size is a compile-time constant.
        assert_eq!(
            std::mem::size_of::<LatencyHistogram>(),
            (NUM_BUCKETS + 3) * 8
        );
        let h = LatencyHistogram::default();
        for i in 0..100_000u64 {
            h.record((i % 977) as f64 + 0.5);
        }
        assert_eq!(h.count(), 100_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::default());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record((t * 10_000 + i) as f64 / 7.0);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 80_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 80_000);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        let mut v = 0.25f64;
        while v < 1e13 {
            let i = bucket_index(v);
            assert!(i >= last, "bucket index must be monotone in the value");
            assert!(i < NUM_BUCKETS);
            assert!(
                i == 0 || i == NUM_BUCKETS - 1 || bucket_upper_us(i) >= v,
                "upper bound must cover the value: {v} -> bucket {i}"
            );
            last = i;
            v *= 1.07;
        }
    }
}
