//! Experiment configuration: one serializable struct driving the whole
//! reproduction.

use crate::ground_truth::GroundTruthConfig;
use querygraph_corpus::synth::SynthCorpusConfig;
use querygraph_wiki::synth::SynthWikiConfig;
use serde::{Deserialize, Serialize};

/// Everything a reproduction run needs. Serializable so runs can be
/// archived next to their results (DESIGN.md §8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Synthetic-Wikipedia parameters.
    pub wiki: SynthWikiConfig,
    /// Synthetic-corpus parameters.
    pub corpus: SynthCorpusConfig,
    /// Ground-truth search parameters.
    pub ground_truth: GroundTruthConfig,
    /// Maximum cycle length analyzed (the paper stops at 5).
    pub max_cycle_len: usize,
    /// Per-query cap on enumerated cycles (safety valve; the paper's §4
    /// names unbounded cycle enumeration as the open challenge).
    pub cycle_limit: usize,
    /// Cap on |L(q.D)| fed to the hill climb (candidates are kept in
    /// descending relevant-document frequency).
    pub max_pool: usize,
    /// Also compute the §4 article-frequency correlation (extra
    /// retrieval evaluations per query).
    pub compute_correlation: bool,
}

impl ExperimentConfig {
    /// The paper-scale configuration: 50 topics / 50 queries, cycle
    /// lengths ≤ 5.
    pub fn default_paper() -> Self {
        ExperimentConfig {
            wiki: SynthWikiConfig::default_experiment(),
            corpus: SynthCorpusConfig::default_experiment(),
            ground_truth: GroundTruthConfig::default(),
            max_cycle_len: 5,
            cycle_limit: 30_000,
            max_pool: 40,
            compute_correlation: true,
        }
    }

    /// The paper-scale stress configuration: a 100k+ article knowledge
    /// base and a ~31k document corpus (ROADMAP "Paper-scale growth
    /// knobs"). One query per topic; correlation off — the point is
    /// scale, not the §4 extras.
    pub fn stress() -> Self {
        ExperimentConfig {
            wiki: SynthWikiConfig::stress(),
            corpus: SynthCorpusConfig::stress(),
            ground_truth: GroundTruthConfig::default(),
            max_cycle_len: 5,
            cycle_limit: 30_000,
            max_pool: 40,
            compute_correlation: false,
        }
    }

    /// [`ExperimentConfig::stress`] with `--quick`-style sampling: the
    /// same 100k+ article world, but only `queries` of the 60 queries
    /// analyzed — world synthesis and indexing (what the stress tier
    /// exists to measure) are untouched; only the per-query pipeline is
    /// sampled so CI stays under a few minutes.
    pub fn stress_sampled(queries: usize) -> Self {
        let mut cfg = Self::stress();
        cfg.corpus.num_queries = queries.min(cfg.wiki.num_topics);
        cfg
    }

    /// The **track**-scale configuration: the stress knowledge base
    /// (100k+ articles) over a corpus the size of the real ImageCLEF
    /// 2011 Wikipedia track — ~237k documents (the stress tier stops
    /// at ~31k). This is the ingest tier: big enough that streaming,
    /// segmented indexing is the only reasonable way to build it.
    pub fn track() -> Self {
        let mut cfg = Self::stress();
        cfg.corpus.seed = 0x7AC4_0237;
        // ≈ 235k noise docs + ~1.5k relevant/distractor docs ≈ the
        // track's 237,434 images.
        cfg.corpus.noise_docs = 235_000;
        cfg
    }

    /// [`ExperimentConfig::track`] with `--quick`-style sampling: the
    /// same ~237k-document world, only `queries` of the 60 queries
    /// analyzed.
    pub fn track_sampled(queries: usize) -> Self {
        let mut cfg = Self::track();
        cfg.corpus.num_queries = queries.min(cfg.wiki.num_topics);
        cfg
    }

    /// A miniature configuration for tests and doctests (< 1 s).
    pub fn tiny() -> Self {
        ExperimentConfig {
            wiki: SynthWikiConfig::small(),
            corpus: SynthCorpusConfig::small(),
            ground_truth: GroundTruthConfig {
                max_iterations: 20,
                ..GroundTruthConfig::default()
            },
            max_cycle_len: 5,
            cycle_limit: 5_000,
            max_pool: 20,
            compute_correlation: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_round_trip() {
        let cfg = ExperimentConfig::default_paper();
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn tiny_is_smaller_than_paper() {
        let tiny = ExperimentConfig::tiny();
        let paper = ExperimentConfig::default_paper();
        assert!(tiny.corpus.num_queries < paper.corpus.num_queries);
        assert!(tiny.wiki.num_topics < paper.wiki.num_topics);
    }

    #[test]
    fn paper_config_respects_wiki_capacity() {
        let cfg = ExperimentConfig::default_paper();
        assert!(cfg.corpus.num_queries <= cfg.wiki.num_topics);
    }

    #[test]
    fn stress_config_reaches_paper_scale() {
        let cfg = ExperimentConfig::stress();
        assert!(cfg.wiki.num_topics * cfg.wiki.articles_per_topic >= 100_000);
        assert!(cfg.corpus.num_queries <= cfg.wiki.num_topics);
        let sampled = ExperimentConfig::stress_sampled(8);
        assert_eq!(sampled.corpus.num_queries, 8);
        assert_eq!(sampled.wiki, cfg.wiki, "sampling must not shrink the world");
    }

    #[test]
    fn track_config_reaches_track_scale() {
        let cfg = ExperimentConfig::track();
        // The real track has ~237k documents; the tier must clear 200k
        // even before relevant/distractor docs are counted.
        assert!(cfg.corpus.noise_docs >= 200_000);
        assert_eq!(cfg.wiki, ExperimentConfig::stress().wiki);
        assert_ne!(
            cfg.corpus.seed,
            ExperimentConfig::stress().corpus.seed,
            "track and stress artifacts must never satisfy each other's caches"
        );
        let sampled = ExperimentConfig::track_sampled(6);
        assert_eq!(sampled.corpus.num_queries, 6);
        assert_eq!(sampled.wiki, cfg.wiki, "sampling must not shrink the world");
        assert_eq!(sampled.corpus.noise_docs, cfg.corpus.noise_docs);
    }

    #[test]
    fn stress_serde_round_trip() {
        let cfg = ExperimentConfig::stress();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
