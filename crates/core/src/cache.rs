//! World cache: build the retrieval index once, persist it, reload it.
//!
//! [`build_experiment`] is [`Experiment::build`] with an optional cache
//! directory. The synthetic wiki and corpus are always regenerated
//! (they are cheap and fully determined by the configuration); the
//! expensive part — tokenizing and indexing every document, plus
//! evaluating the phrase dictionary over every article title — is
//! persisted via [`querygraph_retrieval::ondisk`] and reloaded
//! zero-copy on subsequent runs.
//!
//! Artifacts are keyed by a configuration fingerprint
//! ([`config_fingerprint`]): the FNV-1a of the serialized wiki + corpus
//! configurations, which determine the index bytes exactly. The
//! fingerprint appears both in the artifact file name (so one cache
//! directory serves many configurations) and inside the artifact header
//! (so a renamed or stale file is rejected, not trusted). Any load
//! failure — missing file, corrupt section, version bump, fingerprint
//! mismatch — falls back to building and rewriting: a cache can lose
//! time, never correctness.
//!
//! [`BuildStats`] records build-vs-load wall-clock seconds; the bench
//! harness archives them (schema 3) so `repro_bench_diff` and the CI
//! gate track the speedup.

use crate::config::ExperimentConfig;
use crate::experiment::Experiment;
use crate::service::ServiceError;
use querygraph_corpus::imageclef::linking_text;
use querygraph_corpus::synth::{generate_corpus, SynthCorpus};
use querygraph_retrieval::backend::AnyEngine;
use querygraph_retrieval::engine::SearchEngine;
use querygraph_retrieval::index::IndexBuilder;
use querygraph_retrieval::lm::LmParams;
use querygraph_retrieval::ondisk::{self, ArtifactSource};
use querygraph_retrieval::sharded::{self, ShardedEngine, ShardedError};
use querygraph_wiki::synth::{generate, SynthWiki};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// How to build (or load) the retrieval backend of a world: physical
/// layout and artifact byte source. The default is today's behaviour —
/// one monolithic engine, artifact read into memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorldOptions {
    /// `Some(n)`: a [`ShardedEngine`] over `n` doc-partitioned shards
    /// (manifest + per-shard segments on disk; results byte-identical
    /// to the monolithic engine at any `n`, including 1). `None`: the
    /// monolithic engine and single-artifact layout.
    pub shards: Option<usize>,
    /// Memory-map artifacts instead of reading them (opt-in; falls
    /// back to reading on any error).
    pub mmap: bool,
}

impl WorldOptions {
    /// Options for an `n`-shard layout.
    pub fn sharded(n: usize) -> WorldOptions {
        WorldOptions {
            shards: Some(n.max(1)),
            mmap: false,
        }
    }

    /// The artifact byte source these options select.
    pub fn source(&self) -> ArtifactSource {
        if self.mmap {
            ArtifactSource::Mmap
        } else {
            ArtifactSource::Read
        }
    }

    /// Physical shard count (1 for the monolithic layout).
    pub fn shard_count(&self) -> usize {
        self.shards.unwrap_or(1).max(1)
    }
}

/// Where the experiment's index came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexSource {
    /// Indexed from the corpus in this process.
    Built,
    /// Loaded from an on-disk artifact.
    Loaded,
}

impl IndexSource {
    /// Lower-case name, as archived in bench records.
    pub fn name(self) -> &'static str {
        match self {
            IndexSource::Built => "built",
            IndexSource::Loaded => "loaded",
        }
    }
}

/// Wall-clock breakdown of one [`build_experiment`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildStats {
    /// Seconds to synthesize the wiki and corpus (always paid).
    pub world_seconds: f64,
    /// Seconds to tokenize + index the corpus and warm the phrase
    /// dictionary (0 when the index was loaded).
    pub index_build_seconds: f64,
    /// Seconds to serialize + write the artifact (0 unless written).
    pub index_write_seconds: f64,
    /// Seconds to read + decode the artifact (0 unless loaded).
    pub index_load_seconds: f64,
    /// Whether the index was built or loaded.
    pub index_source: IndexSource,
    /// Physical shards behind the engine (1 = monolithic).
    pub shard_count: usize,
    /// Per-shard segment read+decode seconds, in shard order (empty
    /// unless a sharded artifact was loaded; segments load in
    /// parallel, so these can sum past `index_load_seconds`).
    pub shard_load_seconds: Vec<f64>,
}

impl BuildStats {
    /// Total build-side seconds (what older records call
    /// `build_seconds`).
    pub fn total_seconds(&self) -> f64 {
        self.world_seconds
            + self.index_build_seconds
            + self.index_write_seconds
            + self.index_load_seconds
    }
}

/// FNV-1a fingerprint of the serialized wiki + corpus configurations —
/// the *configuration* inputs that determine the index bytes. Pipeline
/// knobs (pool caps, cycle limits …) deliberately do not participate:
/// they change the analysis, not the index. Generator/tokenizer *code*
/// changes are invisible to this fingerprint; [`build_experiment`]
/// additionally cross-checks a loaded index against the regenerated
/// corpus (doc count) to catch that kind of staleness.
pub fn config_fingerprint(config: &ExperimentConfig) -> u64 {
    let wiki = serde_json::to_string(&config.wiki).expect("wiki config serializes");
    let corpus = serde_json::to_string(&config.corpus).expect("corpus config serializes");
    ondisk::fnv1a(format!("{wiki}\n{corpus}").as_bytes())
}

/// The artifact path for `config` inside `dir`.
pub fn artifact_path(dir: &Path, config: &ExperimentConfig) -> PathBuf {
    dir.join(format!("index-{:016x}.qgidx", config_fingerprint(config)))
}

/// Fingerprint of a **sharded** artifact: the configuration inputs
/// *plus the shard count*. A 4-shard and an 8-shard cache of the same
/// world are different artifacts (different doc partitions, different
/// segment sets), so they must never satisfy each other's loads.
pub fn sharded_fingerprint(config: &ExperimentConfig, shards: usize) -> u64 {
    let wiki = serde_json::to_string(&config.wiki).expect("wiki config serializes");
    let corpus = serde_json::to_string(&config.corpus).expect("corpus config serializes");
    ondisk::fnv1a(format!("{wiki}\n{corpus}\nshards={shards}").as_bytes())
}

/// The file stem of a sharded artifact (`<stem>.qgman` +
/// `<stem>.shard<i>.qgidx`, see [`querygraph_retrieval::sharded`]).
pub fn sharded_stem(config: &ExperimentConfig, shards: usize) -> String {
    format!(
        "index-{:016x}-s{shards}",
        sharded_fingerprint(config, shards)
    )
}

/// The manifest path of the `shards`-way artifact for `config` in
/// `dir` — the existence probe for a sharded cache hit.
pub fn sharded_manifest_path(dir: &Path, config: &ExperimentConfig, shards: usize) -> PathBuf {
    dir.join(sharded::manifest_file(&sharded_stem(config, shards)))
}

/// Strictly load the engine for `config` from the fingerprint-keyed
/// artifact in `dir`: seeded phrase dictionary included, every failure
/// a typed [`ServiceError`] (never a panic, never a silently wrong
/// index). This is the loading half of both construction paths — the
/// serving facade ([`crate::service::ServingWorld::load`]) surfaces the
/// error; [`build_experiment`] treats it as a cache miss and rebuilds.
///
/// With `corpus_docs` set, the loaded index must cover exactly that
/// many documents — the cross-check that catches generator/tokenizer
/// *code* drift the configuration fingerprint cannot see.
pub fn load_engine(
    config: &ExperimentConfig,
    dir: &Path,
    corpus_docs: Option<usize>,
    lm: LmParams,
) -> Result<SearchEngine, ServiceError> {
    load_engine_with(config, dir, corpus_docs, lm, ArtifactSource::Read)
}

/// [`load_engine`] with an explicit artifact byte source
/// ([`ArtifactSource::Mmap`] maps the file instead of reading it).
pub fn load_engine_with(
    config: &ExperimentConfig,
    dir: &Path,
    corpus_docs: Option<usize>,
    lm: LmParams,
    source: ArtifactSource,
) -> Result<SearchEngine, ServiceError> {
    let path = artifact_path(dir, config);
    if !path.exists() {
        return Err(ServiceError::ArtifactMissing { path });
    }
    let loaded =
        ondisk::load_index_with(&path, source).map_err(|source| ServiceError::ArtifactLoad {
            path: path.clone(),
            source,
        })?;
    let fingerprint = config_fingerprint(config);
    if loaded.meta_fingerprint != fingerprint {
        return Err(ServiceError::ArtifactFingerprint {
            path,
            expected: fingerprint,
            found: loaded.meta_fingerprint,
        });
    }
    if let Some(docs) = corpus_docs {
        if loaded.index.num_docs() != docs {
            return Err(ServiceError::ArtifactStale {
                path,
                indexed_docs: loaded.index.num_docs(),
                corpus_docs: docs,
            });
        }
    }
    let engine = SearchEngine::with_params(loaded.index, lm);
    engine.seed_phrase_cache(loaded.phrases);
    Ok(engine)
}

/// Strictly load the `shards`-way engine for `config` from the
/// manifest-keyed sharded artifact in `dir`: every segment is
/// independently validated and its phrase dictionary seeded, segments
/// load in parallel, and every failure is a typed [`ServiceError`]
/// that — for segment failures — names the shard
/// ([`ServiceError::ArtifactShard`]).
///
/// Returns the engine plus per-shard load seconds (for the bench
/// records).
pub fn load_sharded_engine(
    config: &ExperimentConfig,
    dir: &Path,
    shards: usize,
    corpus_docs: Option<usize>,
    lm: LmParams,
    source: ArtifactSource,
) -> Result<(ShardedEngine, Vec<f64>), ServiceError> {
    let manifest = sharded_manifest_path(dir, config, shards);
    if !manifest.exists() {
        return Err(ServiceError::ArtifactMissing { path: manifest });
    }
    let stem = sharded_stem(config, shards);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(shards);
    let loaded = sharded::load_sharded(
        dir,
        &stem,
        sharded_fingerprint(config, shards),
        shards,
        threads,
        source,
    )
    .map_err(|e| match e {
        ShardedError::Manifest(ondisk::OndiskError::MetaMismatch { expected, found }) => {
            ServiceError::ArtifactFingerprint {
                path: manifest.clone(),
                expected,
                found,
            }
        }
        ShardedError::Manifest(source) => ServiceError::ArtifactLoad {
            path: manifest.clone(),
            source,
        },
        ShardedError::Shard { shard, source } => ServiceError::ArtifactShard {
            path: dir.join(sharded::segment_file(&stem, shard)),
            shard,
            source,
        },
    })?;
    let shard_load_seconds = loaded.shard_load_seconds.clone();
    let engine = ShardedEngine::from_loaded(loaded, lm);
    if let Some(docs) = corpus_docs {
        if engine.num_docs() != docs {
            return Err(ServiceError::ArtifactStale {
                path: manifest,
                indexed_docs: engine.num_docs(),
                corpus_docs: docs,
            });
        }
    }
    Ok((engine, shard_load_seconds))
}

/// The single world-construction path behind [`Experiment::build`],
/// [`Experiment::build_with_cache`] and
/// [`crate::service::ServingWorld::open`]: synthesize the wiki and
/// corpus, then load the backend from the cache or build (and persist)
/// it — monolithic or sharded per [`WorldOptions`]. Cache-backed and
/// in-memory construction share every line except the load attempt, so
/// they cannot drift.
pub(crate) fn build_world(
    config: &ExperimentConfig,
    cache_dir: Option<&Path>,
    lm: LmParams,
    options: &WorldOptions,
) -> (SynthWiki, SynthCorpus, AnyEngine, BuildStats) {
    let t0 = Instant::now();
    let wiki = generate(&config.wiki);
    let corpus = generate_corpus(&wiki, &config.corpus);
    let world_seconds = t0.elapsed().as_secs_f64();
    let shard_count = options.shard_count();

    if let Some(dir) = cache_dir {
        let t = Instant::now();
        // The doc-count cross-check matters here: the fingerprint
        // covers the *configurations* and cannot see generator or
        // tokenizer code changes in a new binary. Cross-checking the
        // loaded index against the corpus we just regenerated catches
        // that staleness cheaply — a generator change that alters the
        // document set shifts the doc count with overwhelming
        // likelihood, and anything subtler is caught by the
        // golden-fingerprint tests the moment results would change.
        let docs = Some(corpus.corpus.len());
        let loaded: Result<(AnyEngine, Vec<f64>), ServiceError> = match options.shards {
            None => load_engine_with(config, dir, docs, lm, options.source())
                .map(|e| (AnyEngine::Mono(e), Vec::new())),
            Some(n) => load_sharded_engine(config, dir, n, docs, lm, options.source())
                .map(|(e, secs)| (AnyEngine::Sharded(e), secs)),
        };
        match loaded {
            Ok((engine, shard_load_seconds)) => {
                let stats = BuildStats {
                    world_seconds,
                    index_build_seconds: 0.0,
                    index_write_seconds: 0.0,
                    index_load_seconds: t.elapsed().as_secs_f64(),
                    index_source: IndexSource::Loaded,
                    shard_count,
                    shard_load_seconds,
                };
                return (wiki, corpus, engine, stats);
            }
            // A missing artifact is the normal cold-cache case and
            // stays silent; every *other* failure (unreadable file,
            // corruption, old version, foreign fingerprint, stale doc
            // count) is reported — a cache that never hits should not
            // be invisible.
            Err(ServiceError::ArtifactMissing { .. }) => {}
            Err(e) => eprintln!("# index cache: {e} — rebuilding"),
        }
    }

    let t = Instant::now();
    let engine = match options.shards {
        None => {
            let mut ib = IndexBuilder::new();
            for (_, doc) in corpus.corpus.iter() {
                ib.add_document(&linking_text(doc));
            }
            let engine = SearchEngine::with_params(ib.build(), lm);
            if cache_dir.is_some() {
                // Warm the phrase dictionary with every main-article
                // title — the phrases the §2.2 hill climb evaluates —
                // so the artifact ships a complete dictionary and
                // loaded runs skip all phrase matching. The dictionary
                // is a section of the artifact, so warming counts as
                // index *build* time; uncached builds skip it and let
                // the hill climb resolve phrases lazily, exactly as
                // before (either way the Report is byte-identical —
                // the dictionary is pure memoization).
                for article in wiki.kb.main_articles() {
                    engine.warm_phrase(&querygraph_text::tokenize(wiki.kb.title(article)));
                }
            }
            AnyEngine::Mono(engine)
        }
        Some(n) => {
            // Doc-partition the corpus into contiguous shards (global
            // doc id = shard base + local id, so iteration order here
            // *is* the global order).
            let n = n.max(1);
            let num_docs = corpus.corpus.len();
            let mut builders: Vec<IndexBuilder> = (0..n).map(|_| IndexBuilder::new()).collect();
            let ranges = sharded::doc_ranges(num_docs, n);
            let mut shard_of_doc = 0usize;
            for (i, (_, doc)) in corpus.corpus.iter().enumerate() {
                while i >= ranges[shard_of_doc].end {
                    shard_of_doc += 1;
                }
                builders[shard_of_doc].add_document(&linking_text(doc));
            }
            let shards: Vec<SearchEngine> = builders
                .into_iter()
                .map(|b| SearchEngine::with_params(b.build(), lm))
                .collect();
            let engine = ShardedEngine::from_shards(shards, lm);
            if cache_dir.is_some() {
                // Same warming as the monolithic path, on every shard:
                // each segment ships its own complete local dictionary.
                for article in wiki.kb.main_articles() {
                    engine.warm_phrase(&querygraph_text::tokenize(wiki.kb.title(article)));
                }
            }
            AnyEngine::Sharded(engine)
        }
    };
    let index_build_seconds = t.elapsed().as_secs_f64();

    let mut index_write_seconds = 0.0;
    if let Some(dir) = cache_dir {
        let t = Instant::now();
        // Persistence failures (read-only cache directory, full disk,
        // a file in the way …) must not fail the run: log one warning
        // and serve from the freshly built in-memory engine — the
        // cache loses time, never correctness.
        let (label, written) = match &engine {
            AnyEngine::Mono(e) => {
                let path = artifact_path(dir, config);
                let written = std::fs::create_dir_all(dir).and_then(|()| {
                    ondisk::save_index(
                        &path,
                        e.index(),
                        &e.export_phrase_cache(),
                        config_fingerprint(config),
                    )
                });
                (path.display().to_string(), written)
            }
            AnyEngine::Sharded(e) => {
                let stem = sharded_stem(config, shard_count);
                let written = std::fs::create_dir_all(dir).and_then(|()| {
                    sharded::save_sharded(
                        dir,
                        &stem,
                        e.shards(),
                        sharded_fingerprint(config, shard_count),
                    )
                });
                (dir.join(&stem).display().to_string(), written)
            }
            // Remote fleets are connected to, never built here;
            // persistence belongs to the shard processes themselves.
            AnyEngine::Remote(_) => ("remote".to_string(), Ok(())),
            // Reloadable engines wrap a generation that was already
            // persisted by whoever published it (the segment store);
            // re-persisting here would race the live manifest.
            AnyEngine::Reloadable(_) => ("reloadable".to_string(), Ok(())),
        };
        if let Err(e) = written {
            eprintln!("# index cache write {label} failed: {e} — serving from the in-memory build");
        }
        index_write_seconds = t.elapsed().as_secs_f64();
    }

    let stats = BuildStats {
        world_seconds,
        index_build_seconds,
        index_write_seconds,
        index_load_seconds: 0.0,
        index_source: IndexSource::Built,
        shard_count,
        shard_load_seconds: Vec::new(),
    };
    (wiki, corpus, engine, stats)
}

/// [`Experiment::build`] with an optional index cache directory.
///
/// With `cache_dir` set, a valid artifact for this configuration is
/// loaded instead of re-indexing; otherwise the index is built, the
/// phrase dictionary is warmed over every main-article title, and the
/// artifact is written for the next run. Loaded and built experiments
/// produce byte-identical `Report`s (pinned by the golden-fingerprint
/// tests).
pub fn build_experiment(
    config: &ExperimentConfig,
    cache_dir: Option<&Path>,
) -> (Experiment, BuildStats) {
    build_experiment_with(config, cache_dir, &WorldOptions::default())
}

/// [`build_experiment`] with explicit [`WorldOptions`] — the sharded
/// layout and/or mmap-backed loading. The `Report` produced is
/// byte-identical at any shard count (golden-pinned and
/// property-tested).
pub fn build_experiment_with(
    config: &ExperimentConfig,
    cache_dir: Option<&Path>,
    options: &WorldOptions,
) -> (Experiment, BuildStats) {
    let (wiki, corpus, engine, stats) =
        build_world(config, cache_dir, LmParams::default(), options);
    let experiment = Experiment {
        wiki,
        corpus,
        engine,
        config: config.clone(),
    };
    (experiment, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("querygraph-cache-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp cache dir");
        dir
    }

    #[test]
    fn fingerprint_tracks_world_configs_only() {
        let a = ExperimentConfig::tiny();
        let mut b = a.clone();
        b.max_pool += 1; // pipeline knob: same world, same index
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
        let mut c = a.clone();
        c.wiki.seed ^= 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&c));
        let mut d = a.clone();
        d.corpus.noise_docs += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&d));
    }

    #[test]
    fn cold_build_writes_then_warm_run_loads() {
        let dir = temp_cache("cold-warm");
        let config = ExperimentConfig::tiny();
        let path = artifact_path(&dir, &config);
        std::fs::remove_file(&path).ok();

        let (_, cold) = build_experiment(&config, Some(&dir));
        assert_eq!(cold.index_source, IndexSource::Built);
        assert!(cold.index_build_seconds > 0.0);
        assert!(path.exists(), "cold run must persist the artifact");

        let (_, warm) = build_experiment(&config, Some(&dir));
        assert_eq!(warm.index_source, IndexSource::Loaded);
        assert_eq!(warm.index_build_seconds, 0.0);
        assert!(warm.index_load_seconds > 0.0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loaded_engine_matches_built_engine() {
        let dir = temp_cache("identical");
        let config = ExperimentConfig::tiny();
        std::fs::remove_file(artifact_path(&dir, &config)).ok();
        let (built, _) = build_experiment(&config, Some(&dir));
        let (loaded, stats) = build_experiment(&config, Some(&dir));
        assert_eq!(stats.index_source, IndexSource::Loaded);
        let a = built.engine.as_mono().expect("mono build").index();
        let b = loaded.engine.as_mono().expect("mono load").index();
        assert_eq!(a.num_docs(), b.num_docs());
        assert_eq!(a.num_terms(), b.num_terms());
        assert_eq!(a.total_tokens(), b.total_tokens());
        // The persisted phrase dictionary arrives warm and identical.
        assert_eq!(
            built.engine.as_mono().unwrap().export_phrase_cache(),
            loaded.engine.as_mono().unwrap().export_phrase_cache()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifact_falls_back_to_rebuild() {
        let dir = temp_cache("corrupt");
        let config = ExperimentConfig::tiny();
        let path = artifact_path(&dir, &config);
        std::fs::remove_file(&path).ok();
        build_experiment(&config, Some(&dir));
        // Corrupt one payload byte: the next run must detect it, rebuild,
        // and rewrite a valid artifact.
        let mut bytes = std::fs::read(&path).expect("artifact exists");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, bytes).expect("rewrite corrupt");
        let (_, stats) = build_experiment(&config, Some(&dir));
        assert_eq!(stats.index_source, IndexSource::Built);
        // …and the rewritten artifact loads again.
        let (_, again) = build_experiment(&config, Some(&dir));
        assert_eq!(again.index_source, IndexSource::Loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn valid_v1_artifact_loads_and_is_never_rebuilt() {
        let dir = temp_cache("v1-compat");
        let config = ExperimentConfig::tiny();
        let path = artifact_path(&dir, &config);
        std::fs::remove_file(&path).ok();
        let (built, _) = build_experiment(&config, Some(&dir));
        // Downgrade the cached artifact to the legacy v1 format (no
        // BOUNDS section), as a pre-upgrade deployment would have
        // written it.
        let engine = built.engine.as_mono().expect("tiny world is monolithic");
        let v1 = ondisk::encode_index_v1(
            engine.index(),
            &engine.export_phrase_cache(),
            config_fingerprint(&config),
        );
        std::fs::write(&path, &v1).expect("plant v1 artifact");

        let (warm, stats) = build_experiment(&config, Some(&dir));
        assert_eq!(
            stats.index_source,
            IndexSource::Loaded,
            "an otherwise-valid v1 artifact must load (bounds recomputed), never rebuild"
        );
        assert_eq!(
            std::fs::read(&path).expect("artifact still there"),
            v1,
            "loading must not rewrite the legacy artifact"
        );
        // The recomputed-on-load bounds uphold the pruning contract.
        let loaded = warm.engine.as_mono().expect("mono load");
        use querygraph_retrieval::engine::SearchMode;
        use querygraph_retrieval::query_lang::parse;
        let q = parse("#combine(the a of)").expect("query parses");
        assert_eq!(
            loaded.search_with(&q, 10, SearchMode::Pruned),
            loaded.search(&q, 10),
            "pruned search over recomputed v1 bounds must match exact"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_artifact_with_matching_fingerprint_rebuilds() {
        // The fingerprint can't see generator-code changes; simulate
        // one by saving an index of the wrong world under the right
        // fingerprint and path. The doc-count cross-check must refuse
        // it.
        let dir = temp_cache("stale");
        let config = ExperimentConfig::tiny();
        let mut other = config.clone();
        other.corpus.noise_docs += 5; // different doc count
        let (wrong_world, _) = build_experiment(&other, None);
        ondisk::save_index(
            &artifact_path(&dir, &config),
            wrong_world.engine.as_mono().expect("mono").index(),
            &[],
            config_fingerprint(&config),
        )
        .expect("plant stale artifact");
        let (experiment, stats) = build_experiment(&config, Some(&dir));
        assert_eq!(
            stats.index_source,
            IndexSource::Built,
            "stale artifact must be rejected by the doc-count guard"
        );
        assert_eq!(experiment.engine.num_docs(), experiment.corpus.corpus.len());
        // …and the rewritten artifact loads next time.
        let (_, again) = build_experiment(&config, Some(&dir));
        assert_eq!(again.index_source, IndexSource::Loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_in_renamed_artifact_rebuilds() {
        let dir = temp_cache("renamed");
        let config = ExperimentConfig::tiny();
        let mut other = config.clone();
        other.wiki.seed ^= 0xFF;
        std::fs::remove_file(artifact_path(&dir, &config)).ok();
        build_experiment(&config, Some(&dir));
        // Pose the tiny artifact as the other config's cache entry.
        std::fs::rename(artifact_path(&dir, &config), artifact_path(&dir, &other)).expect("rename");
        let (_, stats) = build_experiment(&other, Some(&dir));
        assert_eq!(
            stats.index_source,
            IndexSource::Built,
            "embedded fingerprint must veto a renamed artifact"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_cold_build_writes_then_warm_run_loads() {
        let dir = temp_cache("sharded-cold-warm");
        let config = ExperimentConfig::tiny();
        let options = WorldOptions::sharded(3);
        std::fs::remove_file(sharded_manifest_path(&dir, &config, 3)).ok();

        let (cold_exp, cold) = build_experiment_with(&config, Some(&dir), &options);
        assert_eq!(cold.index_source, IndexSource::Built);
        assert_eq!(cold.shard_count, 3);
        assert!(cold_exp.engine.as_sharded().is_some());
        assert!(
            sharded_manifest_path(&dir, &config, 3).exists(),
            "cold run must persist the manifest"
        );

        let (warm_exp, warm) = build_experiment_with(&config, Some(&dir), &options);
        assert_eq!(warm.index_source, IndexSource::Loaded);
        assert_eq!(warm.shard_count, 3);
        assert_eq!(warm.shard_load_seconds.len(), 3);
        assert_eq!(warm_exp.engine.num_docs(), cold_exp.engine.num_docs());

        // A different shard count is a different artifact: cold again.
        let (_, other) = build_experiment_with(&config, Some(&dir), &WorldOptions::sharded(2));
        assert_eq!(
            other.index_source,
            IndexSource::Built,
            "shard count keys the fingerprint"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unwritable_cache_dir_serves_built_engine() {
        // A cache path that cannot be a directory (it's a file): the
        // write fails, the run must log one warning and serve from the
        // freshly built in-memory engine — monolithic and sharded
        // alike. (A 0o555 directory doesn't cut it as a fixture: the
        // test user may be root, for whom read-only modes are
        // advisory.)
        let blocker =
            std::env::temp_dir().join(format!("querygraph-cache-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").expect("blocker file");
        let config = ExperimentConfig::tiny();
        for options in [WorldOptions::default(), WorldOptions::sharded(2)] {
            let (experiment, stats) = build_experiment_with(&config, Some(&blocker), &options);
            assert_eq!(stats.index_source, IndexSource::Built);
            assert_eq!(
                experiment.engine.num_docs(),
                experiment.corpus.corpus.len(),
                "in-memory engine must serve despite the failed write"
            );
            assert_eq!(experiment.engine.shard_count(), options.shard_count());
        }
        std::fs::remove_file(&blocker).ok();
    }

    #[test]
    fn build_stats_total_covers_all_parts() {
        let stats = BuildStats {
            world_seconds: 1.0,
            index_build_seconds: 2.0,
            index_write_seconds: 0.25,
            index_load_seconds: 0.5,
            index_source: IndexSource::Built,
            shard_count: 1,
            shard_load_seconds: Vec::new(),
        };
        assert!((stats.total_seconds() - 3.75).abs() < 1e-12);
        assert_eq!(IndexSource::Built.name(), "built");
        assert_eq!(IndexSource::Loaded.name(), "loaded");
    }
}
