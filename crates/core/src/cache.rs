//! World cache: build the retrieval index once, persist it, reload it.
//!
//! [`build_experiment`] is [`Experiment::build`] with an optional cache
//! directory. The synthetic wiki and corpus are always regenerated
//! (they are cheap and fully determined by the configuration); the
//! expensive part — tokenizing and indexing every document, plus
//! evaluating the phrase dictionary over every article title — is
//! persisted via [`querygraph_retrieval::ondisk`] and reloaded
//! zero-copy on subsequent runs.
//!
//! Artifacts are keyed by a configuration fingerprint
//! ([`config_fingerprint`]): the FNV-1a of the serialized wiki + corpus
//! configurations, which determine the index bytes exactly. The
//! fingerprint appears both in the artifact file name (so one cache
//! directory serves many configurations) and inside the artifact header
//! (so a renamed or stale file is rejected, not trusted). Any load
//! failure — missing file, corrupt section, version bump, fingerprint
//! mismatch — falls back to building and rewriting: a cache can lose
//! time, never correctness.
//!
//! [`BuildStats`] records build-vs-load wall-clock seconds; the bench
//! harness archives them (schema 3) so `repro_bench_diff` and the CI
//! gate track the speedup.

use crate::config::ExperimentConfig;
use crate::experiment::Experiment;
use crate::service::ServiceError;
use querygraph_corpus::imageclef::linking_text;
use querygraph_corpus::synth::{generate_corpus, SynthCorpus};
use querygraph_retrieval::engine::SearchEngine;
use querygraph_retrieval::index::IndexBuilder;
use querygraph_retrieval::lm::LmParams;
use querygraph_retrieval::ondisk;
use querygraph_wiki::synth::{generate, SynthWiki};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Where the experiment's index came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexSource {
    /// Indexed from the corpus in this process.
    Built,
    /// Loaded from an on-disk artifact.
    Loaded,
}

impl IndexSource {
    /// Lower-case name, as archived in bench records.
    pub fn name(self) -> &'static str {
        match self {
            IndexSource::Built => "built",
            IndexSource::Loaded => "loaded",
        }
    }
}

/// Wall-clock breakdown of one [`build_experiment`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildStats {
    /// Seconds to synthesize the wiki and corpus (always paid).
    pub world_seconds: f64,
    /// Seconds to tokenize + index the corpus and warm the phrase
    /// dictionary (0 when the index was loaded).
    pub index_build_seconds: f64,
    /// Seconds to serialize + write the artifact (0 unless written).
    pub index_write_seconds: f64,
    /// Seconds to read + decode the artifact (0 unless loaded).
    pub index_load_seconds: f64,
    /// Whether the index was built or loaded.
    pub index_source: IndexSource,
}

impl BuildStats {
    /// Total build-side seconds (what older records call
    /// `build_seconds`).
    pub fn total_seconds(&self) -> f64 {
        self.world_seconds
            + self.index_build_seconds
            + self.index_write_seconds
            + self.index_load_seconds
    }
}

/// FNV-1a fingerprint of the serialized wiki + corpus configurations —
/// the *configuration* inputs that determine the index bytes. Pipeline
/// knobs (pool caps, cycle limits …) deliberately do not participate:
/// they change the analysis, not the index. Generator/tokenizer *code*
/// changes are invisible to this fingerprint; [`build_experiment`]
/// additionally cross-checks a loaded index against the regenerated
/// corpus (doc count) to catch that kind of staleness.
pub fn config_fingerprint(config: &ExperimentConfig) -> u64 {
    let wiki = serde_json::to_string(&config.wiki).expect("wiki config serializes");
    let corpus = serde_json::to_string(&config.corpus).expect("corpus config serializes");
    ondisk::fnv1a(format!("{wiki}\n{corpus}").as_bytes())
}

/// The artifact path for `config` inside `dir`.
pub fn artifact_path(dir: &Path, config: &ExperimentConfig) -> PathBuf {
    dir.join(format!("index-{:016x}.qgidx", config_fingerprint(config)))
}

/// Strictly load the engine for `config` from the fingerprint-keyed
/// artifact in `dir`: seeded phrase dictionary included, every failure
/// a typed [`ServiceError`] (never a panic, never a silently wrong
/// index). This is the loading half of both construction paths — the
/// serving facade ([`crate::service::ServingWorld::load`]) surfaces the
/// error; [`build_experiment`] treats it as a cache miss and rebuilds.
///
/// With `corpus_docs` set, the loaded index must cover exactly that
/// many documents — the cross-check that catches generator/tokenizer
/// *code* drift the configuration fingerprint cannot see.
pub fn load_engine(
    config: &ExperimentConfig,
    dir: &Path,
    corpus_docs: Option<usize>,
    lm: LmParams,
) -> Result<SearchEngine, ServiceError> {
    let path = artifact_path(dir, config);
    if !path.exists() {
        return Err(ServiceError::ArtifactMissing { path });
    }
    let loaded = ondisk::load_index(&path).map_err(|source| ServiceError::ArtifactLoad {
        path: path.clone(),
        source,
    })?;
    let fingerprint = config_fingerprint(config);
    if loaded.meta_fingerprint != fingerprint {
        return Err(ServiceError::ArtifactFingerprint {
            path,
            expected: fingerprint,
            found: loaded.meta_fingerprint,
        });
    }
    if let Some(docs) = corpus_docs {
        if loaded.index.num_docs() != docs {
            return Err(ServiceError::ArtifactStale {
                path,
                indexed_docs: loaded.index.num_docs(),
                corpus_docs: docs,
            });
        }
    }
    let engine = SearchEngine::with_params(loaded.index, lm);
    engine.seed_phrase_cache(loaded.phrases);
    Ok(engine)
}

/// The single world-construction path behind [`Experiment::build`],
/// [`Experiment::build_with_cache`] and
/// [`crate::service::ServingWorld::open`]: synthesize the wiki and
/// corpus, then load the index from the cache or build (and persist)
/// it. Cache-backed and in-memory construction share every line except
/// the load attempt, so they cannot drift.
pub(crate) fn build_world(
    config: &ExperimentConfig,
    cache_dir: Option<&Path>,
    lm: LmParams,
) -> (SynthWiki, SynthCorpus, SearchEngine, BuildStats) {
    let t0 = Instant::now();
    let wiki = generate(&config.wiki);
    let corpus = generate_corpus(&wiki, &config.corpus);
    let world_seconds = t0.elapsed().as_secs_f64();

    if let Some(dir) = cache_dir {
        let t = Instant::now();
        // The doc-count cross-check matters here: the fingerprint
        // covers the *configurations* and cannot see generator or
        // tokenizer code changes in a new binary. Cross-checking the
        // loaded index against the corpus we just regenerated catches
        // that staleness cheaply — a generator change that alters the
        // document set shifts the doc count with overwhelming
        // likelihood, and anything subtler is caught by the
        // golden-fingerprint tests the moment results would change.
        match load_engine(config, dir, Some(corpus.corpus.len()), lm) {
            Ok(engine) => {
                let stats = BuildStats {
                    world_seconds,
                    index_build_seconds: 0.0,
                    index_write_seconds: 0.0,
                    index_load_seconds: t.elapsed().as_secs_f64(),
                    index_source: IndexSource::Loaded,
                };
                return (wiki, corpus, engine, stats);
            }
            // A missing artifact is the normal cold-cache case and
            // stays silent; every *other* failure (unreadable file,
            // corruption, old version, foreign fingerprint, stale doc
            // count) is reported — a cache that never hits should not
            // be invisible.
            Err(ServiceError::ArtifactMissing { .. }) => {}
            Err(e) => eprintln!("# index cache: {e} — rebuilding"),
        }
    }

    let t = Instant::now();
    let mut ib = IndexBuilder::new();
    for (_, doc) in corpus.corpus.iter() {
        ib.add_document(&linking_text(doc));
    }
    let engine = SearchEngine::with_params(ib.build(), lm);
    if cache_dir.is_some() {
        // Warm the phrase dictionary with every main-article title —
        // the phrases the §2.2 hill climb evaluates — so the artifact
        // ships a complete dictionary and loaded runs skip all phrase
        // matching. The dictionary is a section of the artifact, so
        // warming counts as index *build* time; uncached builds skip
        // it and let the hill climb resolve phrases lazily, exactly as
        // before (either way the Report is byte-identical — the
        // dictionary is pure memoization).
        for article in wiki.kb.main_articles() {
            engine.warm_phrase(&querygraph_text::tokenize(wiki.kb.title(article)));
        }
    }
    let index_build_seconds = t.elapsed().as_secs_f64();

    let mut index_write_seconds = 0.0;
    if let Some(dir) = cache_dir {
        let t = Instant::now();
        let path = artifact_path(dir, config);
        let written = std::fs::create_dir_all(dir).and_then(|()| {
            ondisk::save_index(
                &path,
                engine.index(),
                &engine.export_phrase_cache(),
                config_fingerprint(config),
            )
        });
        if let Err(e) = written {
            // Failure to persist must not fail the run.
            eprintln!("# index cache write {} failed: {e}", path.display());
        }
        index_write_seconds = t.elapsed().as_secs_f64();
    }

    let stats = BuildStats {
        world_seconds,
        index_build_seconds,
        index_write_seconds,
        index_load_seconds: 0.0,
        index_source: IndexSource::Built,
    };
    (wiki, corpus, engine, stats)
}

/// [`Experiment::build`] with an optional index cache directory.
///
/// With `cache_dir` set, a valid artifact for this configuration is
/// loaded instead of re-indexing; otherwise the index is built, the
/// phrase dictionary is warmed over every main-article title, and the
/// artifact is written for the next run. Loaded and built experiments
/// produce byte-identical `Report`s (pinned by the golden-fingerprint
/// tests).
pub fn build_experiment(
    config: &ExperimentConfig,
    cache_dir: Option<&Path>,
) -> (Experiment, BuildStats) {
    let (wiki, corpus, engine, stats) = build_world(config, cache_dir, LmParams::default());
    let experiment = Experiment {
        wiki,
        corpus,
        engine,
        config: config.clone(),
    };
    (experiment, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("querygraph-cache-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp cache dir");
        dir
    }

    #[test]
    fn fingerprint_tracks_world_configs_only() {
        let a = ExperimentConfig::tiny();
        let mut b = a.clone();
        b.max_pool += 1; // pipeline knob: same world, same index
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
        let mut c = a.clone();
        c.wiki.seed ^= 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&c));
        let mut d = a.clone();
        d.corpus.noise_docs += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&d));
    }

    #[test]
    fn cold_build_writes_then_warm_run_loads() {
        let dir = temp_cache("cold-warm");
        let config = ExperimentConfig::tiny();
        let path = artifact_path(&dir, &config);
        std::fs::remove_file(&path).ok();

        let (_, cold) = build_experiment(&config, Some(&dir));
        assert_eq!(cold.index_source, IndexSource::Built);
        assert!(cold.index_build_seconds > 0.0);
        assert!(path.exists(), "cold run must persist the artifact");

        let (_, warm) = build_experiment(&config, Some(&dir));
        assert_eq!(warm.index_source, IndexSource::Loaded);
        assert_eq!(warm.index_build_seconds, 0.0);
        assert!(warm.index_load_seconds > 0.0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loaded_engine_matches_built_engine() {
        let dir = temp_cache("identical");
        let config = ExperimentConfig::tiny();
        std::fs::remove_file(artifact_path(&dir, &config)).ok();
        let (built, _) = build_experiment(&config, Some(&dir));
        let (loaded, stats) = build_experiment(&config, Some(&dir));
        assert_eq!(stats.index_source, IndexSource::Loaded);
        let a = built.engine.index();
        let b = loaded.engine.index();
        assert_eq!(a.num_docs(), b.num_docs());
        assert_eq!(a.num_terms(), b.num_terms());
        assert_eq!(a.total_tokens(), b.total_tokens());
        // The persisted phrase dictionary arrives warm and identical.
        assert_eq!(
            built.engine.export_phrase_cache(),
            loaded.engine.export_phrase_cache()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifact_falls_back_to_rebuild() {
        let dir = temp_cache("corrupt");
        let config = ExperimentConfig::tiny();
        let path = artifact_path(&dir, &config);
        std::fs::remove_file(&path).ok();
        build_experiment(&config, Some(&dir));
        // Corrupt one payload byte: the next run must detect it, rebuild,
        // and rewrite a valid artifact.
        let mut bytes = std::fs::read(&path).expect("artifact exists");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, bytes).expect("rewrite corrupt");
        let (_, stats) = build_experiment(&config, Some(&dir));
        assert_eq!(stats.index_source, IndexSource::Built);
        // …and the rewritten artifact loads again.
        let (_, again) = build_experiment(&config, Some(&dir));
        assert_eq!(again.index_source, IndexSource::Loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_artifact_with_matching_fingerprint_rebuilds() {
        // The fingerprint can't see generator-code changes; simulate
        // one by saving an index of the wrong world under the right
        // fingerprint and path. The doc-count cross-check must refuse
        // it.
        let dir = temp_cache("stale");
        let config = ExperimentConfig::tiny();
        let mut other = config.clone();
        other.corpus.noise_docs += 5; // different doc count
        let (wrong_world, _) = build_experiment(&other, None);
        ondisk::save_index(
            &artifact_path(&dir, &config),
            wrong_world.engine.index(),
            &[],
            config_fingerprint(&config),
        )
        .expect("plant stale artifact");
        let (experiment, stats) = build_experiment(&config, Some(&dir));
        assert_eq!(
            stats.index_source,
            IndexSource::Built,
            "stale artifact must be rejected by the doc-count guard"
        );
        assert_eq!(
            experiment.engine.index().num_docs(),
            experiment.corpus.corpus.len()
        );
        // …and the rewritten artifact loads next time.
        let (_, again) = build_experiment(&config, Some(&dir));
        assert_eq!(again.index_source, IndexSource::Loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_in_renamed_artifact_rebuilds() {
        let dir = temp_cache("renamed");
        let config = ExperimentConfig::tiny();
        let mut other = config.clone();
        other.wiki.seed ^= 0xFF;
        std::fs::remove_file(artifact_path(&dir, &config)).ok();
        build_experiment(&config, Some(&dir));
        // Pose the tiny artifact as the other config's cache entry.
        std::fs::rename(artifact_path(&dir, &config), artifact_path(&dir, &other)).expect("rename");
        let (_, stats) = build_experiment(&other, Some(&dir));
        assert_eq!(
            stats.index_source,
            IndexSource::Built,
            "embedded fingerprint must veto a renamed artifact"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_stats_total_covers_all_parts() {
        let stats = BuildStats {
            world_seconds: 1.0,
            index_build_seconds: 2.0,
            index_write_seconds: 0.25,
            index_load_seconds: 0.5,
            index_source: IndexSource::Built,
        };
        assert!((stats.total_seconds() - 3.75).abs() < 1e-12);
        assert_eq!(IndexSource::Built.name(), "built");
        assert_eq!(IndexSource::Loaded.name(), "loaded");
    }
}
