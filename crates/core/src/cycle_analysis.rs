//! Cycle metrics — the measurements behind §3 of the paper.
//!
//! For every cycle C of a query graph that passes through at least one
//! query article, this module computes:
//!
//! * **length** |C| (2..=5);
//! * **category count** and **category ratio** (Fig. 7a; only cycles of
//!   length ≥ 3 can contain categories, a direct consequence of the
//!   schema);
//! * **E(C)** — edges of the induced subgraph under the paper's counting
//!   convention (directed links individually, belongs/inside once per
//!   pair);
//! * **M(C)** — the maximum possible edges,
//!   `A(A−1) + A·C + C(C−1)/2`;
//! * **density of extra edges** — `(E − |C|) / (M − |C|)` (Fig. 7b),
//!   undefined when `M = |C|` (always the case for length 2);
//! * **contribution** — the retrieval-quality delta (Figs. 5 and 9),
//!   filled in by [`fill_contributions`] because it needs a search
//!   engine.

use crate::contribution::contribution;
use crate::ground_truth::QualityEvaluator;
use crate::query_graph::QueryGraph;
use querygraph_graph::cycles::{induced_cycle_edges, CycleFinder};
use querygraph_retrieval::stats::{pearson, spearman};
use querygraph_wiki::{ArticleId, KnowledgeBase};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// All measurements for one cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Local node ids within the query graph, in cycle order.
    pub local_nodes: Vec<u32>,
    /// |C|.
    pub len: usize,
    /// Number of category nodes in the cycle.
    pub categories: usize,
    /// categories / |C|.
    pub category_ratio: f64,
    /// E(C).
    pub edge_count: usize,
    /// M(C).
    pub max_edges: usize,
    /// `(E − |C|) / (M − |C|)`, `None` when `M = |C|`.
    pub extra_edge_density: Option<f64>,
    /// The cycle's article entities (knowledge-base ids).
    pub articles: Vec<ArticleId>,
    /// Retrieval contribution in percent; `None` until
    /// [`fill_contributions`] runs.
    pub contribution: Option<f64>,
}

/// The paper's M(C): maximum edges of a node set with `a` articles and
/// `c` categories — `a(a−1)` directed article links, `a·c` belongs
/// pairs, `c(c−1)/2` category pairs.
pub fn max_edges(a: usize, c: usize) -> usize {
    a * a.saturating_sub(1) + a * c + c * c.saturating_sub(1) / 2
}

/// Enumerate the cycles of `qg` (lengths 2..=`max_len`) through its
/// query articles and measure each. `limit` bounds the number of cycles
/// (the paper's §4 performance challenge is real: cycle counts grow
/// exponentially with length).
pub fn enumerate_cycles(
    qg: &QueryGraph,
    kb: &KnowledgeBase,
    max_len: usize,
    limit: usize,
) -> Vec<CycleRecord> {
    if qg.query_nodes.is_empty() {
        return Vec::new();
    }
    let finder = CycleFinder::new(&qg.sub.graph)
        .max_len(max_len)
        .require_any_of(&qg.query_nodes)
        .limit(limit);
    let mut records = Vec::new();
    finder.for_each(|nodes| {
        let len = nodes.len();
        let categories = qg.count_categories(nodes);
        let articles: Vec<ArticleId> = nodes
            .iter()
            .filter_map(|&l| qg.local_article(kb, l))
            .collect();
        let edge_count = induced_cycle_edges(&qg.sub.graph, nodes);
        let m = max_edges(articles.len(), categories);
        let density = if m > len {
            Some(((edge_count - len) as f64 / (m - len) as f64).clamp(0.0, 1.0))
        } else {
            None
        };
        records.push(CycleRecord {
            local_nodes: nodes.to_vec(),
            len,
            categories,
            category_ratio: categories as f64 / len as f64,
            edge_count,
            max_edges: m,
            extra_edge_density: density,
            articles,
            contribution: None,
        });
    });
    records
}

/// Fill each record's contribution: O(L(q.k) ∪ C_articles) vs the
/// baseline O(L(q.k)). Cycle article sets repeat heavily across cycles,
/// so evaluations are memoized per distinct article set.
pub fn fill_contributions(
    records: &mut [CycleRecord],
    evaluator: &QualityEvaluator<'_>,
    query_articles: &[ArticleId],
    baseline_quality: f64,
) {
    let mut memo: HashMap<Vec<ArticleId>, f64> = HashMap::new();
    for rec in records.iter_mut() {
        let mut key: Vec<ArticleId> = rec.articles.clone();
        key.sort_unstable();
        key.dedup();
        let c = *memo
            .entry(key)
            .or_insert_with_key(|k| contribution(evaluator, query_articles, baseline_quality, k));
        rec.contribution = Some(c);
    }
}

/// §4 future work: "how the frequency of a given article in the cycles
/// and the goodness of its title as expansion feature are correlated".
/// Returns `(pearson, spearman)` between an article's cycle frequency
/// and its single-feature contribution, over the non-query articles
/// appearing in the records. `None` when fewer than two such articles
/// exist or a correlation is undefined.
pub fn article_frequency_correlation(
    records: &[CycleRecord],
    evaluator: &QualityEvaluator<'_>,
    query_articles: &[ArticleId],
    baseline_quality: f64,
) -> Option<(f64, f64)> {
    let mut freq: HashMap<ArticleId, usize> = HashMap::new();
    for rec in records {
        for &a in &rec.articles {
            if !query_articles.contains(&a) {
                *freq.entry(a).or_insert(0) += 1;
            }
        }
    }
    if freq.len() < 2 {
        return None;
    }
    let mut items: Vec<(ArticleId, usize)> = freq.into_iter().collect();
    items.sort_unstable_by_key(|&(a, _)| a); // deterministic order
    let xs: Vec<f64> = items.iter().map(|&(_, f)| f as f64).collect();
    let ys: Vec<f64> = items
        .iter()
        .map(|&(a, _)| contribution(evaluator, query_articles, baseline_quality, &[a]))
        .collect();
    Some((pearson(&xs, &ys)?, spearman(&xs, &ys)?))
}

/// Group mean of a per-cycle metric by cycle length: `out[len] = mean`.
/// Lengths without cycles yield `None`.
pub fn mean_by_length<F>(records: &[CycleRecord], max_len: usize, metric: F) -> Vec<Option<f64>>
where
    F: Fn(&CycleRecord) -> Option<f64>,
{
    let mut sums = vec![0.0; max_len + 1];
    let mut counts = vec![0usize; max_len + 1];
    for rec in records {
        if let Some(v) = metric(rec) {
            if rec.len <= max_len {
                sums[rec.len] += v;
                counts[rec.len] += 1;
            }
        }
    }
    (0..=max_len)
        .map(|l| {
            if counts[l] > 0 {
                Some(sums[l] / counts[l] as f64)
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::assemble;
    use querygraph_wiki::fixture::venice_mini_wiki;

    fn venice_records() -> (KnowledgeBase, Vec<CycleRecord>) {
        let kb = venice_mini_wiki();
        let q: Vec<ArticleId> = ["Gondola", "Venice"]
            .iter()
            .map(|t| kb.article_by_title(t).unwrap())
            .collect();
        let exp: Vec<ArticleId> = [
            "Grand Canal (Venice)",
            "Palazzo Bembo",
            "Bridge of Sighs",
            "Cannaregio",
            "Gondolier",
        ]
        .iter()
        .map(|t| kb.article_by_title(t).unwrap())
        .collect();
        let qg = assemble(&kb, &q, &exp);
        let records = enumerate_cycles(&qg, &kb, 5, usize::MAX);
        (kb, records)
    }

    #[test]
    fn m_formula_matches_paper_example() {
        // 2 articles + 2 categories: 2·1 + 2·2 + 1 = 7.
        assert_eq!(max_edges(2, 2), 7);
        assert_eq!(max_edges(3, 0), 6);
        assert_eq!(max_edges(2, 0), 2);
        assert_eq!(max_edges(0, 3), 3);
        assert_eq!(max_edges(1, 1), 1);
    }

    #[test]
    fn finds_the_fixture_cycles() {
        let (_, records) = venice_records();
        assert!(!records.is_empty());
        let by_len = |l: usize| records.iter().filter(|r| r.len == l).count();
        assert!(by_len(2) >= 1, "venice–cannaregio 2-cycle");
        assert!(by_len(3) >= 1, "venice–grand canal–palazzo bembo");
        assert!(by_len(4) >= 1, "Fig. 4c 4-cycle");
    }

    #[test]
    fn two_cycles_have_no_categories() {
        let (_, records) = venice_records();
        for r in records.iter().filter(|r| r.len == 2) {
            assert_eq!(r.categories, 0, "schema: only len ≥ 3 can have categories");
            assert!(r.extra_edge_density.is_none(), "M = |C| for 2-cycles");
        }
    }

    #[test]
    fn category_ratio_is_consistent() {
        let (_, records) = venice_records();
        for r in &records {
            assert!((r.category_ratio - r.categories as f64 / r.len as f64).abs() < 1e-12);
            assert_eq!(r.articles.len() + r.categories, r.len);
        }
    }

    #[test]
    fn density_bounds() {
        let (_, records) = venice_records();
        for r in &records {
            assert!(r.edge_count >= r.len, "E(C) ≥ |C| for {r:?}");
            assert!(r.edge_count <= r.max_edges.max(r.edge_count));
            if let Some(d) = r.extra_edge_density {
                assert!((0.0..=1.0).contains(&d));
            }
        }
    }

    #[test]
    fn all_cycles_touch_a_query_article() {
        let (kb, records) = venice_records();
        let q: Vec<ArticleId> = ["Gondola", "Venice"]
            .iter()
            .map(|t| kb.article_by_title(t).unwrap())
            .collect();
        for r in &records {
            assert!(
                r.articles.iter().any(|a| q.contains(a)),
                "cycle without query article: {r:?}"
            );
        }
    }

    #[test]
    fn mean_by_length_groups() {
        let (_, records) = venice_records();
        let means = mean_by_length(&records, 5, |r| Some(r.category_ratio));
        assert!(means[0].is_none() && means[1].is_none());
        if let Some(m2) = means[2] {
            assert_eq!(m2, 0.0, "2-cycles never contain categories");
        }
        for m in means.iter().flatten() {
            assert!((0.0..=1.0).contains(m));
        }
    }

    #[test]
    fn empty_query_nodes_yield_no_cycles() {
        let kb = venice_mini_wiki();
        let qg = assemble(&kb, &[], &[]);
        assert!(enumerate_cycles(&qg, &kb, 5, usize::MAX).is_empty());
    }

    #[test]
    fn limit_is_respected() {
        let kb = venice_mini_wiki();
        let q: Vec<ArticleId> = ["Gondola", "Venice"]
            .iter()
            .map(|t| kb.article_by_title(t).unwrap())
            .collect();
        let exp: Vec<ArticleId> = ["Grand Canal (Venice)", "Cannaregio"]
            .iter()
            .map(|t| kb.article_by_title(t).unwrap())
            .collect();
        let qg = assemble(&kb, &q, &exp);
        let records = enumerate_cycles(&qg, &kb, 5, 2);
        assert!(records.len() <= 2);
    }

    #[test]
    fn trap_cycle_is_category_free() {
        let kb = venice_mini_wiki();
        let sheep = kb.article_by_title("Sheep").unwrap();
        let exp: Vec<ArticleId> = ["Quarantine", "Anthrax"]
            .iter()
            .map(|t| kb.article_by_title(t).unwrap())
            .collect();
        let qg = assemble(&kb, &[sheep], &exp);
        let records = enumerate_cycles(&qg, &kb, 5, usize::MAX);
        let trap = records.iter().find(|r| r.len == 3).expect("trap triangle");
        assert_eq!(trap.categories, 0);
        assert_eq!(trap.category_ratio, 0.0);
    }
}
