//! Ground-truth construction — the hill-climbing search of §2.2.
//!
//! Exhaustively evaluating every subset of L(q.D) is infeasible (the
//! paper notes the `Σ (|L(q.D)| choose i)` blow-up), so the paper uses a
//! local search: start from one random article, then repeatedly apply
//! the best of
//!
//! * **ADD** an article of L(q.D) to A′,
//! * **REMOVE** an article from A′,
//! * **SWAP** an article of A′ for one of L(q.D),
//!
//! "as long as they improve Equation 1 … Note that if after removing an
//! article the quality remains the same, the article is removed as we
//! want the minimum set of articles with the maximum quality."
//!
//! The implementation is faithful with one formal tightening: the loop
//! strictly increases the pair `(quality, −|A′|)` lexicographically, so
//! termination is guaranteed; a `max_iterations` cap guards degenerate
//! configurations anyway.

use querygraph_retrieval::engine::SearchEngine;
use querygraph_retrieval::metrics::{average_quality, precisions};
use querygraph_retrieval::query_lang::QueryNode;
use querygraph_wiki::{ArticleId, KnowledgeBase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tuning of the ground-truth search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthConfig {
    /// Base RNG seed; combined with the query id for the random start.
    pub seed: u64,
    /// Hard cap on hill-climbing iterations.
    pub max_iterations: usize,
    /// Retrieval depth (the largest cutoff of Eq. 1).
    pub search_depth: usize,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        GroundTruthConfig {
            seed: 0x5EED_CAFE,
            max_iterations: 60,
            search_depth: 15,
        }
    }
}

/// Result of the ground-truth search for one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The expansion articles A′ (sorted by id).
    pub expansion: Vec<ArticleId>,
    /// O(L(q.k) ∪ A′, q.D) — the achieved quality.
    pub quality: f64,
    /// O(L(q.k), q.D) — the unexpanded baseline.
    pub baseline_quality: f64,
    /// Top-{1,5,10,15} precision of the final X(q) (Table 2 rows).
    pub precisions: [f64; 4],
    /// Number of retrieval evaluations performed (observability).
    pub evaluations: usize,
}

/// Reusable evaluator: turns an article set into the paper's INDRI query
/// and measures O against the relevant set.
pub struct QualityEvaluator<'a> {
    kb: &'a KnowledgeBase,
    engine: &'a SearchEngine,
    relevant: Vec<u32>,
    search_depth: usize,
}

impl<'a> QualityEvaluator<'a> {
    /// Evaluator for one query's relevant set (doc ids in any order).
    pub fn new(
        kb: &'a KnowledgeBase,
        engine: &'a SearchEngine,
        relevant: &[u32],
        search_depth: usize,
    ) -> Self {
        let mut relevant = relevant.to_vec();
        relevant.sort_unstable();
        relevant.dedup();
        QualityEvaluator {
            kb,
            engine,
            relevant,
            search_depth,
        }
    }

    /// O(articles, D) of Eq. 1.
    pub fn quality(&self, articles: &[ArticleId]) -> f64 {
        average_quality(&self.search(articles), &self.relevant)
    }

    /// Per-cutoff precisions of the article set.
    pub fn precisions(&self, articles: &[ArticleId]) -> [f64; 4] {
        precisions(&self.search(articles), &self.relevant)
    }

    fn search(&self, articles: &[ArticleId]) -> Vec<querygraph_retrieval::SearchHit> {
        if articles.is_empty() {
            return Vec::new();
        }
        let titles: Vec<&str> = articles.iter().map(|&a| self.kb.title(a)).collect();
        let query = QueryNode::phrases_of_titles(&titles);
        self.engine.search(&query, self.search_depth)
    }
}

/// Run the §2.2 hill climb.
///
/// * `query_articles` — L(q.k), always part of the evaluated set.
/// * `pool` — L(q.D), the candidate expansion articles.
///
/// Returns the best A′ found. With an empty pool the result is the
/// baseline itself (empty expansion).
pub fn find_ground_truth(
    evaluator: &QualityEvaluator<'_>,
    config: &GroundTruthConfig,
    query_id: u32,
    query_articles: &[ArticleId],
    pool: &[ArticleId],
) -> GroundTruth {
    let mut evaluations = 0usize;
    let mut eval = |a_prime: &[ArticleId]| -> f64 {
        evaluations += 1;
        let mut set: Vec<ArticleId> = query_articles.to_vec();
        for &a in a_prime {
            if !set.contains(&a) {
                set.push(a);
            }
        }
        evaluator.quality(&set)
    };

    let baseline_quality = eval(&[]);

    // Candidate pool without the query articles themselves (adding them
    // is a no-op for the evaluated set).
    let pool: Vec<ArticleId> = pool
        .iter()
        .copied()
        .filter(|a| !query_articles.contains(a))
        .collect();

    let mut a_prime: Vec<ArticleId> = Vec::new();
    let mut quality = baseline_quality;

    if !pool.is_empty() {
        // Random start, seeded per query.
        let mut rng = StdRng::seed_from_u64(config.seed ^ (query_id as u64).wrapping_mul(0x9E37));
        a_prime.push(pool[rng.gen_range(0..pool.len())]);
        quality = eval(&a_prime);
        // A start below baseline is still kept — the climb can recover
        // via REMOVE (quality ties favour smaller sets anyway).

        const EPS: f64 = 1e-12;
        for _ in 0..config.max_iterations {
            // Pass 1 — REMOVE whenever quality does not degrade
            // (strictly shrinks the set on ties: minimality rule).
            let mut removed = false;
            let mut best_remove: Option<(usize, f64)> = None;
            for i in 0..a_prime.len() {
                let mut candidate = a_prime.clone();
                candidate.remove(i);
                let q = eval(&candidate);
                if q + EPS >= quality && best_remove.is_none_or(|(_, bq)| q > bq) {
                    best_remove = Some((i, q));
                }
            }
            if let Some((i, q)) = best_remove {
                a_prime.remove(i);
                quality = q;
                removed = true;
            }

            // Pass 2 — best strict improvement among ADD and SWAP.
            let mut best: Option<(Vec<ArticleId>, f64)> = None;
            for &a in &pool {
                if a_prime.contains(&a) {
                    continue;
                }
                let mut candidate = a_prime.clone();
                candidate.push(a);
                let q = eval(&candidate);
                if q > quality + EPS && best.as_ref().is_none_or(|(_, bq)| q > *bq) {
                    best = Some((candidate, q));
                }
            }
            for i in 0..a_prime.len() {
                for &a in &pool {
                    if a_prime.contains(&a) {
                        continue;
                    }
                    let mut candidate = a_prime.clone();
                    candidate[i] = a;
                    let q = eval(&candidate);
                    if q > quality + EPS && best.as_ref().is_none_or(|(_, bq)| q > *bq) {
                        best = Some((candidate, q));
                    }
                }
            }
            match best {
                Some((candidate, q)) => {
                    a_prime = candidate;
                    quality = q;
                }
                None if !removed => break, // local optimum
                None => {}                 // only shrank; try again
            }
        }
    }

    a_prime.sort_unstable();
    let mut final_set: Vec<ArticleId> = query_articles.to_vec();
    for &a in &a_prime {
        if !final_set.contains(&a) {
            final_set.push(a);
        }
    }
    GroundTruth {
        expansion: a_prime,
        quality,
        baseline_quality,
        precisions: evaluator.precisions(&final_set),
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querygraph_retrieval::index::IndexBuilder;
    use querygraph_wiki::KbBuilder;

    /// A tiny controlled world: 3 articles, docs engineered so that
    /// expanding with "beta" is the unique win and "gamma" is harmful.
    fn world() -> (KnowledgeBase, SearchEngine, Vec<u32>) {
        let mut b = KbBuilder::new();
        let alpha = b.add_article("alpha");
        let beta = b.add_article("beta");
        let gamma = b.add_article("gamma");
        let c = b.add_category("things");
        for a in [alpha, beta, gamma] {
            b.belongs(a, c);
        }
        let kb = b.build().unwrap();

        let mut ib = IndexBuilder::new();
        // Relevant docs (0..4): mention beta, rarely alpha.
        ib.add_document("beta item one");
        ib.add_document("beta item two");
        ib.add_document("alpha beta item three");
        ib.add_document("beta item four");
        // Distractors mentioning gamma and alpha.
        for i in 0..8 {
            ib.add_document(&format!("gamma distractor number {i}"));
        }
        ib.add_document("alpha alone here");
        let engine = SearchEngine::new(ib.build());
        (kb, engine, vec![0, 1, 2, 3])
    }

    #[test]
    fn finds_the_good_expansion() {
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gamma = kb.article_by_title("gamma").unwrap();
        let gt = find_ground_truth(
            &evaluator,
            &GroundTruthConfig::default(),
            1,
            &[alpha],
            &[beta, gamma],
        );
        assert_eq!(gt.expansion, vec![beta], "beta retrieves all relevant docs");
        assert!(gt.quality > gt.baseline_quality);
        assert!(gt.evaluations > 0);
    }

    #[test]
    fn empty_pool_returns_baseline() {
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let gt = find_ground_truth(&evaluator, &GroundTruthConfig::default(), 1, &[alpha], &[]);
        assert!(gt.expansion.is_empty());
        assert_eq!(gt.quality, gt.baseline_quality);
    }

    #[test]
    fn harmful_start_is_recovered() {
        // Force the random start onto gamma (only candidate) — REMOVE
        // must fire if gamma hurts; here pool = {gamma} only.
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gamma = kb.article_by_title("gamma").unwrap();
        let gt = find_ground_truth(
            &evaluator,
            &GroundTruthConfig::default(),
            2,
            &[alpha, beta],
            &[gamma],
        );
        // With alpha+beta already strong, gamma (matching only noise)
        // must not survive in A′.
        assert!(
            gt.expansion.is_empty(),
            "gamma should be removed, got {:?}",
            gt.expansion
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gamma = kb.article_by_title("gamma").unwrap();
        let cfg = GroundTruthConfig::default();
        let a = find_ground_truth(&evaluator, &cfg, 7, &[alpha], &[beta, gamma]);
        let b = find_ground_truth(&evaluator, &cfg, 7, &[alpha], &[beta, gamma]);
        assert_eq!(a, b);
    }

    #[test]
    fn quality_never_below_baseline_when_pool_useful() {
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gt = find_ground_truth(
            &evaluator,
            &GroundTruthConfig::default(),
            3,
            &[alpha],
            &[beta],
        );
        assert!(gt.quality >= gt.baseline_quality);
    }

    #[test]
    fn precisions_match_quality() {
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gt = find_ground_truth(
            &evaluator,
            &GroundTruthConfig::default(),
            4,
            &[alpha],
            &[beta],
        );
        let mean = gt.precisions.iter().sum::<f64>() / 4.0;
        assert!((mean - gt.quality).abs() < 1e-9);
    }
}
