//! Ground-truth construction — the hill-climbing search of §2.2.
//!
//! Exhaustively evaluating every subset of L(q.D) is infeasible (the
//! paper notes the `Σ (|L(q.D)| choose i)` blow-up), so the paper uses a
//! local search: start from one random article, then repeatedly apply
//! the best of
//!
//! * **ADD** an article of L(q.D) to A′,
//! * **REMOVE** an article from A′,
//! * **SWAP** an article of A′ for one of L(q.D),
//!
//! "as long as they improve Equation 1 … Note that if after removing an
//! article the quality remains the same, the article is removed as we
//! want the minimum set of articles with the maximum quality."
//!
//! The implementation is faithful with one formal tightening: the loop
//! strictly increases the pair `(quality, −|A′|)` lexicographically, so
//! termination is guaranteed; a `max_iterations` cap guards degenerate
//! configurations anyway.

use querygraph_retrieval::backend::RetrievalBackend;
use querygraph_retrieval::metrics::{average_quality, precisions};
use querygraph_retrieval::workspace::{LeafId, ScoreWorkspace};
use querygraph_wiki::{ArticleId, KnowledgeBase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;

/// Tuning of the ground-truth search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthConfig {
    /// Base RNG seed; combined with the query id for the random start.
    pub seed: u64,
    /// Hard cap on hill-climbing iterations.
    pub max_iterations: usize,
    /// Retrieval depth (the largest cutoff of Eq. 1).
    pub search_depth: usize,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        GroundTruthConfig {
            seed: 0x5EED_CAFE,
            max_iterations: 60,
            search_depth: 15,
        }
    }
}

/// Result of the ground-truth search for one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The expansion articles A′ (sorted by id).
    pub expansion: Vec<ArticleId>,
    /// O(L(q.k) ∪ A′, q.D) — the achieved quality.
    pub quality: f64,
    /// O(L(q.k), q.D) — the unexpanded baseline.
    pub baseline_quality: f64,
    /// Top-{1,5,10,15} precision of the final X(q) (Table 2 rows).
    pub precisions: [f64; 4],
    /// Number of quality evaluations *requested* by the hill climb
    /// (observability). Counts memo hits too, so the value is identical
    /// with and without the fast path.
    pub evaluations: usize,
    /// Evaluations answered from the subset memo. Not serialized: the
    /// `Report` byte-identity contract pins the pre-fast-path JSON.
    #[serde(skip)]
    pub cached_evaluations: usize,
    /// Evaluations that actually ran a workspace search. Not serialized
    /// (see `cached_evaluations`).
    #[serde(skip)]
    pub computed_evaluations: usize,
}

/// Running totals of one evaluator's quality evaluations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounts {
    /// Quality evaluations requested.
    pub evaluations: usize,
    /// Requests answered from the subset memo.
    pub cached: usize,
    /// Requests that ran a workspace search.
    pub computed: usize,
}

impl EvalCounts {
    /// Counts accumulated since `earlier` (which must be a prefix of
    /// this history).
    pub fn since(self, earlier: EvalCounts) -> EvalCounts {
        EvalCounts {
            evaluations: self.evaluations - earlier.evaluations,
            cached: self.cached - earlier.cached,
            computed: self.computed - earlier.computed,
        }
    }
}

/// Reusable evaluator: measures O of an article set against the
/// relevant set, through a per-query [`ScoreWorkspace`].
///
/// Each distinct article title is resolved into a workspace leaf
/// exactly **once** per evaluator (the old implementation rebuilt
/// `QueryNode::phrases_of_titles` — and with it every phrase lookup —
/// on every call). Qualities are additionally memoized by the sorted
/// article-id multiset, so the hill climb's revisited neighbors
/// (ubiquitous across REMOVE→SWAP passes) cost a hash lookup.
///
/// Interior mutability: the workspace, leaf map, and memo live behind a
/// `RefCell`, keeping the `&self` call surface the pipeline and the
/// cycle analysis already use. The pipeline builds one evaluator per
/// query on the worker that owns it, so the cell is never contended.
pub struct QualityEvaluator<'a> {
    kb: &'a KnowledgeBase,
    relevant: Vec<u32>,
    search_depth: usize,
    state: RefCell<EvalState<'a>>,
}

struct EvalState<'a> {
    workspace: ScoreWorkspace<'a, dyn RetrievalBackend + 'a>,
    /// Article → resolved leaf (`None`: title normalizes to nothing).
    leaf_of: HashMap<ArticleId, Option<LeafId>>,
    /// Sorted article-id multiset → quality.
    ///
    /// Scores are summed in evaluation-sequence order, so two orderings
    /// of the same multiset can differ in the last ulp — but *quality*
    /// cannot: it is a ratio of relevant-hit counts at fixed cutoffs,
    /// and a count flip would need two documents with different
    /// `(tf, len)` statistics whose scores agree to ~1 ulp. Documents
    /// with *identical* statistics stay bitwise-tied under any leaf
    /// permutation (same op sequence applied to both) and resolve by
    /// doc id either way. The memoized-vs-raw property tests in
    /// `tests/ground_truth_fastpath.rs` and the golden pins exercise
    /// exactly this assumption.
    memo: HashMap<Vec<ArticleId>, f64>,
    memo_enabled: bool,
    counts: EvalCounts,
    /// Reused buffers — the climb evaluates thousands of candidate sets
    /// per query and must not allocate per candidate.
    scratch_key: Vec<ArticleId>,
    scratch_sorted: Vec<ArticleId>,
    scratch_leaves: Vec<LeafId>,
}

impl<'a> QualityEvaluator<'a> {
    /// Evaluator for one query's relevant set (doc ids in any order).
    pub fn new(
        kb: &'a KnowledgeBase,
        engine: &'a dyn RetrievalBackend,
        relevant: &[u32],
        search_depth: usize,
    ) -> Self {
        Self::with_memo(kb, engine, relevant, search_depth, true)
    }

    /// Evaluator with the subset memo disabled — every evaluation runs a
    /// workspace search. Exists so the equivalence tests can compare
    /// memoized and unmemoized climbs.
    pub fn without_memo(
        kb: &'a KnowledgeBase,
        engine: &'a dyn RetrievalBackend,
        relevant: &[u32],
        search_depth: usize,
    ) -> Self {
        Self::with_memo(kb, engine, relevant, search_depth, false)
    }

    fn with_memo(
        kb: &'a KnowledgeBase,
        engine: &'a dyn RetrievalBackend,
        relevant: &[u32],
        search_depth: usize,
        memo_enabled: bool,
    ) -> Self {
        let mut relevant = relevant.to_vec();
        relevant.sort_unstable();
        relevant.dedup();
        QualityEvaluator {
            kb,
            relevant,
            search_depth,
            state: RefCell::new(EvalState {
                workspace: ScoreWorkspace::new(engine),
                leaf_of: HashMap::new(),
                memo: HashMap::new(),
                memo_enabled,
                counts: EvalCounts::default(),
                scratch_key: Vec::new(),
                scratch_sorted: Vec::new(),
                scratch_leaves: Vec::new(),
            }),
        }
    }

    /// O(articles, D) of Eq. 1 (memoized; counts one evaluation).
    pub fn quality(&self, articles: &[ArticleId]) -> f64 {
        self.quality_of(articles, None, None)
    }

    /// O(set ∪ {extra}, D): quality with `extra` appended — the climb's
    /// ADD neighbor, without materializing the candidate `Vec`.
    pub fn with_article(&self, set: &[ArticleId], extra: ArticleId) -> f64 {
        self.quality_of(set, None, Some(extra))
    }

    /// O(set \ set\[index\], D): quality with one position dropped — the
    /// climb's REMOVE neighbor.
    pub fn without_article(&self, set: &[ArticleId], index: usize) -> f64 {
        self.quality_of(set, Some((index, None)), None)
    }

    /// O with `set[index]` replaced by `replacement` — the climb's SWAP
    /// neighbor.
    pub fn with_swap(&self, set: &[ArticleId], index: usize, replacement: ArticleId) -> f64 {
        self.quality_of(set, Some((index, Some(replacement))), None)
    }

    /// Per-cutoff precisions of the article set (never memoized — the
    /// ranked list is needed, not just the quality).
    pub fn precisions(&self, articles: &[ArticleId]) -> [f64; 4] {
        let state = &mut *self.state.borrow_mut();
        Self::fill_scratch(&mut state.scratch_key, articles, None, None);
        let hits = Self::search_scratch(self.kb, self.search_depth, state);
        precisions(&hits, &self.relevant)
    }

    /// Evaluation counters so far (total / memo hits / computed).
    pub fn counts(&self) -> EvalCounts {
        self.state.borrow().counts
    }

    /// Distinct phrase resolutions performed by the workspace — exactly
    /// one per distinct article title evaluated through this evaluator.
    pub fn resolutions(&self) -> usize {
        self.state.borrow().workspace.resolutions()
    }

    /// The quality core: `set`, optionally with one position dropped or
    /// replaced, optionally with one article appended.
    fn quality_of(
        &self,
        set: &[ArticleId],
        edit: Option<(usize, Option<ArticleId>)>,
        append: Option<ArticleId>,
    ) -> f64 {
        let state = &mut *self.state.borrow_mut();
        state.counts.evaluations += 1;
        Self::fill_scratch(&mut state.scratch_key, set, edit, append);

        if state.memo_enabled {
            state.scratch_sorted.clear();
            state.scratch_sorted.extend_from_slice(&state.scratch_key);
            state.scratch_sorted.sort_unstable();
            // `Vec<ArticleId>: Borrow<[ArticleId]>` lets the lookup run
            // without materializing an owned key.
            if let Some(&q) = state.memo.get(state.scratch_sorted.as_slice()) {
                state.counts.cached += 1;
                return q;
            }
        }

        state.counts.computed += 1;
        let hits = Self::search_scratch(self.kb, self.search_depth, state);
        let q = average_quality(&hits, &self.relevant);
        if state.memo_enabled {
            let key = state.scratch_sorted.clone();
            state.memo.insert(key, q);
        }
        q
    }

    /// Build the evaluated article sequence into `scratch`, preserving
    /// the exact order the pre-workspace implementation produced
    /// (`set` order, edits in place, append at the end) — leaf order is
    /// float-summation order, so this is part of the byte-identity
    /// contract.
    fn fill_scratch(
        scratch: &mut Vec<ArticleId>,
        set: &[ArticleId],
        edit: Option<(usize, Option<ArticleId>)>,
        append: Option<ArticleId>,
    ) {
        scratch.clear();
        match edit {
            None => scratch.extend_from_slice(set),
            Some((index, replacement)) => {
                scratch.extend_from_slice(&set[..index]);
                if let Some(r) = replacement {
                    scratch.push(r);
                }
                scratch.extend_from_slice(&set[index + 1..]);
            }
        }
        if let Some(a) = append {
            scratch.push(a);
        }
    }

    /// Resolve `scratch_key` to leaves and run the workspace search.
    fn search_scratch(
        kb: &KnowledgeBase,
        search_depth: usize,
        state: &mut EvalState<'_>,
    ) -> Vec<querygraph_retrieval::SearchHit> {
        let EvalState {
            workspace,
            leaf_of,
            scratch_key,
            scratch_leaves,
            ..
        } = state;
        scratch_leaves.clear();
        for &a in scratch_key.iter() {
            let leaf = *leaf_of
                .entry(a)
                .or_insert_with(|| workspace.add_title(kb.title(a)));
            if let Some(leaf) = leaf {
                scratch_leaves.push(leaf);
            }
        }
        workspace.search(scratch_leaves, search_depth)
    }
}

/// Run the §2.2 hill climb.
///
/// * `query_articles` — L(q.k), always part of the evaluated set.
/// * `pool` — L(q.D), the candidate expansion articles.
///
/// Returns the best A′ found. With an empty pool the result is the
/// baseline itself (empty expansion).
pub fn find_ground_truth(
    evaluator: &QualityEvaluator<'_>,
    config: &GroundTruthConfig,
    query_id: u32,
    query_articles: &[ArticleId],
    pool: &[ArticleId],
) -> GroundTruth {
    /// The climb's best ADD/SWAP move of one pass.
    enum Move {
        Add(ArticleId),
        Swap(usize, ArticleId),
    }

    let counts_at_entry = evaluator.counts();

    // `current` is the evaluated set L(q.k) ++ A′: query articles in
    // their given order, then the expansion in climb order. Neighbor
    // evaluations edit it positionally through the evaluator instead of
    // materializing a candidate `Vec` each (the pre-workspace
    // implementation cloned A′ per neighbor).
    let mut current: Vec<ArticleId> = query_articles.to_vec();
    let base_len = current.len();

    let baseline_quality = evaluator.quality(&current);

    // Candidate pool without the query articles themselves (adding them
    // is a no-op for the evaluated set).
    let pool: Vec<ArticleId> = pool
        .iter()
        .copied()
        .filter(|a| !query_articles.contains(a))
        .collect();

    let mut quality = baseline_quality;

    if !pool.is_empty() {
        // Random start, seeded per query.
        let mut rng = StdRng::seed_from_u64(config.seed ^ (query_id as u64).wrapping_mul(0x9E37));
        current.push(pool[rng.gen_range(0..pool.len())]);
        quality = evaluator.quality(&current);
        // A start below baseline is still kept — the climb can recover
        // via REMOVE (quality ties favour smaller sets anyway).

        const EPS: f64 = 1e-12;
        for _ in 0..config.max_iterations {
            // Pass 1 — REMOVE whenever quality does not degrade
            // (strictly shrinks the set on ties: minimality rule).
            let mut removed = false;
            let mut best_remove: Option<(usize, f64)> = None;
            for i in base_len..current.len() {
                let q = evaluator.without_article(&current, i);
                if q + EPS >= quality && best_remove.is_none_or(|(_, bq)| q > bq) {
                    best_remove = Some((i, q));
                }
            }
            if let Some((i, q)) = best_remove {
                current.remove(i);
                quality = q;
                removed = true;
            }

            // Pass 2 — best strict improvement among ADD and SWAP.
            let in_a_prime = |current: &[ArticleId], a: ArticleId| current[base_len..].contains(&a);
            let mut best: Option<(Move, f64)> = None;
            for &a in &pool {
                if in_a_prime(&current, a) {
                    continue;
                }
                let q = evaluator.with_article(&current, a);
                if q > quality + EPS && best.as_ref().is_none_or(|(_, bq)| q > *bq) {
                    best = Some((Move::Add(a), q));
                }
            }
            for i in base_len..current.len() {
                for &a in &pool {
                    if in_a_prime(&current, a) {
                        continue;
                    }
                    let q = evaluator.with_swap(&current, i, a);
                    if q > quality + EPS && best.as_ref().is_none_or(|(_, bq)| q > *bq) {
                        best = Some((Move::Swap(i, a), q));
                    }
                }
            }
            match best {
                Some((Move::Add(a), q)) => {
                    current.push(a);
                    quality = q;
                }
                Some((Move::Swap(i, a), q)) => {
                    current[i] = a;
                    quality = q;
                }
                None if !removed => break, // local optimum
                None => {}                 // only shrank; try again
            }
        }
    }

    let mut a_prime: Vec<ArticleId> = current[base_len..].to_vec();
    a_prime.sort_unstable();
    let mut final_set: Vec<ArticleId> = query_articles.to_vec();
    for &a in &a_prime {
        if !final_set.contains(&a) {
            final_set.push(a);
        }
    }
    let counts = evaluator.counts().since(counts_at_entry);
    GroundTruth {
        expansion: a_prime,
        quality,
        baseline_quality,
        precisions: evaluator.precisions(&final_set),
        evaluations: counts.evaluations,
        cached_evaluations: counts.cached,
        computed_evaluations: counts.computed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querygraph_retrieval::engine::SearchEngine;
    use querygraph_retrieval::index::IndexBuilder;
    use querygraph_wiki::KbBuilder;

    /// A tiny controlled world: 3 articles, docs engineered so that
    /// expanding with "beta" is the unique win and "gamma" is harmful.
    fn world() -> (KnowledgeBase, SearchEngine, Vec<u32>) {
        let mut b = KbBuilder::new();
        let alpha = b.add_article("alpha");
        let beta = b.add_article("beta");
        let gamma = b.add_article("gamma");
        let c = b.add_category("things");
        for a in [alpha, beta, gamma] {
            b.belongs(a, c);
        }
        let kb = b.build().unwrap();

        let mut ib = IndexBuilder::new();
        // Relevant docs (0..4): mention beta, rarely alpha.
        ib.add_document("beta item one");
        ib.add_document("beta item two");
        ib.add_document("alpha beta item three");
        ib.add_document("beta item four");
        // Distractors mentioning gamma and alpha.
        for i in 0..8 {
            ib.add_document(&format!("gamma distractor number {i}"));
        }
        ib.add_document("alpha alone here");
        let engine = SearchEngine::new(ib.build());
        (kb, engine, vec![0, 1, 2, 3])
    }

    #[test]
    fn finds_the_good_expansion() {
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gamma = kb.article_by_title("gamma").unwrap();
        let gt = find_ground_truth(
            &evaluator,
            &GroundTruthConfig::default(),
            1,
            &[alpha],
            &[beta, gamma],
        );
        assert_eq!(gt.expansion, vec![beta], "beta retrieves all relevant docs");
        assert!(gt.quality > gt.baseline_quality);
        assert!(gt.evaluations > 0);
    }

    #[test]
    fn empty_pool_returns_baseline() {
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let gt = find_ground_truth(&evaluator, &GroundTruthConfig::default(), 1, &[alpha], &[]);
        assert!(gt.expansion.is_empty());
        assert_eq!(gt.quality, gt.baseline_quality);
    }

    #[test]
    fn harmful_start_is_recovered() {
        // Force the random start onto gamma (only candidate) — REMOVE
        // must fire if gamma hurts; here pool = {gamma} only.
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gamma = kb.article_by_title("gamma").unwrap();
        let gt = find_ground_truth(
            &evaluator,
            &GroundTruthConfig::default(),
            2,
            &[alpha, beta],
            &[gamma],
        );
        // With alpha+beta already strong, gamma (matching only noise)
        // must not survive in A′.
        assert!(
            gt.expansion.is_empty(),
            "gamma should be removed, got {:?}",
            gt.expansion
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gamma = kb.article_by_title("gamma").unwrap();
        let cfg = GroundTruthConfig::default();
        let a = find_ground_truth(&evaluator, &cfg, 7, &[alpha], &[beta, gamma]);
        let b = find_ground_truth(&evaluator, &cfg, 7, &[alpha], &[beta, gamma]);
        // The second climb reuses the first's memo, so the cached vs
        // computed split differs — but every serialized (scientific)
        // field must be identical.
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert_eq!(a.evaluations, b.evaluations, "memo hits still count");
        assert_eq!(b.computed_evaluations, 0, "rerun is fully memo-served");
        assert_eq!(b.cached_evaluations, b.evaluations);
    }

    #[test]
    fn memoized_and_unmemoized_climbs_agree() {
        let (kb, engine, relevant) = world();
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gamma = kb.article_by_title("gamma").unwrap();
        let cfg = GroundTruthConfig::default();
        for qid in [1, 2, 5, 9] {
            let memo = QualityEvaluator::new(&kb, &engine, &relevant, 15);
            let raw = QualityEvaluator::without_memo(&kb, &engine, &relevant, 15);
            let a = find_ground_truth(&memo, &cfg, qid, &[alpha], &[beta, gamma]);
            let b = find_ground_truth(&raw, &cfg, qid, &[alpha], &[beta, gamma]);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "memoization changed the climb for query {qid}"
            );
            assert_eq!(b.cached_evaluations, 0, "memo disabled");
            assert_eq!(b.computed_evaluations, b.evaluations);
            assert_eq!(
                a.cached_evaluations + a.computed_evaluations,
                a.evaluations,
                "counter split must partition the total"
            );
        }
    }

    #[test]
    fn one_phrase_resolution_per_distinct_title() {
        // The pre-workspace evaluator rebuilt `phrases_of_titles` — and
        // re-resolved every title phrase — on every quality call. The
        // workspace resolves each distinct title once per query.
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gamma = kb.article_by_title("gamma").unwrap();
        let gt = find_ground_truth(
            &evaluator,
            &GroundTruthConfig::default(),
            1,
            &[alpha],
            &[beta, gamma],
        );
        assert!(gt.evaluations > 3, "the climb evaluated many neighbors");
        assert_eq!(
            evaluator.resolutions(),
            3,
            "exactly one resolution per distinct title (3 articles)"
        );
        // More evaluations never resolve more phrases.
        evaluator.quality(&[alpha, beta, gamma]);
        assert_eq!(evaluator.resolutions(), 3);
    }

    #[test]
    fn revisited_neighbors_hit_the_memo() {
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gamma = kb.article_by_title("gamma").unwrap();
        let gt = find_ground_truth(
            &evaluator,
            &GroundTruthConfig::default(),
            1,
            &[alpha],
            &[beta, gamma],
        );
        assert!(
            gt.cached_evaluations > 0,
            "REMOVE/SWAP passes revisit subsets: {gt:?}"
        );
    }

    #[test]
    fn quality_never_below_baseline_when_pool_useful() {
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gt = find_ground_truth(
            &evaluator,
            &GroundTruthConfig::default(),
            3,
            &[alpha],
            &[beta],
        );
        assert!(gt.quality >= gt.baseline_quality);
    }

    #[test]
    fn precisions_match_quality() {
        let (kb, engine, relevant) = world();
        let evaluator = QualityEvaluator::new(&kb, &engine, &relevant, 15);
        let alpha = kb.article_by_title("alpha").unwrap();
        let beta = kb.article_by_title("beta").unwrap();
        let gt = find_ground_truth(
            &evaluator,
            &GroundTruthConfig::default(),
            4,
            &[alpha],
            &[beta],
        );
        let mean = gt.precisions.iter().sum::<f64>() / 4.0;
        assert!((mean - gt.quality).abs() < 1e-9);
    }
}
