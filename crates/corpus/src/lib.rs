//! # querygraph-corpus
//!
//! The document side of the reproduction: the ImageCLEF 2011 Wikipedia
//! image-retrieval collection that the paper builds its ground truth on
//! (§2, Fig. 2), modelled end to end:
//!
//! * [`xml`] — a minimal, dependency-free XML pull parser and writer
//!   (the allowed crate set contains no XML crate, so this substrate is
//!   built from scratch; see DESIGN.md §1).
//! * [`document`] — the image-metadata document model: id, file name,
//!   per-language text sections with descriptions and captions, the
//!   general comment, and the license.
//! * [`imageclef`] — parsing ImageCLEF XML files into documents and the
//!   paper's *linking text* extraction: ① the file name without
//!   extension, ② the English text section, ③ the description from the
//!   general comment (Fig. 2's three highlighted regions).
//! * [`query`] — queries (keyword list + relevant-document set, the
//!   `q = <k, D>` tuples of Table 1), the corpus container, and qrels.
//! * [`synth`] — a deterministic corpus generator grounded in a
//!   synthetic Wikipedia: relevant documents mention article titles near
//!   the query topic (creating the vocabulary mismatch that motivates
//!   query expansion), noise documents mention mixed topics.
//!
//! ```
//! use querygraph_corpus::imageclef;
//!
//! let xml = r#"<image id="7" file="images/0/7.jpg">
//!   <name>Gondola on the Grand Canal.jpg</name>
//!   <text xml:lang="en"><description>A gondola in Venice.</description>
//!     <comment/><caption article="text/en/1/2">Venice canal.</caption></text>
//!   <comment>({{Information |Description= Gondola photo |Source= Flickr }})</comment>
//!   <license>GFDL</license>
//! </image>"#;
//! let doc = imageclef::parse_image_doc(xml).unwrap();
//! assert_eq!(doc.id, "7");
//! let text = imageclef::linking_text(&doc);
//! assert!(text.contains("Gondola on the Grand Canal"));
//! assert!(text.contains("A gondola in Venice."));
//! assert!(text.contains("Gondola photo"));
//! ```

pub mod document;
pub mod imageclef;
pub mod ingest;
pub mod qrels;
pub mod query;
pub mod synth;
pub mod writer;
pub mod xml;

pub use document::{Caption, ImageDoc, LangSection};
pub use query::{Corpus, DocId, Query, QuerySet};
