//! Deterministic ImageCLEF-like corpus generator.
//!
//! Given a synthetic Wikipedia ([`SynthWiki`]), generates the document
//! collection and the fifty-query benchmark the ground-truth pipeline
//! (§2 of the paper) needs. The design goal is to reproduce the
//! *retrieval geometry* of the real track:
//!
//! * **Vocabulary mismatch.** Relevant documents mention the query's
//!   article titles only with probability [`SynthCorpusConfig::mention_query_prob`];
//!   mostly they mention *other* titles of the same topic. A raw keyword
//!   query therefore misses most relevant documents — the motivation for
//!   query expansion in the paper's introduction.
//! * **Good expansion features exist in the graph.** The titles relevant
//!   documents do mention are sampled with a bias toward graph neighbours
//!   of the query articles, i.e. exactly the articles that share links
//!   and categories (and hence short, dense, category-bearing cycles)
//!   with the query articles.
//! * **Drift.** With probability [`SynthCorpusConfig::drift_prob`] a
//!   relevant document also mentions a *neighbouring topic's* title —
//!   these titles enter L(q.D) as tempting but mediocre expansion
//!   features, the synthetic analogue of Fig. 8's `sheep`→`anthrax`
//!   trap.
//! * **Noise.** Mixed-topic noise documents with thin mentions keep
//!   retrieval from being trivial.
//!
//! Documents are materialized as real XML and re-parsed through
//! [`crate::imageclef`], so the whole Fig. 2 extraction path is always
//! exercised.

use crate::document::{Caption, ImageDoc, LangSection};
use crate::imageclef::parse_image_doc;
use crate::query::{Corpus, Query, QuerySet};
use crate::writer::to_xml;
use querygraph_wiki::synth::{vocab, SynthWiki};
use querygraph_wiki::ArticleId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthCorpusConfig {
    /// RNG seed (independent of the wiki seed).
    pub seed: u64,
    /// Number of queries (≤ number of wiki topics; each query gets its
    /// own topic so relevance judgments do not bleed across queries).
    pub num_queries: usize,
    /// Inclusive range of relevant documents per query.
    pub relevant_per_query: (usize, usize),
    /// Number of mixed-topic noise documents.
    pub noise_docs: usize,
    /// Probability a query mentions two entities (otherwise one), like
    /// the paper's "Graffiti Street Art" example with several entities.
    pub two_entity_query_prob: f64,
    /// Probability a relevant document mentions the query titles
    /// themselves (the vocabulary-mismatch dial; lower = harder).
    pub mention_query_prob: f64,
    /// Inclusive range of same-topic title mentions per relevant doc.
    pub topic_mentions_per_doc: (usize, usize),
    /// Probability a relevant doc drifts one mention into a neighbour
    /// topic.
    pub drift_prob: f64,
    /// Probability a relevant doc mentions a title from a *random far*
    /// topic — those articles reach L(q.D) but sit disconnected from
    /// the query's neighbourhood, producing the disconnected
    /// query-graph components of Table 3.
    pub far_drift_prob: f64,
    /// Inclusive range of relevant documents per query that are
    /// *far-flavoured*: they mention only far-topic titles, so the only
    /// way to retrieve them is through a structurally disconnected
    /// expansion feature. This is what drives Table 3's %size below 1.
    pub far_docs_per_query: (usize, usize),
    /// Inclusive range of **distractor** documents per query: documents
    /// that mention the query's own titles but are *not* relevant
    /// (mixed-topic content). They are what makes the unexpanded
    /// keyword query imprecise — the paper's motivation for expansion.
    pub distractors_per_query: (usize, usize),
    /// Probability a document carries German/French decoy sections
    /// (exercising the English-only extraction of Fig. 2).
    pub decoy_lang_prob: f64,
}

impl SynthCorpusConfig {
    /// Experiment-scale defaults: 50 queries like ImageCLEF 2011.
    pub fn default_experiment() -> Self {
        SynthCorpusConfig {
            seed: 0xC0FFEE,
            num_queries: 50,
            relevant_per_query: (12, 18),
            noise_docs: 1200,
            two_entity_query_prob: 0.6,
            mention_query_prob: 0.7,
            topic_mentions_per_doc: (3, 6),
            drift_prob: 0.3,
            far_drift_prob: 0.15,
            far_docs_per_query: (1, 3),
            distractors_per_query: (5, 9),
            decoy_lang_prob: 0.5,
        }
    }

    /// Paper-scale **stress** configuration, paired with
    /// `SynthWikiConfig::stress()`: one query per stress topic and a
    /// much deeper noise pool, so the inverted index sees tens of
    /// thousands of documents (the real ImageCLEF track has ~237k).
    pub fn stress() -> Self {
        SynthCorpusConfig {
            seed: 0x57E5_5BEE,
            num_queries: 60,
            relevant_per_query: (12, 18),
            noise_docs: 30_000,
            two_entity_query_prob: 0.6,
            mention_query_prob: 0.7,
            topic_mentions_per_doc: (3, 6),
            drift_prob: 0.3,
            far_drift_prob: 0.15,
            far_docs_per_query: (1, 3),
            distractors_per_query: (5, 9),
            decoy_lang_prob: 0.5,
        }
    }

    /// Miniature configuration for fast tests.
    pub fn small() -> Self {
        SynthCorpusConfig {
            seed: 11,
            num_queries: 4,
            relevant_per_query: (6, 10),
            noise_docs: 40,
            two_entity_query_prob: 0.5,
            mention_query_prob: 0.5,
            topic_mentions_per_doc: (2, 4),
            drift_prob: 0.3,
            far_drift_prob: 0.2,
            far_docs_per_query: (1, 2),
            distractors_per_query: (4, 8),
            decoy_lang_prob: 0.5,
        }
    }
}

/// The generated corpus, queries and per-query provenance.
#[derive(Debug, Clone)]
pub struct SynthCorpus {
    /// All documents (relevant blocks first, then noise).
    pub corpus: Corpus,
    /// The query set with relevance judgments.
    pub queries: QuerySet,
    /// `query index → wiki topic id`.
    pub query_topics: Vec<usize>,
    /// `query index → the articles whose titles form the keywords`.
    pub query_articles: Vec<Vec<ArticleId>>,
}

/// Generate the corpus. Deterministic in `(wiki, config)`.
///
/// # Panics
/// If `config.num_queries` exceeds the number of wiki topics.
pub fn generate_corpus(wiki: &SynthWiki, config: &SynthCorpusConfig) -> SynthCorpus {
    assert!(
        config.num_queries <= wiki.topics.len(),
        "need one topic per query ({} queries > {} topics)",
        config.num_queries,
        wiki.topics.len()
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut corpus = Corpus::new();
    let mut queries = Vec::with_capacity(config.num_queries);
    let mut query_topics = Vec::with_capacity(config.num_queries);
    let mut query_articles = Vec::with_capacity(config.num_queries);

    for qi in 0..config.num_queries {
        let t = qi; // one topic per query, in order — deterministic
        let topic = &wiki.topics[t];

        // Query entities: the hub, plus possibly one satellite.
        let mut q_arts = vec![topic.hub];
        if topic.articles.len() > 1 && rng.gen_bool(config.two_entity_query_prob) {
            let sat = topic.articles[1 + rng.gen_range(0..topic.articles.len() - 1)];
            q_arts.push(sat);
        }
        let keywords = q_arts
            .iter()
            .map(|&a| wiki.kb.title(a).to_owned())
            .collect::<Vec<_>>()
            .join(" ");

        // Mention pool: topic articles, biased toward graph neighbours
        // of the query articles.
        let pool = mention_pool(wiki, t, &q_arts);

        // One fixed far topic per query: its articles accumulate enough
        // relevant-document mentions to become genuine (but
        // structurally disconnected) expansion features — the extra
        // query-graph components of Table 3.
        let far_topic = (t + wiki.topics.len() / 2) % wiki.topics.len();

        let n_rel = rng.gen_range(config.relevant_per_query.0..=config.relevant_per_query.1);
        let n_far = rng
            .gen_range(config.far_docs_per_query.0..=config.far_docs_per_query.1)
            .min(n_rel);
        let mut relevant = Vec::with_capacity(n_rel);
        for d in 0..n_rel {
            let doc = if d < n_far {
                far_document(wiki, config, &mut rng, far_topic, qi, d)
            } else {
                relevant_document(wiki, config, &mut rng, t, far_topic, qi, d, &q_arts, &pool)
            };
            relevant.push(corpus.push(doc));
        }

        // Distractors: keyword-matching but non-relevant documents.
        let n_dis = rng.gen_range(config.distractors_per_query.0..=config.distractors_per_query.1);
        for d in 0..n_dis {
            let doc = distractor_document(wiki, config, &mut rng, t, qi, d, &q_arts);
            corpus.push(doc);
        }

        queries.push(Query::new(qi as u32 + 1, keywords, relevant));
        query_topics.push(t);
        query_articles.push(q_arts);
    }

    // Mixed-topic noise documents.
    for d in 0..config.noise_docs {
        let doc = noise_document(wiki, config, &mut rng, d);
        corpus.push(doc);
    }

    SynthCorpus {
        corpus,
        queries: QuerySet { queries },
        query_topics,
        query_articles,
    }
}

/// Titles relevant documents may mention: every topic article, weighted
/// by *structural affinity* to the query articles — reciprocal links
/// and shared categories multiply an article's sampling weight.
///
/// This weighting is the generator-side statement of the paper's
/// hypothesis: in Wikipedia, structural density (reciprocal links,
/// shared categories — i.e. membership in short dense cycles) *is*
/// semantic relatedness. The corpus realizes that relatedness as
/// co-mention frequency, which is what makes densely cycled articles
/// the better expansion features (Figs. 5, 9).
fn mention_pool(wiki: &SynthWiki, t: usize, q_arts: &[ArticleId]) -> Vec<ArticleId> {
    use querygraph_graph::EdgeType;
    let topic = &wiki.topics[t];
    let kb = &wiki.kb;
    let g = kb.graph();
    let mut pool: Vec<ArticleId> = Vec::new();
    for &a in &topic.articles {
        let mut weight = 1usize;
        for &qa in q_arts {
            if a == qa {
                continue;
            }
            let an = kb.article_node(a);
            let qn = kb.article_node(qa);
            let fwd = g.has_edge(qn, an, EdgeType::Link);
            let bwd = g.has_edge(an, qn, EdgeType::Link);
            if fwd && bwd {
                weight += 5; // reciprocal pair: a length-2 cycle
            } else if fwd || bwd {
                weight += 2;
            }
            let shared = kb
                .categories_of(a)
                .iter()
                .filter(|c| kb.categories_of(qa).contains(c))
                .count();
            weight += 2 * shared.min(2);
        }
        for _ in 0..weight {
            pool.push(a);
        }
    }
    pool
}

fn filler(rng: &mut StdRng) -> &'static str {
    vocab::FILLER_WORDS[rng.gen_range(0..vocab::FILLER_WORDS.len())]
}

/// A text fragment mentioning `titles` with filler words between them so
/// adjacent titles can never merge into an unintended longer match.
fn sentence_with_mentions(rng: &mut StdRng, titles: &[&str]) -> String {
    let mut out = String::new();
    out.push_str(filler(rng));
    for t in titles {
        out.push(' ');
        out.push_str(filler(rng));
        out.push(' ');
        out.push_str(t);
    }
    out.push(' ');
    out.push_str(filler(rng));
    out
}

#[allow(clippy::too_many_arguments)]
fn relevant_document(
    wiki: &SynthWiki,
    config: &SynthCorpusConfig,
    rng: &mut StdRng,
    t: usize,
    far_topic: usize,
    qi: usize,
    d: usize,
    q_arts: &[ArticleId],
    pool: &[ArticleId],
) -> ImageDoc {
    let kb = &wiki.kb;

    // Distinct same-topic mentions.
    let k = rng.gen_range(config.topic_mentions_per_doc.0..=config.topic_mentions_per_doc.1);
    let mut mentions: Vec<ArticleId> = Vec::with_capacity(k + 3);
    let mut guard = 0;
    while mentions.len() < k && guard < 10 * k {
        let a = pool[rng.gen_range(0..pool.len())];
        if !mentions.contains(&a) {
            mentions.push(a);
        }
        guard += 1;
    }
    // Query-title mentions (vocabulary match): each query article
    // independently, so two-entity queries see partial matches.
    for &qa in q_arts {
        if rng.gen_bool(config.mention_query_prob) && !mentions.contains(&qa) {
            mentions.push(qa);
        }
    }
    // Drift mention from a neighbouring topic.
    if rng.gen_bool(config.drift_prob) {
        let [n1, n2] = wiki.neighbor_topics(t);
        let nt = if rng.gen_bool(0.5) { n1 } else { n2 };
        let arts = &wiki.topics[nt].articles;
        mentions.push(arts[rng.gen_range(0..arts.len())]);
    }
    // Far drift: a title from the query's fixed far topic, restricted to
    // a few articles so their mention counts accumulate across the
    // relevant set (disconnected expansion features, Table 3).
    if wiki.topics.len() > 3 && far_topic != t && rng.gen_bool(config.far_drift_prob) {
        let arts = &wiki.topics[far_topic].articles;
        let span = arts.len().min(4);
        mentions.push(arts[rng.gen_range(0..span)]);
    }

    let titles: Vec<&str> = mentions.iter().map(|&a| kb.title(a)).collect();
    let split = (titles.len() / 2).max(1);
    let description = sentence_with_mentions(rng, &titles[..split]);
    let caption_titles = &titles[split.min(titles.len())..];

    let mut captions = vec![Caption {
        article: format!("text/en/1/{}", 100_000 + qi * 100 + d),
        text: if caption_titles.is_empty() {
            sentence_with_mentions(rng, &[])
        } else {
            sentence_with_mentions(rng, &caption_titles[..1])
        },
    }];
    if caption_titles.len() > 1 {
        captions.push(Caption {
            article: format!("text/en/2/{}", 200_000 + qi * 100 + d),
            text: sentence_with_mentions(rng, &caption_titles[1..]),
        });
    }

    let mut texts = vec![LangSection {
        lang: "en".into(),
        description,
        comment: String::new(),
        captions,
    }];
    if rng.gen_bool(config.decoy_lang_prob) {
        texts.push(decoy_section(rng, "de"));
        texts.push(decoy_section(rng, "fr"));
    }

    let name_title = kb.title(mentions[0]);
    let doc = ImageDoc {
        id: format!("q{}d{}", qi + 1, d),
        file: format!("images/{}/q{}d{}.jpg", qi % 10, qi + 1, d),
        name: format!("{} {} {}.jpg", name_title, filler(rng), d),
        texts,
        comment: format!(
            "({{{{Information |Description= {} |Source= synthetic |Author= generator }}}})",
            sentence_with_mentions(rng, &titles[..1])
        ),
        license: "GFDL".into(),
    };
    // Round-trip through XML so the parser path is always exercised.
    parse_image_doc(&to_xml(&doc)).expect("generated XML must parse")
}

/// A far-flavoured *relevant* document: mentions only titles from the
/// query's far topic (first few articles). Retrieving it requires the
/// far-topic expansion feature, which sits disconnected from the query
/// neighbourhood in the Wikipedia graph.
fn far_document(
    wiki: &SynthWiki,
    config: &SynthCorpusConfig,
    rng: &mut StdRng,
    far_topic: usize,
    qi: usize,
    d: usize,
) -> ImageDoc {
    let kb = &wiki.kb;
    let arts = &wiki.topics[far_topic].articles;
    let span = arts.len().min(4);
    let k = 2 + rng.gen_range(0..2usize);
    let mut picks: Vec<ArticleId> = Vec::new();
    let mut guard = 0;
    while picks.len() < k.min(span) && guard < 20 {
        let a = arts[rng.gen_range(0..span)];
        if !picks.contains(&a) {
            picks.push(a);
        }
        guard += 1;
    }
    let titles: Vec<&str> = picks.iter().map(|&a| kb.title(a)).collect();
    let mut texts = vec![LangSection {
        lang: "en".into(),
        description: sentence_with_mentions(rng, &titles),
        comment: String::new(),
        captions: vec![Caption {
            article: format!("text/en/7/{}", 700_000 + qi * 100 + d),
            text: sentence_with_mentions(rng, &titles[..1]),
        }],
    }];
    if rng.gen_bool(config.decoy_lang_prob) {
        texts.push(decoy_section(rng, "de"));
    }
    let doc = ImageDoc {
        id: format!("q{}f{}", qi + 1, d),
        file: format!("images/f/q{}f{}.jpg", qi + 1, d),
        name: format!("{} {} {}.jpg", titles[0], filler(rng), d),
        texts,
        comment: String::new(),
        license: "GFDL".into(),
    };
    parse_image_doc(&to_xml(&doc)).expect("generated XML must parse")
}

/// A distractor: mentions the query's own titles (so the unexpanded
/// keyword query retrieves it) but is otherwise about *other* topics —
/// and it is not in the relevant set. These documents are what drives
/// baseline precision below 1 and makes good expansion features
/// valuable: relevant documents co-mention several topic titles,
/// distractors only echo the keywords.
fn distractor_document(
    wiki: &SynthWiki,
    config: &SynthCorpusConfig,
    rng: &mut StdRng,
    t: usize,
    qi: usize,
    d: usize,
    q_arts: &[ArticleId],
) -> ImageDoc {
    let kb = &wiki.kb;
    let n_topics = wiki.topics.len();
    let mut titles: Vec<&str> = Vec::new();
    // Echo exactly one query title (a weak keyword match: enough to
    // compete with unexpanded queries, not enough to beat expanded
    // ones).
    let echo_idx = rng.gen_range(0..q_arts.len());
    titles.push(kb.title(q_arts[echo_idx]));
    // Pad with 4–7 titles from unrelated topics; padding stretches the
    // document so its single keyword match scores like (not above) a
    // relevant document's.
    let pad = 4 + rng.gen_range(0..4);
    for _ in 0..pad {
        let other = (t + 1 + rng.gen_range(0..n_topics.max(2) - 1)) % n_topics;
        let arts = &wiki.topics[other].articles;
        titles.push(kb.title(arts[rng.gen_range(0..arts.len())]));
    }
    let mut texts = vec![LangSection {
        lang: "en".into(),
        description: sentence_with_mentions(rng, &titles),
        comment: String::new(),
        captions: vec![Caption {
            article: format!("text/en/8/{}", 800_000 + qi * 100 + d),
            // The caption repeats a *pad* title, not the echo — one
            // keyword occurrence must not outgun the relevant docs.
            text: sentence_with_mentions(rng, &titles[1..2]),
        }],
    }];
    if rng.gen_bool(config.decoy_lang_prob) {
        texts.push(decoy_section(rng, "fr"));
    }
    let doc = ImageDoc {
        id: format!("q{}x{}", qi + 1, d),
        file: format!("images/x/q{}x{}.jpg", qi + 1, d),
        name: format!("{} {} {}.jpg", filler(rng), filler(rng), d),
        texts,
        comment: String::new(),
        license: "GFDL".into(),
    };
    parse_image_doc(&to_xml(&doc)).expect("generated XML must parse")
}

fn noise_document(
    wiki: &SynthWiki,
    config: &SynthCorpusConfig,
    rng: &mut StdRng,
    d: usize,
) -> ImageDoc {
    let kb = &wiki.kb;
    let n_topics = wiki.topics.len();
    // Thin mentions from two distinct random topics.
    let t1 = rng.gen_range(0..n_topics);
    let t2 = (t1 + 1 + rng.gen_range(0..n_topics.max(2) - 1)) % n_topics;
    let mut titles: Vec<&str> = Vec::new();
    for &t in &[t1, t2] {
        let arts = &wiki.topics[t].articles;
        let count = 1 + usize::from(rng.gen_bool(0.5));
        for _ in 0..count {
            titles.push(kb.title(arts[rng.gen_range(0..arts.len())]));
        }
    }
    let mut texts = vec![LangSection {
        lang: "en".into(),
        description: sentence_with_mentions(rng, &titles),
        comment: String::new(),
        captions: vec![Caption {
            article: format!("text/en/9/{}", 900_000 + d),
            text: sentence_with_mentions(rng, &[]),
        }],
    }];
    if rng.gen_bool(config.decoy_lang_prob) {
        texts.push(decoy_section(rng, "de"));
    }
    let doc = ImageDoc {
        id: format!("n{d}"),
        file: format!("images/n/{d}.jpg"),
        name: format!("{} {}.jpg", filler(rng), d),
        texts,
        comment: String::new(),
        license: "CC-BY-SA".into(),
    };
    parse_image_doc(&to_xml(&doc)).expect("generated XML must parse")
}

/// Decoy non-English section. The fixed phrases contain no generator
/// vocabulary, so if extraction ever leaked them into the linking text
/// the tests would catch unexpected mentions.
fn decoy_section(rng: &mut StdRng, lang: &str) -> LangSection {
    let (desc, cap) = match lang {
        "de" => ("Ein Bild im Sommer aufgenommen.", "Ein Feld im Sommer"),
        _ => ("Une photo prise en été.", "un champ en été"),
    };
    LangSection {
        lang: lang.into(),
        description: desc.into(),
        comment: String::new(),
        captions: vec![Caption {
            article: format!("text/{lang}/1/{}", rng.gen_range(0..1000)),
            text: cap.into(),
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imageclef::linking_text;
    use querygraph_wiki::synth::{generate, SynthWikiConfig};

    fn small() -> (SynthWiki, SynthCorpus) {
        let wiki = generate(&SynthWikiConfig::small());
        let corpus = generate_corpus(&wiki, &SynthCorpusConfig::small());
        (wiki, corpus)
    }

    #[test]
    fn generates_expected_counts() {
        let (_, sc) = small();
        let cfg = SynthCorpusConfig::small();
        assert_eq!(sc.queries.len(), cfg.num_queries);
        let rel_total: usize = sc.queries.iter().map(|q| q.relevant.len()).sum();
        let min_dis = cfg.num_queries * cfg.distractors_per_query.0;
        let max_dis = cfg.num_queries * cfg.distractors_per_query.1;
        let dis_total = sc.corpus.len() - rel_total - cfg.noise_docs;
        assert!(dis_total >= min_dis && dis_total <= max_dis);
        for q in sc.queries.iter() {
            assert!(q.relevant.len() >= cfg.relevant_per_query.0);
            assert!(q.relevant.len() <= cfg.relevant_per_query.1);
        }
    }

    #[test]
    fn distractors_echo_keywords_but_are_not_relevant() {
        let (wiki, sc) = small();
        for (qi, q) in sc.queries.iter().enumerate() {
            let distractors: Vec<_> = sc
                .corpus
                .iter()
                .filter(|(_, d)| d.id.starts_with(&format!("q{}x", qi + 1)))
                .collect();
            assert!(!distractors.is_empty());
            let q_titles: Vec<String> = sc.query_articles[qi]
                .iter()
                .map(|&a| querygraph_text::normalize(wiki.kb.title(a)))
                .collect();
            for (id, doc) in distractors {
                assert!(!q.is_relevant(id), "distractor judged relevant");
                let text = querygraph_text::normalize(&linking_text(doc));
                assert!(
                    q_titles.iter().any(|t| text.contains(t)),
                    "distractor {} must echo one query title",
                    doc.id
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let wiki = generate(&SynthWikiConfig::small());
        let a = generate_corpus(&wiki, &SynthCorpusConfig::small());
        let b = generate_corpus(&wiki, &SynthCorpusConfig::small());
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.corpus.len(), b.corpus.len());
        for (x, y) in a.corpus.iter().zip(b.corpus.iter()) {
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn keywords_contain_query_article_titles() {
        let (wiki, sc) = small();
        for (qi, q) in sc.queries.iter().enumerate() {
            for &a in &sc.query_articles[qi] {
                let title = wiki.kb.title(a);
                assert!(
                    q.keywords.contains(title),
                    "query {} keywords {:?} missing {title:?}",
                    q.id,
                    q.keywords
                );
            }
        }
    }

    #[test]
    fn relevant_docs_mention_topic_titles() {
        let (wiki, sc) = small();
        for (qi, q) in sc.queries.iter().enumerate() {
            let t = sc.query_topics[qi];
            let topic_titles: Vec<String> = wiki.topics[t]
                .articles
                .iter()
                .map(|&a| querygraph_text::normalize(wiki.kb.title(a)))
                .collect();
            for &d in &q.relevant {
                let doc = sc.corpus.doc(d);
                if doc.id.contains('f') {
                    continue; // far-flavoured docs mention the far topic only
                }
                let text = querygraph_text::normalize(&linking_text(doc));
                let hits = topic_titles.iter().filter(|t| text.contains(*t)).count();
                assert!(
                    hits >= 1,
                    "relevant doc {d:?} of query {} mentions no topic title",
                    q.id
                );
            }
        }
    }

    #[test]
    fn decoy_languages_never_reach_linking_text() {
        let (_, sc) = small();
        for (_, doc) in sc.corpus.iter() {
            let text = linking_text(doc);
            assert!(!text.contains("Sommer"), "German leaked into {}", doc.id);
            assert!(!text.contains("été"), "French leaked into {}", doc.id);
        }
    }

    #[test]
    fn relevant_blocks_precede_noise() {
        let (_, sc) = small();
        let max_rel: u32 = sc
            .queries
            .iter()
            .flat_map(|q| q.relevant.iter())
            .map(|d| d.0)
            .max()
            .unwrap();
        // Noise docs come after every relevant doc (distractor blocks
        // sit between relevant blocks and noise).
        let first_noise = sc
            .corpus
            .iter()
            .find(|(_, doc)| doc.id.starts_with('n'))
            .map(|(id, _)| id.0)
            .unwrap();
        assert!(first_noise > max_rel);
    }

    #[test]
    fn stress_config_is_consistent_with_stress_wiki() {
        let wiki_cfg = SynthWikiConfig::stress();
        let cfg = SynthCorpusConfig::stress();
        assert!(cfg.num_queries <= wiki_cfg.num_topics);
        assert!(cfg.noise_docs >= 10 * SynthCorpusConfig::default_experiment().noise_docs);
        assert!(cfg.relevant_per_query.0 <= cfg.relevant_per_query.1);
    }

    #[test]
    #[should_panic(expected = "queries > ")]
    fn too_many_queries_panics() {
        let wiki = generate(&SynthWikiConfig::small());
        let mut cfg = SynthCorpusConfig::small();
        cfg.num_queries = 100;
        generate_corpus(&wiki, &cfg);
    }
}
