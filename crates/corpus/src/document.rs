//! The ImageCLEF image-metadata document model (paper Fig. 2).
//!
//! Each document describes one image: a numeric id, the image file path,
//! a human-readable file `name`, one text section per language
//! (description, comment, captions), a general wiki-markup `comment`, and
//! a license tag.

use serde::{Deserialize, Serialize};

/// A caption inside a language section; `article` is the path of the
/// Wikipedia article the caption was harvested from (kept verbatim).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Caption {
    /// Source article path, e.g. `text/en/1/302887`.
    pub article: String,
    /// Caption text.
    pub text: String,
}

/// One `<text xml:lang="…">` section.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LangSection {
    /// Language code (`en`, `de`, `fr`, …).
    pub lang: String,
    /// `<description>` content.
    pub description: String,
    /// `<comment>` content (often empty).
    pub comment: String,
    /// `<caption>` entries in document order.
    pub captions: Vec<Caption>,
}

/// One image-metadata document.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ImageDoc {
    /// The `id` attribute of `<image>`.
    pub id: String,
    /// The `file` attribute (image path).
    pub file: String,
    /// `<name>`: image file name including extension.
    pub name: String,
    /// Language sections in document order.
    pub texts: Vec<LangSection>,
    /// The general `<comment>` (wiki `{{Information …}}` markup).
    pub comment: String,
    /// `<license>` content.
    pub license: String,
}

impl ImageDoc {
    /// The language section for `lang`, if present.
    pub fn section(&self, lang: &str) -> Option<&LangSection> {
        self.texts.iter().find(|s| s.lang == lang)
    }

    /// The file name without its extension — region ① of the paper's
    /// Fig. 2 extraction.
    pub fn name_without_extension(&self) -> &str {
        match self.name.rfind('.') {
            Some(dot) if dot > 0 => &self.name[..dot],
            _ => &self.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> ImageDoc {
        ImageDoc {
            id: "82531".into(),
            file: "images/9/82531.jpg".into(),
            name: "Field Hamois Belgium Luc Viatour.jpg".into(),
            texts: vec![
                LangSection {
                    lang: "en".into(),
                    description: "Summer field in Belgium (Hamois).".into(),
                    comment: String::new(),
                    captions: vec![Caption {
                        article: "text/en/1/302887".into(),
                        text: "Summer field in Belgium (Hamois).".into(),
                    }],
                },
                LangSection {
                    lang: "de".into(),
                    description: "Ein blühendes Feld in Belgien.".into(),
                    comment: String::new(),
                    captions: vec![],
                },
            ],
            comment: "({{Information |Description= Flowers in Belgium |Source= Flickr }})".into(),
            license: "GFDL".into(),
        }
    }

    #[test]
    fn section_lookup() {
        let d = doc();
        assert_eq!(d.section("en").unwrap().captions.len(), 1);
        assert_eq!(d.section("de").unwrap().lang, "de");
        assert!(d.section("fr").is_none());
    }

    #[test]
    fn name_without_extension_strips_last_dot() {
        let d = doc();
        assert_eq!(
            d.name_without_extension(),
            "Field Hamois Belgium Luc Viatour"
        );
    }

    #[test]
    fn name_without_extension_edge_cases() {
        let mut d = doc();
        d.name = "noextension".into();
        assert_eq!(d.name_without_extension(), "noextension");
        d.name = "archive.tar.gz".into();
        assert_eq!(d.name_without_extension(), "archive.tar");
        d.name = ".hidden".into();
        assert_eq!(d.name_without_extension(), ".hidden");
    }
}
