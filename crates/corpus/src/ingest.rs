//! Streaming, bounded-memory dump ingest.
//!
//! A "dump" is a concatenation of ImageCLEF-shaped `<image>` records as
//! emitted by [`crate::writer::to_xml`] — each record may carry its own
//! `<?xml ?>` declaration, mirroring how the real collection ships one
//! metadata file per image and how Wikipedia-style dumps concatenate
//! page records. [`DumpStream`] scans the byte stream incrementally,
//! buffering at most one record (capped by `max_doc_bytes`) plus one
//! read chunk at a time, so peak memory is independent of dump size.
//!
//! Record boundaries are found by scanning for `<image` / `</image>`
//! literals. The writer escapes `<` in text content, so a close tag can
//! never appear inside a record's character data; CDATA sections
//! containing `</image>` are not supported at the framing layer (the
//! writer never emits CDATA).

use crate::document::ImageDoc;
use crate::imageclef::parse_image_doc;
use crate::writer::to_xml;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

/// Default cap on one record's byte length (and thus on buffered memory).
pub const DEFAULT_MAX_DOC_BYTES: usize = 4 << 20;

/// Bytes read from the underlying reader per refill.
const CHUNK: usize = 64 * 1024;

const OPEN: &[u8] = b"<image";
const CLOSE: &[u8] = b"</image>";

/// Typed streaming-ingest errors, with absolute byte offsets into the
/// dump for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// Underlying reader failed.
    Io {
        /// Absolute offset reached when the read failed.
        offset: u64,
        /// The I/O error, stringified.
        message: String,
    },
    /// A record contained invalid UTF-8.
    Utf8 {
        /// Absolute offset of the first invalid byte.
        offset: u64,
    },
    /// A record failed XML parsing (truncated tags, unbalanced tags,
    /// oversized fields — see [`crate::xml::XmlLimits`]).
    Xml {
        /// Absolute offset of the XML error.
        offset: u64,
        /// The parser's message.
        message: String,
    },
    /// A record exceeded the configured `max_doc_bytes` cap.
    DocTooLarge {
        /// Absolute offset where the record starts.
        offset: u64,
        /// Bytes buffered before giving up.
        buffered: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The dump ended inside a record.
    Truncated {
        /// Absolute offset where the unterminated record starts.
        offset: u64,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { offset, message } => {
                write!(f, "ingest I/O error at byte {offset}: {message}")
            }
            IngestError::Utf8 { offset } => {
                write!(f, "invalid UTF-8 at byte {offset}")
            }
            IngestError::Xml { offset, message } => {
                write!(f, "XML error at byte {offset}: {message}")
            }
            IngestError::DocTooLarge {
                offset,
                buffered,
                cap,
            } => write!(
                f,
                "record at byte {offset} exceeds {cap} bytes ({buffered} buffered)"
            ),
            IngestError::Truncated { offset } => {
                write!(f, "dump truncated inside record starting at byte {offset}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Writes documents to a dump file (concatenated `to_xml` records).
pub struct DumpWriter<W: Write> {
    out: W,
    docs: u64,
}

impl DumpWriter<BufWriter<File>> {
    /// Create (truncate) a dump file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(DumpWriter::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> DumpWriter<W> {
    /// Writer over an arbitrary sink.
    pub fn new(out: W) -> Self {
        DumpWriter { out, docs: 0 }
    }

    /// Append one document record.
    pub fn write_doc(&mut self, doc: &ImageDoc) -> io::Result<()> {
        self.out.write_all(to_xml(doc).as_bytes())?;
        self.docs += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn docs_written(&self) -> u64 {
        self.docs
    }

    /// Flush and return the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Incremental reader over a dump: an iterator of
/// `Result<ImageDoc, IngestError>` that never buffers more than one
/// record (plus one read chunk).
///
/// Bytes between records — XML declarations, whitespace, comments — are
/// skipped. After the first error the stream is fused and yields `None`.
pub struct DumpStream<R: Read> {
    input: R,
    buf: Vec<u8>,
    /// Absolute offset of `buf[0]` in the dump.
    base: u64,
    eof: bool,
    fused: bool,
    max_doc_bytes: usize,
    docs: u64,
    peak_buf: usize,
}

impl DumpStream<io::BufReader<File>> {
    /// Stream the dump file at `path`.
    pub fn from_path(path: &Path) -> Result<Self, IngestError> {
        let file = File::open(path).map_err(|e| IngestError::Io {
            offset: 0,
            message: format!("{}: {e}", path.display()),
        })?;
        Ok(DumpStream::new(io::BufReader::new(file)))
    }
}

impl<R: Read> DumpStream<R> {
    /// Stream with the default record-size cap.
    pub fn new(input: R) -> Self {
        DumpStream::with_max_doc_bytes(input, DEFAULT_MAX_DOC_BYTES)
    }

    /// Stream with an explicit record-size cap (the memory bound).
    pub fn with_max_doc_bytes(input: R, max_doc_bytes: usize) -> Self {
        DumpStream {
            input,
            buf: Vec::new(),
            base: 0,
            eof: false,
            fused: false,
            max_doc_bytes,
            docs: 0,
            peak_buf: 0,
        }
    }

    /// Records successfully yielded so far.
    pub fn docs_yielded(&self) -> u64 {
        self.docs
    }

    /// High-water mark of the internal buffer — the observable memory
    /// bound (≤ `max_doc_bytes` + one read chunk).
    pub fn peak_buffer_bytes(&self) -> usize {
        self.peak_buf
    }

    /// Read one chunk; returns `Ok(false)` only at EOF.
    fn refill(&mut self) -> Result<bool, IngestError> {
        if self.eof {
            return Ok(false);
        }
        let old = self.buf.len();
        self.buf.resize(old + CHUNK, 0);
        match self.input.read(&mut self.buf[old..]) {
            Ok(0) => {
                self.buf.truncate(old);
                self.eof = true;
                Ok(false)
            }
            Ok(n) => {
                self.buf.truncate(old + n);
                self.peak_buf = self.peak_buf.max(self.buf.len());
                Ok(true)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                self.buf.truncate(old);
                Ok(true)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(IngestError::Io {
                    offset: self.base + old as u64,
                    message: e.to_string(),
                })
            }
        }
    }

    fn discard(&mut self, n: usize) {
        self.buf.drain(..n);
        self.base += n as u64;
    }

    fn next_doc(&mut self) -> Result<Option<ImageDoc>, IngestError> {
        // Phase 1: align the buffer on the next record start, discarding
        // inter-record bytes as we go (this is what bounds memory while
        // skipping declarations and junk).
        loop {
            match find_open(&self.buf) {
                FindOpen::Found(p) => {
                    if p > 0 {
                        self.discard(p);
                    }
                    break;
                }
                FindOpen::NeedMore(keep_from) => {
                    if keep_from > 0 {
                        self.discard(keep_from);
                    }
                    if !self.refill()? {
                        // EOF. A dangling `<image` prefix is a truncated
                        // record; anything else is trailing junk.
                        if find_sub(&self.buf, OPEN, 0).is_some() {
                            return Err(IngestError::Truncated { offset: self.base });
                        }
                        return Ok(None);
                    }
                }
            }
        }
        // Phase 2: buffer until the matching close tag, bounded by the cap.
        let mut scan = 0usize;
        loop {
            if let Some(e) = find_sub(&self.buf, CLOSE, scan) {
                let end = e + CLOSE.len();
                if end > self.max_doc_bytes {
                    return Err(IngestError::DocTooLarge {
                        offset: self.base,
                        buffered: end,
                        cap: self.max_doc_bytes,
                    });
                }
                let text =
                    std::str::from_utf8(&self.buf[..end]).map_err(|err| IngestError::Utf8 {
                        offset: self.base + err.valid_up_to() as u64,
                    })?;
                let doc = parse_image_doc(text).map_err(|e| IngestError::Xml {
                    offset: self.base + e.offset as u64,
                    message: e.message,
                })?;
                self.discard(end);
                self.docs += 1;
                return Ok(Some(doc));
            }
            if self.buf.len() > self.max_doc_bytes {
                return Err(IngestError::DocTooLarge {
                    offset: self.base,
                    buffered: self.buf.len(),
                    cap: self.max_doc_bytes,
                });
            }
            scan = self.buf.len().saturating_sub(CLOSE.len() - 1);
            if !self.refill()? {
                return Err(IngestError::Truncated { offset: self.base });
            }
        }
    }
}

impl<R: Read> Iterator for DumpStream<R> {
    type Item = Result<ImageDoc, IngestError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        match self.next_doc() {
            Ok(Some(doc)) => Some(Ok(doc)),
            Ok(None) => {
                self.fused = true;
                None
            }
            Err(e) => {
                self.fused = true;
                Some(Err(e))
            }
        }
    }
}

enum FindOpen {
    /// A confirmed record start at this buffer index.
    Found(usize),
    /// No confirmed start; bytes before this index can be discarded.
    NeedMore(usize),
}

/// Locate a confirmed `<image` start (followed by whitespace, `>` or
/// `/` so `<images>` etc. don't match).
fn find_open(buf: &[u8]) -> FindOpen {
    let mut from = 0;
    loop {
        match find_sub(buf, OPEN, from) {
            Some(p) => match buf.get(p + OPEN.len()) {
                Some(&b) if b == b' ' || b == b'>' || b == b'/' || b.is_ascii_whitespace() => {
                    return FindOpen::Found(p)
                }
                Some(_) => from = p + 1,
                None => return FindOpen::NeedMore(p),
            },
            None => {
                // Keep a tail that could still be an OPEN prefix.
                return FindOpen::NeedMore(buf.len().saturating_sub(OPEN.len() - 1));
            }
        }
    }
}

fn find_sub(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if hay.len() < needle.len() {
        return None;
    }
    (from..=hay.len() - needle.len()).find(|&i| &hay[i..i + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{Caption, LangSection};

    fn doc(i: usize) -> ImageDoc {
        ImageDoc {
            id: format!("{i}"),
            file: format!("images/{}/{i}.jpg", i % 10),
            name: format!("Sample image {i} & friends.jpg"),
            texts: vec![LangSection {
                lang: "en".into(),
                description: format!("Description of image {i} <with> markup."),
                comment: String::new(),
                captions: vec![Caption {
                    article: format!("text/en/{}/{i}", i % 7),
                    text: format!("Caption {i}."),
                }],
            }],
            comment: format!("({{{{Information |Description= Photo {i} |Source= X }}}})"),
            license: "GFDL".into(),
        }
    }

    fn dump_of(n: usize) -> Vec<u8> {
        let mut w = DumpWriter::new(Vec::new());
        for i in 0..n {
            w.write_doc(&doc(i)).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn round_trips_many_docs() {
        let bytes = dump_of(200);
        let docs: Vec<ImageDoc> = DumpStream::new(&bytes[..]).map(|r| r.unwrap()).collect();
        assert_eq!(docs.len(), 200);
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(*d, doc(i));
        }
    }

    #[test]
    fn skips_inter_record_junk() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"<!-- header junk -->\n\n");
        bytes.extend_from_slice(to_xml(&doc(0)).as_bytes());
        bytes.extend_from_slice(b"stray text between records\n");
        bytes.extend_from_slice(to_xml(&doc(1)).as_bytes());
        bytes.extend_from_slice(b"\ntrailing junk without a record\n");
        let docs: Vec<ImageDoc> = DumpStream::new(&bytes[..]).map(|r| r.unwrap()).collect();
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let bytes = dump_of(3);
        // Cut inside the last record.
        let cut = bytes.len() - 10;
        let mut s = DumpStream::new(&bytes[..cut]);
        assert!(s.next().unwrap().is_ok());
        assert!(s.next().unwrap().is_ok());
        match s.next().unwrap() {
            Err(IngestError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        assert!(s.next().is_none(), "stream must fuse after an error");
    }

    #[test]
    fn every_truncation_point_never_panics() {
        let bytes = dump_of(2);
        for cut in 0..=bytes.len() {
            for r in DumpStream::new(&bytes[..cut]) {
                if r.is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn oversized_record_is_rejected_and_memory_stays_bounded() {
        let bytes = dump_of(1);
        let mut s = DumpStream::with_max_doc_bytes(&bytes[..], 64);
        match s.next().unwrap() {
            Err(IngestError::DocTooLarge { cap: 64, .. }) => {}
            other => panic!("expected DocTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn peak_memory_independent_of_dump_size() {
        let small = dump_of(20);
        let large = dump_of(2000);
        let mut s1 = DumpStream::new(&small[..]);
        while s1.next().is_some() {}
        let mut s2 = DumpStream::new(&large[..]);
        while s2.next().is_some() {}
        assert_eq!(s2.docs_yielded(), 2000);
        // The rolling window never holds more than ~one record + chunks.
        assert!(s2.peak_buffer_bytes() <= s1.peak_buffer_bytes() + 2 * CHUNK);
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let mut bytes = to_xml(&doc(0)).into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] = 0xFF;
        let mut s = DumpStream::new(&bytes[..]);
        match s.next().unwrap() {
            Err(IngestError::Utf8 { .. }) | Err(IngestError::Xml { .. }) => {}
            other => panic!("expected Utf8/Xml error, got {other:?}"),
        }
    }

    #[test]
    fn similar_tag_names_do_not_frame() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"<imagesets>ignored</imagesets>\n");
        bytes.extend_from_slice(to_xml(&doc(5)).as_bytes());
        let docs: Vec<ImageDoc> = DumpStream::new(&bytes[..]).map(|r| r.unwrap()).collect();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0], doc(5));
    }

    #[test]
    fn tiny_reader_chunks_work() {
        // A reader that returns one byte at a time exercises every
        // refill boundary.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() || out.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let bytes = dump_of(3);
        let docs: Vec<ImageDoc> = DumpStream::new(OneByte(&bytes))
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(docs.len(), 3);
    }
}
