//! Serialize an [`ImageDoc`] back to ImageCLEF-shaped XML.
//!
//! Used by the synthetic corpus generator (documents are materialized as
//! XML and re-parsed, so the parser path is exercised end to end) and for
//! writing corpora to disk.

use crate::document::ImageDoc;
use crate::xml::{escape_attr, escape_text};
use std::fmt::Write as _;

/// Render `doc` as an ImageCLEF metadata XML string.
pub fn to_xml(doc: &ImageDoc) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\" ?>\n");
    let _ = writeln!(
        out,
        "<image id=\"{}\" file=\"{}\">",
        escape_attr(&doc.id),
        escape_attr(&doc.file)
    );
    let _ = writeln!(out, "  <name>{}</name>", escape_text(&doc.name));
    for s in &doc.texts {
        let _ = writeln!(out, "  <text xml:lang=\"{}\">", escape_attr(&s.lang));
        let _ = writeln!(
            out,
            "    <description>{}</description>",
            escape_text(&s.description)
        );
        if s.comment.is_empty() {
            out.push_str("    <comment />\n");
        } else {
            let _ = writeln!(out, "    <comment>{}</comment>", escape_text(&s.comment));
        }
        for c in &s.captions {
            let _ = writeln!(
                out,
                "    <caption article=\"{}\">{}</caption>",
                escape_attr(&c.article),
                escape_text(&c.text)
            );
        }
        out.push_str("  </text>\n");
    }
    if doc.comment.is_empty() {
        out.push_str("  <comment />\n");
    } else {
        let _ = writeln!(out, "  <comment>{}</comment>", escape_text(&doc.comment));
    }
    let _ = writeln!(out, "  <license>{}</license>", escape_text(&doc.license));
    out.push_str("</image>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{Caption, LangSection};
    use crate::imageclef::parse_image_doc;

    fn sample() -> ImageDoc {
        ImageDoc {
            id: "42".into(),
            file: "images/4/42.jpg".into(),
            name: "Gondola & canal <view>.jpg".into(),
            texts: vec![LangSection {
                lang: "en".into(),
                description: "A gondola on the Grand Canal.".into(),
                comment: "note".into(),
                captions: vec![Caption {
                    article: "text/en/1/1".into(),
                    text: "Venice \"proper\".".into(),
                }],
            }],
            comment: "({{Information |Description= Canal photo |Source= X }})".into(),
            license: "GFDL".into(),
        }
    }

    #[test]
    fn round_trips_through_parser() {
        let doc = sample();
        let xml = to_xml(&doc);
        let back = parse_image_doc(&xml).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn escapes_special_characters() {
        let xml = to_xml(&sample());
        assert!(xml.contains("Gondola &amp; canal &lt;view&gt;.jpg"));
    }

    #[test]
    fn empty_sections_render_self_closing() {
        let mut doc = sample();
        doc.comment.clear();
        doc.texts[0].comment.clear();
        let xml = to_xml(&doc);
        assert!(xml.contains("<comment />"));
        let back = parse_image_doc(&xml).unwrap();
        assert_eq!(back, doc);
    }
}
