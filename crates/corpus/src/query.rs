//! Queries, the corpus container, and document identifiers.
//!
//! A query is the tuple `q = <k, D>` of the paper's Table 1: a keyword
//! list `k` and the set `D` of documents that are correct results. The
//! ImageCLEF 2011 track provides fifty such queries; the synthetic
//! generator mirrors that.

use crate::document::ImageDoc;
use serde::{Deserialize, Serialize};

/// Dense identifier of a document within a [`Corpus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An immutable collection of documents.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    docs: Vec<ImageDoc>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Corpus from a document vector (ids follow vector order).
    pub fn from_docs(docs: Vec<ImageDoc>) -> Self {
        Corpus { docs }
    }

    /// Append a document, returning its id.
    pub fn push(&mut self, doc: ImageDoc) -> DocId {
        let id = DocId(self.docs.len() as u32);
        self.docs.push(doc);
        id
    }

    /// The document for `id`.
    pub fn doc(&self, id: DocId) -> &ImageDoc {
        &self.docs[id.index()]
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Iterate `(DocId, &ImageDoc)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &ImageDoc)> {
        self.docs
            .iter()
            .enumerate()
            .map(|(i, d)| (DocId(i as u32), d))
    }
}

/// One benchmark query: keywords plus its relevant-document set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Query identifier (the paper's examples use the ImageCLEF numbers,
    /// e.g. #90 "gondola in venice").
    pub id: u32,
    /// The keyword list `k`, as free text.
    pub keywords: String,
    /// The correct results `D` (sorted, deduplicated).
    pub relevant: Vec<DocId>,
}

impl Query {
    /// Construct a query, normalizing `relevant` to sorted/deduped.
    pub fn new(id: u32, keywords: impl Into<String>, mut relevant: Vec<DocId>) -> Self {
        relevant.sort_unstable();
        relevant.dedup();
        Query {
            id,
            keywords: keywords.into(),
            relevant,
        }
    }

    /// True when `d` is a correct result for this query.
    pub fn is_relevant(&self, d: DocId) -> bool {
        self.relevant.binary_search(&d).is_ok()
    }
}

/// The full query set of a benchmark run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySet {
    /// Queries in id order.
    pub queries: Vec<Query>,
}

impl QuerySet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when there are no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Find a query by its id.
    pub fn by_id(&self, id: u32) -> Option<&Query> {
        self.queries.iter().find(|q| q.id == id)
    }

    /// Iterate the queries.
    pub fn iter(&self) -> impl Iterator<Item = &Query> {
        self.queries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_push_and_lookup() {
        let mut c = Corpus::new();
        assert!(c.is_empty());
        let d0 = c.push(ImageDoc {
            id: "0".into(),
            ..ImageDoc::default()
        });
        let d1 = c.push(ImageDoc {
            id: "1".into(),
            ..ImageDoc::default()
        });
        assert_eq!(c.len(), 2);
        assert_eq!(c.doc(d0).id, "0");
        assert_eq!(c.doc(d1).id, "1");
        let ids: Vec<DocId> = c.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![DocId(0), DocId(1)]);
    }

    #[test]
    fn query_relevance_is_sorted_set() {
        let q = Query::new(90, "gondola in venice", vec![DocId(5), DocId(2), DocId(5)]);
        assert_eq!(q.relevant, vec![DocId(2), DocId(5)]);
        assert!(q.is_relevant(DocId(2)));
        assert!(!q.is_relevant(DocId(3)));
    }

    #[test]
    fn query_set_lookup() {
        let qs = QuerySet {
            queries: vec![
                Query::new(1, "a", vec![]),
                Query::new(90, "gondola in venice", vec![DocId(0)]),
            ],
        };
        assert_eq!(qs.len(), 2);
        assert_eq!(qs.by_id(90).unwrap().keywords, "gondola in venice");
        assert!(qs.by_id(3).is_none());
    }
}
