//! TREC-style relevance judgments (qrels) import/export.
//!
//! The ImageCLEF track distributes its ground truth in the classic TREC
//! qrels format: `query-id 0 doc-id relevance`, one judgment per line.
//! Only binary relevance is used here (the paper's result sets are
//! sets).

use crate::query::{DocId, Query, QuerySet};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render a query set as TREC qrels (relevant documents only, relevance
/// grade 1).
pub fn to_qrels(queries: &QuerySet) -> String {
    let mut out = String::new();
    for q in queries.iter() {
        for &d in &q.relevant {
            let _ = writeln!(out, "{} 0 {} 1", q.id, d.0);
        }
    }
    out
}

/// Errors from [`parse_qrels`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QrelsError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for QrelsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "qrels line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for QrelsError {}

/// Parse TREC qrels into per-query relevant-document lists. Keywords are
/// not part of the qrels format, so queries come back with empty keyword
/// strings; callers merge them with a topic file.
pub fn parse_qrels(text: &str) -> Result<QuerySet, QrelsError> {
    let mut by_query: BTreeMap<u32, Vec<DocId>> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = |msg: &str| QrelsError {
            line: i + 1,
            message: msg.to_owned(),
        };
        let qid: u32 = parts
            .next()
            .ok_or_else(|| bad("missing query id"))?
            .parse()
            .map_err(|_| bad("bad query id"))?;
        let _iter = parts.next().ok_or_else(|| bad("missing iteration field"))?;
        let did: u32 = parts
            .next()
            .ok_or_else(|| bad("missing doc id"))?
            .parse()
            .map_err(|_| bad("bad doc id"))?;
        let rel: i32 = parts
            .next()
            .ok_or_else(|| bad("missing relevance"))?
            .parse()
            .map_err(|_| bad("bad relevance"))?;
        if rel > 0 {
            by_query.entry(qid).or_default().push(DocId(did));
        } else {
            by_query.entry(qid).or_default();
        }
    }
    Ok(QuerySet {
        queries: by_query
            .into_iter()
            .map(|(id, docs)| Query::new(id, String::new(), docs))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let qs = QuerySet {
            queries: vec![
                Query::new(1, "", vec![DocId(10), DocId(11)]),
                Query::new(90, "", vec![DocId(3)]),
            ],
        };
        let text = to_qrels(&qs);
        let back = parse_qrels(&text).unwrap();
        assert_eq!(back, qs);
    }

    #[test]
    fn nonrelevant_lines_keep_query_visible() {
        let qs = parse_qrels("7 0 1 0\n7 0 2 1\n").unwrap();
        let q = qs.by_id(7).unwrap();
        assert_eq!(q.relevant, vec![DocId(2)]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let qs = parse_qrels("# header\n\n1 0 5 1\n").unwrap();
        assert_eq!(qs.len(), 1);
    }

    #[test]
    fn reports_line_numbers() {
        let e = parse_qrels("1 0 5 1\nbogus line\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn queries_sorted_by_id() {
        let qs = parse_qrels("9 0 1 1\n2 0 1 1\n").unwrap();
        let ids: Vec<u32> = qs.iter().map(|q| q.id).collect();
        assert_eq!(ids, vec![2, 9]);
    }
}
