//! A minimal XML parser and writer.
//!
//! The allowed dependency set has no XML crate, so this module implements
//! the subset of XML that the ImageCLEF metadata files use (and that the
//! synthetic corpus emits): elements with attributes, text content,
//! self-closing tags, comments, XML declarations, CDATA, and the five
//! predefined entities plus numeric character references.
//!
//! Two layers:
//! * [`Tokenizer`] — a pull tokenizer yielding [`XmlToken`]s;
//! * [`parse_element`] — builds an [`Element`] tree (the corpus files are
//!   small, a DOM is the simplest interface for extraction).

use std::fmt;

/// Parse errors with byte offsets into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

fn err<T>(offset: usize, message: impl Into<String>) -> Result<T, XmlError> {
    Err(XmlError {
        offset,
        message: message.into(),
    })
}

/// Size limits enforced while tokenizing/parsing.
///
/// Real dumps are adversarial in boring ways: a missing `</description>`
/// can fuse megabytes of following documents into one "text run", and a
/// corrupted length field upstream can produce absurd attribute values.
/// Limits turn those into typed [`XmlError`]s instead of unbounded
/// allocations. The defaults are far above anything a well-formed
/// ImageCLEF record produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XmlLimits {
    /// Maximum byte length of one text run (or CDATA section).
    pub max_text_bytes: usize,
    /// Maximum byte length of one attribute value.
    pub max_attr_bytes: usize,
    /// Maximum byte length of a tag or attribute name.
    pub max_name_bytes: usize,
    /// Maximum number of attributes on one tag.
    pub max_attrs: usize,
    /// Maximum element nesting depth in [`parse_element_with`].
    pub max_depth: usize,
}

impl Default for XmlLimits {
    fn default() -> Self {
        XmlLimits {
            max_text_bytes: 4 << 20,
            max_attr_bytes: 64 << 10,
            max_name_bytes: 1 << 10,
            max_attrs: 64,
            max_depth: 64,
        }
    }
}

/// One XML token from the [`Tokenizer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlToken {
    /// `<name attr="v">`
    StartTag {
        /// Element name.
        name: String,
        /// Attributes in document order, values entity-decoded.
        attrs: Vec<(String, String)>,
    },
    /// `</name>`
    EndTag {
        /// Element name.
        name: String,
    },
    /// `<name/>`
    SelfClosing {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// Character data between tags (entity-decoded, whitespace kept).
    Text(String),
}

/// Decode the predefined entities and numeric character references in
/// `raw`.
pub fn decode_entities(raw: &str) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Advance one UTF-8 char.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&raw[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        let semi = raw[i..].find(';').ok_or(XmlError {
            offset: i,
            message: "unterminated entity".into(),
        })? + i;
        let ent = &raw[i + 1..semi];
        match ent {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let code = u32::from_str_radix(&ent[2..], 16).map_err(|_| XmlError {
                    offset: i,
                    message: format!("bad hex char ref &{ent};"),
                })?;
                out.push(char::from_u32(code).ok_or(XmlError {
                    offset: i,
                    message: format!("invalid char ref &{ent};"),
                })?);
            }
            _ if ent.starts_with('#') => {
                let code: u32 = ent[1..].parse().map_err(|_| XmlError {
                    offset: i,
                    message: format!("bad char ref &{ent};"),
                })?;
                out.push(char::from_u32(code).ok_or(XmlError {
                    offset: i,
                    message: format!("invalid char ref &{ent};"),
                })?);
            }
            _ => {
                return err(i, format!("unknown entity &{ent};"));
            }
        }
        i = semi + 1;
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Escape text content for emission.
pub fn escape_text(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value for emission inside double quotes.
pub fn escape_attr(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Pull tokenizer over an XML string. Skips declarations, processing
/// instructions and comments; yields [`XmlToken`]s.
pub struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    limits: XmlLimits,
}

impl<'a> Tokenizer<'a> {
    /// Tokenizer over `input` with default [`XmlLimits`].
    pub fn new(input: &'a str) -> Self {
        Tokenizer::with_limits(input, XmlLimits::default())
    }

    /// Tokenizer over `input` with explicit limits.
    pub fn with_limits(input: &'a str, limits: XmlLimits) -> Self {
        Tokenizer {
            input,
            pos: 0,
            limits,
        }
    }

    /// Current byte offset (for error reporting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    /// Next token, or `Ok(None)` at end of input.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<XmlToken>, XmlError> {
        loop {
            if self.pos >= self.input.len() {
                return Ok(None);
            }
            let rest = self.rest();
            if let Some(stripped) = rest.strip_prefix("<!--") {
                let end = stripped.find("-->").ok_or(XmlError {
                    offset: self.pos,
                    message: "unterminated comment".into(),
                })?;
                self.pos += 4 + end + 3;
                continue;
            }
            if let Some(cdata) = rest.strip_prefix("<![CDATA[") {
                let body_start = self.pos + 9;
                let end = cdata.find("]]>").ok_or(XmlError {
                    offset: self.pos,
                    message: "unterminated CDATA".into(),
                })?;
                if end > self.limits.max_text_bytes {
                    return err(
                        self.pos,
                        format!(
                            "CDATA section of {end} bytes exceeds limit of {}",
                            self.limits.max_text_bytes
                        ),
                    );
                }
                let text = self.input[body_start..body_start + end].to_owned();
                self.pos = body_start + end + 3;
                return Ok(Some(XmlToken::Text(text)));
            }
            if rest.starts_with("<?") {
                let end = rest.find("?>").ok_or(XmlError {
                    offset: self.pos,
                    message: "unterminated declaration".into(),
                })?;
                self.pos += end + 2;
                continue;
            }
            if rest.starts_with("<!") {
                // DOCTYPE and friends: skip to matching '>'.
                let end = rest.find('>').ok_or(XmlError {
                    offset: self.pos,
                    message: "unterminated <! construct".into(),
                })?;
                self.pos += end + 1;
                continue;
            }
            if let Some(after) = rest.strip_prefix("</") {
                let end = after.find('>').ok_or(XmlError {
                    offset: self.pos,
                    message: "unterminated end tag".into(),
                })?;
                let name = after[..end].trim().to_owned();
                if name.is_empty() {
                    return err(self.pos, "empty end-tag name");
                }
                if name.len() > self.limits.max_name_bytes {
                    return err(
                        self.pos,
                        format!(
                            "end-tag name of {} bytes exceeds limit of {}",
                            name.len(),
                            self.limits.max_name_bytes
                        ),
                    );
                }
                self.pos += 2 + end + 1;
                return Ok(Some(XmlToken::EndTag { name }));
            }
            if rest.starts_with('<') {
                return self.parse_start_tag();
            }
            // Text run up to the next '<'.
            let end = rest.find('<').unwrap_or(rest.len());
            let raw = &rest[..end];
            let start_offset = self.pos;
            self.pos += end;
            if raw.trim().is_empty() {
                continue; // inter-tag whitespace
            }
            if raw.len() > self.limits.max_text_bytes {
                return err(
                    start_offset,
                    format!(
                        "text run of {} bytes exceeds limit of {}",
                        raw.len(),
                        self.limits.max_text_bytes
                    ),
                );
            }
            let decoded = decode_entities(raw).map_err(|e| XmlError {
                offset: start_offset + e.offset,
                message: e.message,
            })?;
            return Ok(Some(XmlToken::Text(decoded)));
        }
    }

    fn parse_start_tag(&mut self) -> Result<Option<XmlToken>, XmlError> {
        let tag_start = self.pos;
        let rest = self.rest();
        let end = rest.find('>').ok_or(XmlError {
            offset: tag_start,
            message: "unterminated start tag".into(),
        })?;
        let inner = &rest[1..end];
        let self_closing = inner.ends_with('/');
        let inner = inner.trim_end_matches('/').trim();
        self.pos += end + 1;

        let name_end = inner
            .find(|c: char| c.is_whitespace())
            .unwrap_or(inner.len());
        let name = inner[..name_end].to_owned();
        if name.is_empty() {
            return err(tag_start, "empty tag name");
        }
        if name.len() > self.limits.max_name_bytes {
            return err(
                tag_start,
                format!(
                    "tag name of {} bytes exceeds limit of {}",
                    name.len(),
                    self.limits.max_name_bytes
                ),
            );
        }
        let mut attrs = Vec::new();
        let mut attr_str = inner[name_end..].trim_start();
        while !attr_str.is_empty() {
            if attrs.len() >= self.limits.max_attrs {
                return err(
                    tag_start,
                    format!("more than {} attributes in <{name}>", self.limits.max_attrs),
                );
            }
            let eq = attr_str.find('=').ok_or(XmlError {
                offset: tag_start,
                message: format!("attribute without value in <{name}>"),
            })?;
            let key = attr_str[..eq].trim().to_owned();
            if key.len() > self.limits.max_name_bytes {
                return err(
                    tag_start,
                    format!(
                        "attribute name of {} bytes exceeds limit of {}",
                        key.len(),
                        self.limits.max_name_bytes
                    ),
                );
            }
            let after_eq = attr_str[eq + 1..].trim_start();
            let quote = after_eq.chars().next().ok_or(XmlError {
                offset: tag_start,
                message: "missing attribute value".into(),
            })?;
            if quote != '"' && quote != '\'' {
                return err(tag_start, format!("unquoted attribute value in <{name}>"));
            }
            let close = after_eq[1..].find(quote).ok_or(XmlError {
                offset: tag_start,
                message: "unterminated attribute value".into(),
            })?;
            let raw_val = &after_eq[1..1 + close];
            if raw_val.len() > self.limits.max_attr_bytes {
                return err(
                    tag_start,
                    format!(
                        "attribute value of {} bytes exceeds limit of {}",
                        raw_val.len(),
                        self.limits.max_attr_bytes
                    ),
                );
            }
            attrs.push((key, decode_entities(raw_val)?));
            attr_str = after_eq[1 + close + 1..].trim_start();
        }
        Ok(Some(if self_closing {
            XmlToken::SelfClosing { name, attrs }
        } else {
            XmlToken::StartTag { name, attrs }
        }))
    }
}

/// A DOM element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

/// A DOM node: element or text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Child element.
    Element(Element),
    /// Text content.
    Text(String),
}

impl Element {
    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements with the given tag name.
    pub fn children_named<'e>(&'e self, name: &str) -> impl Iterator<Item = &'e Element> + 'e {
        let name = name.to_owned();
        self.children.iter().filter_map(move |n| match n {
            Node::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// First child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children_named(name).next()
    }

    /// Concatenated text of all *direct* text children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }

    /// Concatenated text of the whole subtree (depth-first).
    pub fn deep_text(&self) -> String {
        let mut out = String::new();
        fn walk(e: &Element, out: &mut String) {
            for n in &e.children {
                match n {
                    Node::Text(t) => out.push_str(t),
                    Node::Element(c) => walk(c, out),
                }
            }
        }
        walk(self, &mut out);
        out
    }
}

/// Parse a document with a single root element into that [`Element`],
/// using default [`XmlLimits`].
pub fn parse_element(input: &str) -> Result<Element, XmlError> {
    parse_element_with(input, XmlLimits::default())
}

/// Parse a document with a single root element under explicit limits.
pub fn parse_element_with(input: &str, limits: XmlLimits) -> Result<Element, XmlError> {
    let mut tok = Tokenizer::with_limits(input, limits);
    let mut stack: Vec<Element> = Vec::new();
    let mut root: Option<Element> = None;
    while let Some(token) = tok.next()? {
        match token {
            XmlToken::StartTag { name, attrs } => {
                if stack.len() >= limits.max_depth {
                    return err(
                        tok.offset(),
                        format!("element nesting deeper than {}", limits.max_depth),
                    );
                }
                stack.push(Element {
                    name,
                    attrs,
                    children: Vec::new(),
                });
            }
            XmlToken::SelfClosing { name, attrs } => {
                let el = Element {
                    name,
                    attrs,
                    children: Vec::new(),
                };
                match stack.last_mut() {
                    Some(parent) => parent.children.push(Node::Element(el)),
                    None if root.is_none() => root = Some(el),
                    None => return err(tok.offset(), "multiple root elements"),
                }
            }
            XmlToken::EndTag { name } => {
                let el = stack.pop().ok_or(XmlError {
                    offset: tok.offset(),
                    message: format!("unmatched </{name}>"),
                })?;
                if el.name != name {
                    return err(
                        tok.offset(),
                        format!("mismatched </{name}>, expected </{}>", el.name),
                    );
                }
                match stack.last_mut() {
                    Some(parent) => parent.children.push(Node::Element(el)),
                    None if root.is_none() => root = Some(el),
                    None => return err(tok.offset(), "multiple root elements"),
                }
            }
            XmlToken::Text(t) => {
                if let Some(parent) = stack.last_mut() {
                    parent.children.push(Node::Text(t));
                }
                // Top-level stray text is ignored (whitespace was already
                // filtered; anything else is lenient-parsed away).
            }
        }
    }
    if !stack.is_empty() {
        return err(
            tok.offset(),
            format!("unclosed <{}>", stack.last().unwrap().name),
        );
    }
    root.ok_or(XmlError {
        offset: 0,
        message: "no root element".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_document() {
        let mut t = Tokenizer::new("<a x=\"1\"><b/>hello</a>");
        assert_eq!(
            t.next().unwrap().unwrap(),
            XmlToken::StartTag {
                name: "a".into(),
                attrs: vec![("x".into(), "1".into())]
            }
        );
        assert_eq!(
            t.next().unwrap().unwrap(),
            XmlToken::SelfClosing {
                name: "b".into(),
                attrs: vec![]
            }
        );
        assert_eq!(t.next().unwrap().unwrap(), XmlToken::Text("hello".into()));
        assert_eq!(
            t.next().unwrap().unwrap(),
            XmlToken::EndTag { name: "a".into() }
        );
        assert_eq!(t.next().unwrap(), None);
    }

    #[test]
    fn skips_declaration_and_comments() {
        let mut t = Tokenizer::new("<?xml version=\"1.0\" encoding=\"UTF-8\" ?><!-- c --><r/>");
        assert_eq!(
            t.next().unwrap().unwrap(),
            XmlToken::SelfClosing {
                name: "r".into(),
                attrs: vec![]
            }
        );
    }

    #[test]
    fn decodes_entities() {
        assert_eq!(decode_entities("a &amp; b &lt;c&gt;").unwrap(), "a & b <c>");
        assert_eq!(
            decode_entities("&quot;q&quot; &apos;a&apos;").unwrap(),
            "\"q\" 'a'"
        );
        assert_eq!(decode_entities("&#65;&#x42;").unwrap(), "AB");
        assert!(decode_entities("&bogus;").is_err());
        assert!(decode_entities("&amp").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a & b < c > d \" e";
        assert_eq!(decode_entities(&escape_text(nasty)).unwrap(), nasty);
        assert_eq!(decode_entities(&escape_attr(nasty)).unwrap(), nasty);
    }

    #[test]
    fn parses_tree() {
        let e = parse_element("<image id=\"8\"><name>x.jpg</name><text xml:lang=\"en\"><description>A b</description></text></image>").unwrap();
        assert_eq!(e.name, "image");
        assert_eq!(e.attr("id"), Some("8"));
        assert_eq!(e.child("name").unwrap().text(), "x.jpg");
        let text = e.child("text").unwrap();
        assert_eq!(text.attr("xml:lang"), Some("en"));
        assert_eq!(text.child("description").unwrap().text(), "A b");
    }

    #[test]
    fn children_named_filters() {
        let e = parse_element("<r><c>1</c><d/><c>2</c></r>").unwrap();
        let texts: Vec<String> = e.children_named("c").map(|c| c.text()).collect();
        assert_eq!(texts, vec!["1", "2"]);
        assert!(e.child("missing").is_none());
    }

    #[test]
    fn deep_text_concatenates() {
        let e = parse_element("<r>a<c>b<d>c</d></c>d</r>").unwrap();
        assert_eq!(e.deep_text(), "abcd");
    }

    #[test]
    fn cdata_is_text() {
        let e = parse_element("<r><![CDATA[x < y & z]]></r>").unwrap();
        assert_eq!(e.text(), "x < y & z");
    }

    #[test]
    fn single_quoted_attributes() {
        let e = parse_element("<r a='v1' b=\"v2\"/>").unwrap();
        assert_eq!(e.attr("a"), Some("v1"));
        assert_eq!(e.attr("b"), Some("v2"));
    }

    #[test]
    fn error_on_mismatched_tags() {
        assert!(parse_element("<a><b></a></b>").is_err());
        assert!(parse_element("<a>").is_err());
        assert!(parse_element("").is_err());
        assert!(parse_element("<a/><b/>").is_err());
    }

    #[test]
    fn attribute_entities_decoded() {
        let e = parse_element("<r t=\"a &amp; b\"/>").unwrap();
        assert_eq!(e.attr("t"), Some("a & b"));
    }

    #[test]
    fn unicode_text_survives() {
        let e = parse_element("<r>Bouches-du-Rhône — été</r>").unwrap();
        assert_eq!(e.text(), "Bouches-du-Rhône — été");
    }

    fn tight_limits() -> XmlLimits {
        XmlLimits {
            max_text_bytes: 16,
            max_attr_bytes: 8,
            max_name_bytes: 4,
            max_attrs: 2,
            max_depth: 3,
        }
    }

    #[test]
    fn oversized_fields_are_typed_errors() {
        let l = tight_limits();
        let text = format!("<r>{}</r>", "x".repeat(17));
        assert!(parse_element_with(&text, l)
            .unwrap_err()
            .message
            .contains("exceeds limit"));
        let cdata = format!("<r><![CDATA[{}]]></r>", "x".repeat(17));
        assert!(parse_element_with(&cdata, l)
            .unwrap_err()
            .message
            .contains("exceeds limit"));
        let attr = format!("<r a=\"{}\"/>", "x".repeat(9));
        assert!(parse_element_with(&attr, l)
            .unwrap_err()
            .message
            .contains("exceeds limit"));
        let name = "<toolong/>";
        assert!(parse_element_with(name, l)
            .unwrap_err()
            .message
            .contains("exceeds limit"));
        let end_name = "<r></toolongname>";
        assert!(parse_element_with(end_name, l)
            .unwrap_err()
            .message
            .contains("exceeds limit"));
        let attrs = "<r a=\"1\" b=\"2\" c=\"3\"/>";
        assert!(parse_element_with(attrs, l)
            .unwrap_err()
            .message
            .contains("attributes"));
        let deep = "<a><b><c><d>x</d></c></b></a>";
        assert!(parse_element_with(deep, l)
            .unwrap_err()
            .message
            .contains("nesting"));
        // The same documents parse fine under default limits.
        assert!(parse_element(&text).is_ok());
        assert!(parse_element(deep).is_ok());
    }

    /// A representative document exercising every token kind.
    fn fuzz_fixture() -> String {
        concat!(
            "<?xml version=\"1.0\" encoding=\"UTF-8\" ?>\n",
            "<!-- leading comment -->\n",
            "<image id=\"42\" file=\"caf\u{e9}.jpg\">\n",
            "  <name>caf\u{e9} &amp; cr\u{e8}me.jpg</name>\n",
            "  <text xml:lang=\"en\">\n",
            "    <description>A &lt;tagged&gt; caption &#65;</description>\n",
            "    <comment><![CDATA[raw < & > bytes]]></comment>\n",
            "  </text>\n",
            "  <license/>\n",
            "</image>\n",
        )
        .to_string()
    }

    /// Truncating a valid document at every byte offset must yield
    /// `Ok(_)` or a typed error — never a panic. Byte offsets inside a
    /// multi-byte character are exercised via lossy decoding, matching
    /// what a streaming reader would hand us.
    #[test]
    fn every_byte_truncation_never_panics() {
        let doc = fuzz_fixture();
        let bytes = doc.as_bytes();
        for cut in 0..=bytes.len() {
            let prefix = String::from_utf8_lossy(&bytes[..cut]);
            let _ = parse_element(&prefix);
            let mut tok = Tokenizer::new(&prefix);
            while let Ok(Some(_)) = tok.next() {}
        }
    }

    /// Corrupting any single byte to a metacharacter must also never
    /// panic (unbalanced tags, stray '&', split entities, ...).
    #[test]
    fn single_byte_corruption_never_panics() {
        let doc = fuzz_fixture();
        for (i, _) in doc.char_indices() {
            for junk in ['<', '>', '&', '"', '/'] {
                let mut bad = String::with_capacity(doc.len());
                for (j, c) in doc.char_indices() {
                    bad.push(if j == i { junk } else { c });
                }
                let _ = parse_element(&bad);
            }
        }
    }

    #[test]
    fn unbalanced_tags_are_typed_errors() {
        for bad in [
            "<a><b></b>",
            "<a></b>",
            "</a>",
            "<a><b></a></b>",
            "<a><![CDATA[x]]>",
            "<a><!-- never closed",
            "<a b=\"unterminated",
            "<a b=unquoted/>",
        ] {
            let e = parse_element(bad).unwrap_err();
            assert!(!e.message.is_empty(), "{bad:?} should be a typed error");
        }
    }
}
