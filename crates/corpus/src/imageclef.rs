//! Parsing ImageCLEF XML metadata and the paper's linking-text
//! extraction (§2.1, Fig. 2).
//!
//! Given a metadata document, the paper extracts and concatenates:
//!
//! 1. the file **name** without its extension;
//! 2. the **English** text section (description, captions, comment) —
//!    German and French sections are ignored;
//! 3. the **Description** field of the general wiki-markup comment
//!    (`{{Information |Description= … |Source= …}}`).
//!
//! The result is the string on which entity linking runs.

use crate::document::{Caption, ImageDoc, LangSection};
use crate::xml::{parse_element, Element, XmlError};

/// Parse one ImageCLEF metadata file into an [`ImageDoc`].
///
/// Lenient where the real collection is messy: missing sections default
/// to empty, unknown elements are ignored.
pub fn parse_image_doc(xml: &str) -> Result<ImageDoc, XmlError> {
    let root = parse_element(xml)?;
    if root.name != "image" {
        return Err(XmlError {
            offset: 0,
            message: format!("expected <image> root, found <{}>", root.name),
        });
    }
    let mut doc = ImageDoc {
        id: root.attr("id").unwrap_or_default().to_owned(),
        file: root.attr("file").unwrap_or_default().to_owned(),
        ..ImageDoc::default()
    };
    for child in &root.children {
        let el = match child {
            crate::xml::Node::Element(e) => e,
            crate::xml::Node::Text(_) => continue,
        };
        match el.name.as_str() {
            "name" => doc.name = el.text().trim().to_owned(),
            "text" => doc.texts.push(parse_section(el)),
            "comment" => doc.comment = el.text().trim().to_owned(),
            "license" => doc.license = el.text().trim().to_owned(),
            _ => {}
        }
    }
    Ok(doc)
}

fn parse_section(el: &Element) -> LangSection {
    let mut s = LangSection {
        lang: el.attr("xml:lang").unwrap_or_default().to_owned(),
        ..LangSection::default()
    };
    for d in el.children_named("description") {
        s.description = d.text().trim().to_owned();
    }
    for c in el.children_named("comment") {
        s.comment = c.text().trim().to_owned();
    }
    for c in el.children_named("caption") {
        s.captions.push(Caption {
            article: c.attr("article").unwrap_or_default().to_owned(),
            text: c.text().trim().to_owned(),
        });
    }
    s
}

/// Extract the `|Description=` field from a wiki `{{Information …}}`
/// comment — region ③ of Fig. 2. Returns an empty string when the
/// pattern is absent.
pub fn extract_comment_description(comment: &str) -> &str {
    let Some(pos) = comment.find("|Description=") else {
        return "";
    };
    let after = &comment[pos + "|Description=".len()..];
    let end = after
        .find('|')
        .unwrap_or_else(|| after.find("}}").unwrap_or(after.len()));
    after[..end].trim()
}

/// Build the linking text of a document: regions ①–③ of Fig. 2 joined
/// with periods (sentence separators keep phrase matching from spanning
/// field boundaries).
pub fn linking_text(doc: &ImageDoc) -> String {
    let mut parts: Vec<String> = Vec::new();
    parts.push(doc.name_without_extension().to_owned());
    if let Some(en) = doc.section("en") {
        if !en.description.is_empty() {
            parts.push(en.description.clone());
        }
        if !en.comment.is_empty() {
            parts.push(en.comment.clone());
        }
        for c in &en.captions {
            if !c.text.is_empty() {
                parts.push(c.text.clone());
            }
        }
    }
    let cd = extract_comment_description(&doc.comment);
    if !cd.is_empty() {
        parts.push(cd.to_owned());
    }
    parts.join(" . ")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example document of the paper's Fig. 2 (abridged).
    const FIG2: &str = r#"<?xml version="1.0" encoding="UTF-8" ?>
<image id="82531" file="images/9/82531.jpg">
   <name>Field Hamois Belgium Luc Viatour.jpg</name>
  <text xml:lang="en">
         <description>Summer field in Belgium (Hamois). The blue flower is Centaurea cyanus.</description>
          <comment />
          <caption article="text/en/1/302887">Summer field in Belgium (Hamois).</caption>
          <caption article="text/en/1/303807">A field in summer.</caption>
 </text>
 <text xml:lang="de">
          <description>Ein blühendes Feld in Belgien.</description>
          <comment />
          <caption article="text/de/1/404730">Ein Feld im Sommer</caption>
 </text>
 <text xml:lang="fr">
          <description>Un champ en été en Belgique (Hamois).</description>
          <comment />
          <caption article="text/fr/4/535372">un champ en été </caption>
 </text>
 <comment>({{Information |Description= Flowers in Belgium |Source= Flickr |Date= 1/1/85 |Author= JA |Permission= GFDL |other_versions= }})</comment>
 <license>GFDL</license>
</image>"#;

    #[test]
    fn parses_fig2_document() {
        let d = parse_image_doc(FIG2).unwrap();
        assert_eq!(d.id, "82531");
        assert_eq!(d.file, "images/9/82531.jpg");
        assert_eq!(d.name, "Field Hamois Belgium Luc Viatour.jpg");
        assert_eq!(d.texts.len(), 3);
        assert_eq!(d.section("en").unwrap().captions.len(), 2);
        assert_eq!(d.section("de").unwrap().captions.len(), 1);
        assert_eq!(d.license, "GFDL");
        assert!(d.comment.contains("{{Information"));
    }

    #[test]
    fn comment_description_field() {
        let d = parse_image_doc(FIG2).unwrap();
        assert_eq!(
            extract_comment_description(&d.comment),
            "Flowers in Belgium"
        );
        assert_eq!(extract_comment_description("no markup here"), "");
        assert_eq!(
            extract_comment_description("{{Information |Description= Only field }}"),
            "Only field"
        );
    }

    #[test]
    fn linking_text_takes_regions_1_2_3() {
        let d = parse_image_doc(FIG2).unwrap();
        let text = linking_text(&d);
        // ① name without extension.
        assert!(text.contains("Field Hamois Belgium Luc Viatour"));
        assert!(!text.contains(".jpg"));
        // ② English section only.
        assert!(text.contains("Summer field in Belgium"));
        assert!(text.contains("A field in summer"));
        assert!(!text.contains("blühendes"), "German must be excluded");
        assert!(!text.contains("champ"), "French must be excluded");
        // ③ comment description only (not Source/Author).
        assert!(text.contains("Flowers in Belgium"));
        assert!(!text.contains("Flickr"));
    }

    #[test]
    fn rejects_non_image_root() {
        assert!(parse_image_doc("<other/>").is_err());
    }

    #[test]
    fn tolerates_missing_sections() {
        let d =
            parse_image_doc("<image id=\"1\" file=\"f.jpg\"><name>n.jpg</name></image>").unwrap();
        assert_eq!(linking_text(&d), "n");
        assert!(d.section("en").is_none());
    }

    #[test]
    fn english_comment_is_included() {
        let xml = r#"<image id="2" file="f.jpg"><name>x.png</name>
            <text xml:lang="en"><description>D</description><comment>English note</comment></text>
        </image>"#;
        let d = parse_image_doc(xml).unwrap();
        let text = linking_text(&d);
        assert!(text.contains("English note"));
    }
}
