//! The title dictionary: normalized article titles → article ids.
//!
//! Includes *all* articles — redirects too, since a redirect title is a
//! legitimate surface form of its main article ("articles with the less
//! used/common titles (redirect articles) point to the article with the
//! most common title", §1). The dictionary also records the maximum
//! title width in tokens, which bounds the linker's n-gram scan.

use querygraph_text::{tokenize, Interner};
use querygraph_wiki::{ArticleId, KnowledgeBase};
use std::collections::HashMap;

/// Immutable lookup table from normalized title phrases to articles.
#[derive(Debug)]
pub struct TitleDictionary {
    /// normalized title → article.
    by_title: HashMap<String, ArticleId>,
    /// Longest title, in tokens.
    max_tokens: usize,
    /// Terms that occur as the first token of some title — a cheap
    /// pre-filter that lets the linker skip windows that cannot start a
    /// title.
    first_tokens: Interner,
}

impl TitleDictionary {
    /// Build the dictionary for a knowledge base.
    pub fn build(kb: &KnowledgeBase) -> Self {
        let mut by_title = HashMap::with_capacity(kb.num_articles());
        let mut max_tokens = 1;
        let mut first_tokens = Interner::new();
        for a in kb.articles() {
            let toks = tokenize(kb.title(a));
            if toks.is_empty() {
                continue; // unreachable for validated KBs
            }
            max_tokens = max_tokens.max(toks.len());
            first_tokens.intern(&toks[0]);
            by_title.insert(toks.join(" "), a);
        }
        TitleDictionary {
            by_title,
            max_tokens,
            first_tokens,
        }
    }

    /// Look up a normalized phrase (tokens joined by single spaces).
    pub fn get(&self, normalized_phrase: &str) -> Option<ArticleId> {
        self.by_title.get(normalized_phrase).copied()
    }

    /// Longest title width in tokens.
    pub fn max_tokens(&self) -> usize {
        self.max_tokens
    }

    /// True when some title starts with this token — used to prune the
    /// scan.
    pub fn could_start_title(&self, token: &str) -> bool {
        self.first_tokens.get(token).is_some()
    }

    /// Number of distinct (normalized) titles.
    pub fn len(&self) -> usize {
        self.by_title.len()
    }

    /// True when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.by_title.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querygraph_wiki::fixture::venice_mini_wiki;

    #[test]
    fn contains_all_fixture_titles() {
        let kb = venice_mini_wiki();
        let d = TitleDictionary::build(&kb);
        assert_eq!(d.len(), kb.num_articles());
        for a in kb.articles() {
            let toks = tokenize(kb.title(a));
            assert_eq!(d.get(&toks.join(" ")), Some(a), "missing {}", kb.title(a));
        }
    }

    #[test]
    fn max_tokens_covers_longest_title() {
        let kb = venice_mini_wiki();
        let d = TitleDictionary::build(&kb);
        // "Hand-colouring of photographs" → 4 tokens.
        assert!(d.max_tokens() >= 4);
    }

    #[test]
    fn first_token_prefilter() {
        let kb = venice_mini_wiki();
        let d = TitleDictionary::build(&kb);
        assert!(d.could_start_title("grand")); // Grand Canal (Venice)
        assert!(d.could_start_title("bridge")); // Bridge of Sighs
        assert!(!d.could_start_title("zebra"));
    }

    #[test]
    fn lookup_is_normalized_form_only() {
        let kb = venice_mini_wiki();
        let d = TitleDictionary::build(&kb);
        assert_eq!(
            d.get("grand canal venice"),
            kb.article_by_title("Grand Canal (Venice)")
        );
        assert_eq!(d.get("Grand Canal (Venice)"), None, "raw form must miss");
    }

    #[test]
    fn redirect_titles_are_present() {
        let kb = venice_mini_wiki();
        let d = TitleDictionary::build(&kb);
        let r = d.get("ponte dei sospiri").unwrap();
        assert!(kb.is_redirect(r));
    }
}
