//! # querygraph-link
//!
//! Entity linking against Wikipedia article titles — §2.1 of the paper.
//!
//! "The entity linking process consists in identifying the set of the
//! largest substrings in the input query that matches with the title of
//! an article in Wikipedia." This crate implements that as a greedy
//! leftmost-longest scan of the normalized token stream against a
//! [`dictionary::TitleDictionary`], plus the paper's synonym-phrase
//! refinement: "we derive a synonym phrase by replacing at least one
//! term of the input text by a synonymous term", where synonyms come
//! from Wikipedia redirects.
//!
//! ```
//! use querygraph_link::EntityLinker;
//! use querygraph_wiki::fixture::venice_mini_wiki;
//!
//! let kb = venice_mini_wiki();
//! let linker = EntityLinker::new(&kb);
//! let arts = linker.link_articles("gondola in venice");
//! let titles: Vec<&str> = arts.iter().map(|&a| kb.title(a)).collect();
//! assert!(titles.contains(&"Gondola"));
//! assert!(titles.contains(&"Venice"));
//! ```

pub mod dictionary;
pub mod linker;
pub mod mention;
pub mod synonyms;

pub use dictionary::TitleDictionary;
pub use linker::EntityLinker;
pub use mention::Mention;
