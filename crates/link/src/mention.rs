//! Linked mentions: where in the token stream an article was found.

use querygraph_wiki::ArticleId;

/// One entity mention found by the linker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mention {
    /// The matched article (may be a redirect article; callers resolve).
    pub article: ArticleId,
    /// Start token index in the normalized input.
    pub start: usize,
    /// Width in tokens.
    pub len: usize,
    /// True when the match came from a synonym phrase rather than the
    /// literal input (§2.1's redirect-derived variants).
    pub via_synonym: bool,
}

impl Mention {
    /// One-past-the-end token index.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// True when this mention overlaps `other` in the token stream.
    pub fn overlaps(&self, other: &Mention) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(start: usize, len: usize) -> Mention {
        Mention {
            article: ArticleId(0),
            start,
            len,
            via_synonym: false,
        }
    }

    #[test]
    fn end_is_exclusive() {
        assert_eq!(m(2, 3).end(), 5);
    }

    #[test]
    fn overlap_cases() {
        assert!(m(0, 3).overlaps(&m(2, 2)));
        assert!(m(2, 2).overlaps(&m(0, 3)));
        assert!(!m(0, 2).overlaps(&m(2, 2))); // adjacent, not overlapping
        assert!(m(1, 5).overlaps(&m(2, 1))); // containment
    }
}
