//! The greedy leftmost-longest entity linker with synonym-phrase
//! refinement (§2.1).
//!
//! ## Base pass
//!
//! The input is normalized and tokenized; at each token the linker tries
//! windows of decreasing width (bounded by the longest title in the
//! dictionary). The first window that matches a title becomes a mention
//! and the scan resumes after it — "the set of the largest substrings in
//! the input … that matches with the title of an article". Windows
//! consisting solely of stopwords are never linked.
//!
//! ## Synonym pass
//!
//! For every base-pass mention, each synonym surface form of its main
//! article (derived from redirects) is substituted into the token stream
//! and the neighbourhood re-scanned. A substitution can complete a
//! longer title — e.g. `"regata of valdria"` only matches the article
//! `"Regatta of Valdria"` after `regata → regatta`. New articles found
//! this way are reported with `via_synonym = true`.

use crate::dictionary::TitleDictionary;
use crate::mention::Mention;
use crate::synonyms::synonyms_for_term;
use querygraph_text::{is_stopword, tokenize};
use querygraph_wiki::{ArticleId, KnowledgeBase};

/// The entity linker. Borrows the knowledge base; build once per KB and
/// reuse (dictionary construction is the expensive part).
pub struct EntityLinker<'kb> {
    kb: &'kb KnowledgeBase,
    dict: TitleDictionary,
    use_synonyms: bool,
    resolve_redirects: bool,
}

impl<'kb> EntityLinker<'kb> {
    /// Linker with the paper's behaviour: synonym phrases on, redirect
    /// mentions resolved to their main articles.
    pub fn new(kb: &'kb KnowledgeBase) -> Self {
        EntityLinker {
            kb,
            dict: TitleDictionary::build(kb),
            use_synonyms: true,
            resolve_redirects: true,
        }
    }

    /// Disable the synonym pass (ablation studies).
    pub fn without_synonyms(mut self) -> Self {
        self.use_synonyms = false;
        self
    }

    /// Keep redirect articles as-is instead of resolving to mains.
    pub fn keep_redirects(mut self) -> Self {
        self.resolve_redirects = false;
        self
    }

    /// The underlying dictionary.
    pub fn dictionary(&self) -> &TitleDictionary {
        &self.dict
    }

    /// Link `text`, returning mentions in token order (synonym-derived
    /// mentions after base mentions).
    pub fn link(&self, text: &str) -> Vec<Mention> {
        let tokens = tokenize(text);
        let mut mentions = self.scan(&tokens, false);

        if self.use_synonyms {
            let mut extra = Vec::new();
            let seen: Vec<ArticleId> = mentions.iter().map(|m| self.final_article(m)).collect();
            for m in &mentions {
                let main = self.kb.resolve_redirect(m.article);
                let surface = tokens[m.start..m.end()].join(" ");
                for syn in synonyms_for_term(self.kb, &surface) {
                    let syn_tokens = tokenize(&syn);
                    if syn_tokens.is_empty() {
                        continue;
                    }
                    // Substitute and rescan the whole variant stream —
                    // a substitution can complete titles that span the
                    // replaced region.
                    let mut variant: Vec<String> =
                        Vec::with_capacity(tokens.len() - m.len + syn_tokens.len());
                    variant.extend_from_slice(&tokens[..m.start]);
                    variant.extend(syn_tokens.iter().cloned());
                    variant.extend_from_slice(&tokens[m.end()..]);
                    for vm in self.scan(&variant, true) {
                        let fa = self.final_article(&vm);
                        if fa == main || seen.contains(&fa) {
                            continue;
                        }
                        if extra.iter().any(|e: &Mention| self.final_article(e) == fa) {
                            continue;
                        }
                        // Report the mention at the site of the original
                        // surface form.
                        extra.push(Mention {
                            article: vm.article,
                            start: m.start,
                            len: m.len,
                            via_synonym: true,
                        });
                    }
                }
            }
            mentions.extend(extra);
        }
        mentions
    }

    /// The distinct articles mentioned in `text` — the paper's `L(·)`.
    /// Redirects are resolved (unless configured otherwise) and the
    /// output is sorted by article id.
    pub fn link_articles(&self, text: &str) -> Vec<ArticleId> {
        let mut out: Vec<ArticleId> = self
            .link(text)
            .iter()
            .map(|m| self.final_article(m))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn final_article(&self, m: &Mention) -> ArticleId {
        if self.resolve_redirects {
            self.kb.resolve_redirect(m.article)
        } else {
            m.article
        }
    }

    /// Greedy leftmost-longest scan of a token stream.
    fn scan(&self, tokens: &[String], via_synonym: bool) -> Vec<Mention> {
        let mut mentions = Vec::new();
        let max_w = self.dict.max_tokens();
        let mut i = 0;
        while i < tokens.len() {
            if !self.dict.could_start_title(&tokens[i]) {
                i += 1;
                continue;
            }
            let mut matched = false;
            let widest = max_w.min(tokens.len() - i);
            for w in (1..=widest).rev() {
                let window = &tokens[i..i + w];
                if window.iter().all(|t| is_stopword(t)) {
                    continue;
                }
                let phrase = window.join(" ");
                if let Some(article) = self.dict.get(&phrase) {
                    mentions.push(Mention {
                        article,
                        start: i,
                        len: w,
                        via_synonym,
                    });
                    i += w;
                    matched = true;
                    break;
                }
            }
            if !matched {
                i += 1;
            }
        }
        mentions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use querygraph_wiki::fixture::venice_mini_wiki;
    use querygraph_wiki::KbBuilder;

    fn titles(kb: &KnowledgeBase, arts: &[ArticleId]) -> Vec<String> {
        arts.iter().map(|&a| kb.title(a).to_owned()).collect()
    }

    #[test]
    fn links_the_paper_query() {
        let kb = venice_mini_wiki();
        let linker = EntityLinker::new(&kb);
        let arts = linker.link_articles("gondola in venice");
        let t = titles(&kb, &arts);
        assert!(t.contains(&"Gondola".to_string()));
        assert!(t.contains(&"Venice".to_string()));
        assert_eq!(arts.len(), 2, "'in' must not link: {t:?}");
    }

    #[test]
    fn longest_match_wins() {
        let kb = venice_mini_wiki();
        let linker = EntityLinker::new(&kb);
        // "grand canal venice" is a full title; must not split into
        // pieces.
        let mentions = linker.link("the grand canal venice at dawn");
        let full = mentions
            .iter()
            .find(|m| kb.title(m.article) == "Grand Canal (Venice)");
        assert!(full.is_some(), "expected full-title match");
        assert_eq!(full.unwrap().len, 3);
    }

    #[test]
    fn multiword_title_with_stopword_inside() {
        let kb = venice_mini_wiki();
        let linker = EntityLinker::new(&kb);
        let arts = linker.link_articles("the bridge of sighs at night");
        let t = titles(&kb, &arts);
        assert!(t.contains(&"Bridge of Sighs".to_string()));
    }

    #[test]
    fn redirect_mentions_resolve_to_main() {
        let kb = venice_mini_wiki();
        let linker = EntityLinker::new(&kb);
        let arts = linker.link_articles("ponte dei sospiri in spring");
        let t = titles(&kb, &arts);
        assert!(t.contains(&"Bridge of Sighs".to_string()));
        assert!(!t.contains(&"Ponte dei Sospiri".to_string()));
    }

    #[test]
    fn keep_redirects_mode() {
        let kb = venice_mini_wiki();
        let linker = EntityLinker::new(&kb).keep_redirects();
        let arts = linker.link_articles("ponte dei sospiri");
        let t = titles(&kb, &arts);
        assert_eq!(t, vec!["Ponte dei Sospiri".to_string()]);
    }

    #[test]
    fn stopword_only_windows_never_link() {
        let mut b = KbBuilder::new();
        let a = b.add_article("The Wall"); // contains a stopword, but not only
        let c = b.add_category("Albums");
        b.belongs(a, c);
        let kb = b.build().unwrap();
        let linker = EntityLinker::new(&kb);
        // Stopword-only text must not match anything.
        assert!(linker.link_articles("the and of the it").is_empty());
        assert_eq!(linker.link_articles("the wall played").len(), 1);
    }

    #[test]
    fn all_stopword_titles_are_unreachable() {
        // A title consisting solely of stopwords can never be linked —
        // the deliberate trade-off of the stopword guard.
        let mut b = KbBuilder::new();
        let a = b.add_article("The Who");
        let c = b.add_category("Bands");
        b.belongs(a, c);
        let kb = b.build().unwrap();
        let linker = EntityLinker::new(&kb);
        assert!(linker.link_articles("the who played").is_empty());
    }

    #[test]
    fn no_mentions_in_unrelated_text() {
        let kb = venice_mini_wiki();
        let linker = EntityLinker::new(&kb);
        assert!(linker
            .link_articles("completely unrelated words here")
            .is_empty());
        assert!(linker.link_articles("").is_empty());
    }

    #[test]
    fn mentions_do_not_overlap_in_base_pass() {
        let kb = venice_mini_wiki();
        let linker = EntityLinker::new(&kb).without_synonyms();
        let mentions = linker.link("venice gondola grand canal venice bridge of sighs");
        for (i, a) in mentions.iter().enumerate() {
            for b in &mentions[i + 1..] {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn synonym_substitution_completes_longer_title() {
        // Build a KB where "regata of valdria" only matches after the
        // synonym regata → regatta is substituted.
        let mut b = KbBuilder::new();
        let regatta = b.add_article("Regatta");
        let rov = b.add_article("Regatta of Valdria");
        let c = b.add_category("Events");
        b.belongs(regatta, c);
        b.belongs(rov, c);
        b.add_redirect("Regata", regatta);
        let kb = b.build().unwrap();

        let with = EntityLinker::new(&kb);
        let arts = with.link_articles("regata of valdria");
        let t = titles(&kb, &arts);
        assert!(
            t.contains(&"Regatta of Valdria".to_string()),
            "synonym pass should complete the long title, got {t:?}"
        );

        let without = EntityLinker::new(&kb).without_synonyms();
        let arts2 = without.link_articles("regata of valdria");
        let t2 = titles(&kb, &arts2);
        assert!(
            !t2.contains(&"Regatta of Valdria".to_string()),
            "without synonyms the long title is unreachable, got {t2:?}"
        );
    }

    #[test]
    fn synonym_mentions_are_flagged() {
        let mut b = KbBuilder::new();
        let regatta = b.add_article("Regatta");
        let rov = b.add_article("Regatta of Valdria");
        let c = b.add_category("Events");
        b.belongs(regatta, c);
        b.belongs(rov, c);
        b.add_redirect("Regata", regatta);
        let kb = b.build().unwrap();
        let linker = EntityLinker::new(&kb);
        let mentions = linker.link("regata of valdria");
        assert!(mentions.iter().any(|m| m.via_synonym));
        assert!(mentions.iter().any(|m| !m.via_synonym));
    }

    #[test]
    fn link_articles_is_sorted_dedup() {
        let kb = venice_mini_wiki();
        let linker = EntityLinker::new(&kb);
        let arts = linker.link_articles("venice venice venice gondola venice");
        assert_eq!(arts.len(), 2);
        assert!(arts.windows(2).all(|w| w[0] < w[1]));
    }
}
