//! Redirect-derived synonyms (§2.1).
//!
//! "Given a term t, we retrieve (if it exists) the article a from
//! Wikipedia whose title is equal to t. Then, the synonyms of t are the
//! titles of the redirects of a." Symmetrically, when `t` is itself a
//! redirect title, the main article's title (and its sibling redirects)
//! are synonyms — that is what lets "regata" reach "Regatta".

use querygraph_text::normalize;
use querygraph_wiki::KnowledgeBase;

/// Synonym surface forms for a term (normalized output, the term itself
/// excluded). Empty when the term matches no title.
pub fn synonyms_for_term(kb: &KnowledgeBase, term: &str) -> Vec<String> {
    let norm = normalize(term);
    let Some(article) = kb.article_by_normalized_title(&norm) else {
        return Vec::new();
    };
    let main = kb.resolve_redirect(article);
    let mut out = Vec::new();
    // The main title (unless the term *is* the main title).
    let main_title = normalize(kb.title(main));
    if main_title != norm {
        out.push(main_title);
    }
    // Every redirect title other than the input itself.
    for r in kb.redirects_of(main) {
        let t = normalize(kb.title(*r));
        if t != norm {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use querygraph_wiki::fixture::venice_mini_wiki;

    #[test]
    fn main_title_yields_redirect_titles() {
        let kb = venice_mini_wiki();
        let syns = synonyms_for_term(&kb, "Venice");
        assert_eq!(syns, vec!["la serenissima"]);
    }

    #[test]
    fn redirect_title_yields_main() {
        let kb = venice_mini_wiki();
        let syns = synonyms_for_term(&kb, "Regata");
        assert_eq!(syns, vec!["regatta"]);
    }

    #[test]
    fn unknown_term_has_no_synonyms() {
        let kb = venice_mini_wiki();
        assert!(synonyms_for_term(&kb, "zebra").is_empty());
    }

    #[test]
    fn article_without_redirects() {
        let kb = venice_mini_wiki();
        assert!(synonyms_for_term(&kb, "Sheep").is_empty());
    }

    #[test]
    fn normalization_applies_to_input() {
        let kb = venice_mini_wiki();
        assert_eq!(synonyms_for_term(&kb, "VENICE!"), vec!["la serenissima"]);
    }
}
