//! Mutable edge-list builder that freezes into an immutable
//! [`TypedGraph`].

use crate::csr::TypedGraph;
use crate::edge::EdgeType;

/// Accumulates nodes and typed directed edges, then [`GraphBuilder::build`]s
/// a CSR graph.
///
/// Exact duplicate edges (same source, target *and* type) are
/// deduplicated at build time: the Wikipedia model treats relations as
/// sets, and duplicate wiki-links inside one article body carry no extra
/// structure. Parallel edges of *different* types (or opposite
/// directions) are preserved — they are what makes length-2 cycles
/// possible.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(u32, u32, EdgeType)>,
}

impl GraphBuilder {
    /// Builder for a graph with `n` pre-allocated nodes (ids `0..n`).
    pub fn new(n: u32) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Builder with an edge-capacity hint.
    pub fn with_capacity(n: u32, edges: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(edges),
        }
    }

    /// Append a fresh node, returning its id.
    pub fn add_node(&mut self) -> u32 {
        let id = self.n;
        self.n += 1;
        id
    }

    /// Current node count.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Number of staged (pre-dedup) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a directed typed edge. Self-loops are rejected (the Wikipedia
    /// schema has none and every algorithm in this crate assumes their
    /// absence).
    ///
    /// # Panics
    /// If `src`/`dst` are out of range or equal.
    pub fn add_edge(&mut self, src: u32, dst: u32, ty: EdgeType) {
        assert!(src < self.n, "source {src} out of range (n={})", self.n);
        assert!(dst < self.n, "target {dst} out of range (n={})", self.n);
        assert_ne!(src, dst, "self-loops are not representable in the schema");
        self.edges.push((src, dst, ty));
    }

    /// Freeze into an immutable CSR graph.
    pub fn build(mut self) -> TypedGraph {
        self.edges
            .sort_unstable_by_key(|&(s, d, t)| (s, d, t.as_u8()));
        self.edges.dedup();
        TypedGraph::from_sorted_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_node_extends_range() {
        let mut b = GraphBuilder::new(1);
        let id = b.add_node();
        assert_eq!(id, 1);
        b.add_edge(0, 1, EdgeType::Link);
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn exact_duplicates_are_removed() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(0, 1, EdgeType::Link);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn different_types_between_same_pair_are_kept() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(0, 1, EdgeType::Redirect);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 0, EdgeType::Link);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 5, EdgeType::Link);
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
