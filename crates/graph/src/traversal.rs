//! Breadth-first traversals over the undirected cycle view.
//!
//! Used by the analysis layer to measure how far expansion features sit
//! from the original query articles ("expansion features being up to
//! distance three from query articles", §3).

use crate::csr::TypedGraph;
use std::collections::VecDeque;

/// Distance label for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Multi-source BFS over the undirected cycle view. Returns one distance
/// per node; sources have distance 0; unreachable nodes get
/// [`UNREACHABLE`].
pub fn bfs_distances(g: &TypedGraph, sources: &[u32]) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count() as usize];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s as usize] == UNREACHABLE {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.und_neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The maximum finite BFS distance from `sources` to any node of
/// `targets`; `None` when no target is reachable or `targets` is empty.
pub fn max_distance_to(g: &TypedGraph, sources: &[u32], targets: &[u32]) -> Option<u32> {
    let dist = bfs_distances(g, sources);
    targets
        .iter()
        .map(|&t| dist[t as usize])
        .filter(|&d| d != UNREACHABLE)
        .max()
}

/// All nodes within `radius` hops of `sources` (including the sources),
/// ascending.
pub fn ball(g: &TypedGraph, sources: &[u32], radius: u32) -> Vec<u32> {
    bfs_distances(g, sources)
        .into_iter()
        .enumerate()
        .filter(|&(_, d)| d != UNREACHABLE && d <= radius)
        .map(|(i, _)| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeType, GraphBuilder};

    fn chain() -> TypedGraph {
        // 0 - 1 - 2 - 3 (links), 4 isolated, 5 -redirect-> 0.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 2, EdgeType::Link);
        b.add_edge(2, 3, EdgeType::Link);
        b.add_edge(5, 0, EdgeType::Redirect);
        b.build()
    }

    #[test]
    fn single_source_distances() {
        let d = bfs_distances(&chain(), &[0]);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[3], 3);
        assert_eq!(d[4], UNREACHABLE);
        // Redirect edges are not traversed.
        assert_eq!(d[5], UNREACHABLE);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let d = bfs_distances(&chain(), &[0, 3]);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 1);
    }

    #[test]
    fn max_distance_to_targets() {
        let g = chain();
        assert_eq!(max_distance_to(&g, &[0], &[2, 3]), Some(3));
        assert_eq!(max_distance_to(&g, &[0], &[4]), None);
        assert_eq!(max_distance_to(&g, &[0], &[]), None);
    }

    #[test]
    fn ball_radius() {
        let g = chain();
        assert_eq!(ball(&g, &[1], 1), vec![0, 1, 2]);
        assert_eq!(ball(&g, &[1], 0), vec![1]);
        assert_eq!(ball(&g, &[1], 10), vec![0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_sources_are_fine() {
        let d = bfs_distances(&chain(), &[0, 0, 0]);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
    }
}
