//! Connected components of the undirected view of a graph.
//!
//! The paper observes (§3, Table 3) that query graphs are "disconnected
//! graphs composed by a moderately large connected component"; every
//! Table 3 statistic is computed on that largest component. Components
//! here treat *all* edge types as undirected connections (including
//! `Redirect`, which attaches a redirect article to its main article in
//! the query graph), unlike the cycle view which excludes redirects.

use crate::csr::TypedGraph;
use crate::unionfind::UnionFind;

/// A labeling of every node with a dense component id, plus component
/// sizes.
#[derive(Debug, Clone)]
pub struct Components {
    /// `assignment[node] = component id`, ids dense from 0.
    pub assignment: Vec<u32>,
    /// `sizes[component id] = member count`.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Id of the largest component (ties broken by lower id, which is
    /// deterministic because ids are assigned in node order).
    pub fn largest(&self) -> Option<u32> {
        if self.sizes.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &s) in self.sizes.iter().enumerate() {
            if s > self.sizes[best] {
                best = i;
            }
        }
        Some(best as u32)
    }

    /// All members of component `c`, in ascending node order.
    pub fn members(&self, c: u32) -> Vec<u32> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Members of the largest component (empty for an empty graph).
    pub fn largest_members(&self) -> Vec<u32> {
        match self.largest() {
            Some(c) => self.members(c),
            None => Vec::new(),
        }
    }
}

/// Compute connected components treating every edge (all types) as
/// undirected.
pub fn connected_components(g: &TypedGraph) -> Components {
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    for (s, d, _) in g.edges() {
        uf.union(s, d);
    }
    relabel(&mut uf, n)
}

/// Components over the cycle view only (redirect edges ignored). Used by
/// analyses that ask "is this node structurally connected, not merely a
/// redirect alias".
pub fn connected_components_cycle_view(g: &TypedGraph) -> Components {
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    for u in 0..n {
        for &v in g.und_neighbors(u) {
            if u < v {
                uf.union(u, v);
            }
        }
    }
    relabel(&mut uf, n)
}

fn relabel(uf: &mut UnionFind, n: u32) -> Components {
    let mut label_of_root = vec![u32::MAX; n as usize];
    let mut assignment = vec![0u32; n as usize];
    let mut sizes = Vec::new();
    for u in 0..n {
        let root = uf.find(u);
        let label = if label_of_root[root as usize] == u32::MAX {
            let l = sizes.len() as u32;
            label_of_root[root as usize] = l;
            sizes.push(0usize);
            l
        } else {
            label_of_root[root as usize]
        };
        assignment[u as usize] = label;
        sizes[label as usize] += 1;
    }
    Components { assignment, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeType, GraphBuilder};

    fn two_components() -> TypedGraph {
        // Component A: 0-1-2 (links + belongs). Component B: 3-4
        // (redirect only). Node 5 isolated.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 2, EdgeType::Belongs);
        b.add_edge(3, 4, EdgeType::Redirect);
        b.build()
    }

    #[test]
    fn counts_components_with_redirects() {
        let c = connected_components(&two_components());
        assert_eq!(c.count(), 3);
        assert_eq!(c.sizes.iter().sum::<usize>(), 6);
    }

    #[test]
    fn largest_component_members() {
        let c = connected_components(&two_components());
        assert_eq!(c.largest_members(), vec![0, 1, 2]);
    }

    #[test]
    fn cycle_view_drops_redirect_connectivity() {
        let c = connected_components_cycle_view(&two_components());
        // 3 and 4 are now separate singletons: 0-1-2, {3}, {4}, {5}.
        assert_eq!(c.count(), 4);
        assert_eq!(c.largest_members(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let c = connected_components(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest(), None);
        assert!(c.largest_members().is_empty());
    }

    #[test]
    fn fully_connected_single_component() {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    b.add_edge(u, v, EdgeType::Link);
                }
            }
        }
        let c = connected_components(&b.build());
        assert_eq!(c.count(), 1);
        assert_eq!(c.sizes[0], 4);
    }

    proptest::proptest! {
        /// Union-find labelling must agree with a BFS reference on
        /// random graphs: same partition (up to label renaming).
        #[test]
        fn matches_bfs_reference(
            edges in proptest::collection::vec((0u32..12, 0u32..12), 0..30),
        ) {
            let mut b = GraphBuilder::new(12);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v, EdgeType::Link);
                }
            }
            let g = b.build();
            let c = connected_components(&g);
            // BFS reference over the undirected view.
            let mut label = [u32::MAX; 12];
            let mut next = 0u32;
            for s in 0..12u32 {
                if label[s as usize] != u32::MAX {
                    continue;
                }
                let mut queue = vec![s];
                label[s as usize] = next;
                while let Some(u) = queue.pop() {
                    for &v in g.und_neighbors(u) {
                        if label[v as usize] == u32::MAX {
                            label[v as usize] = next;
                            queue.push(v);
                        }
                    }
                }
                next += 1;
            }
            // Same partition: nodes share a component iff they share a
            // BFS label.
            for u in 0..12usize {
                for v in 0..12usize {
                    proptest::prop_assert_eq!(
                        c.assignment[u] == c.assignment[v],
                        label[u] == label[v],
                        "nodes {} and {}", u, v
                    );
                }
            }
        }
    }

    #[test]
    fn assignment_is_dense_in_node_order() {
        let c = connected_components(&two_components());
        // First seen node gets component 0, etc.
        assert_eq!(c.assignment[0], 0);
        assert_eq!(c.assignment[3], 1);
        assert_eq!(c.assignment[5], 2);
    }
}
