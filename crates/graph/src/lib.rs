//! # querygraph-graph
//!
//! Compact typed-multigraph storage plus the structural algorithms the
//! paper's analysis (§3) is built on:
//!
//! * [`TypedGraph`] — an immutable CSR (compressed sparse row) graph whose
//!   edges carry an [`EdgeType`] (`Link`, `Belongs`, `Inside`,
//!   `Redirect`), built through [`GraphBuilder`]. Directed storage with an
//!   undirected *cycle view* that excludes `Redirect` edges, since
//!   redirects can never close a cycle (paper §4, Fig. 1).
//! * [`components`] — connected components and largest-component
//!   extraction (Table 3 of the paper).
//! * [`triangles`] — triangle participation ratio, the TPR ≈ 0.3
//!   observation of §3.
//! * [`cycles`] — enumeration of simple cycles of bounded length (≤ 5 in
//!   the paper), the central primitive of the whole analysis.
//! * [`subgraph`] — induced subgraphs with node mappings (query-graph
//!   assembly, §2.3).
//! * [`traversal`] — multi-source BFS distances ("expansion features up
//!   to distance three from query articles", §3).
//!
//! All algorithms operate on dense `u32` node ids ([`NodeId`]); the
//! Wikipedia layer (`querygraph-wiki`) maps articles and categories onto
//! them.
//!
//! ```
//! use querygraph_graph::{EdgeType, GraphBuilder, cycles::CycleFinder};
//!
//! // venice -- cannaregio with reciprocal links: a length-2 cycle.
//! let mut b = GraphBuilder::new(2);
//! b.add_edge(0, 1, EdgeType::Link);
//! b.add_edge(1, 0, EdgeType::Link);
//! let g = b.build();
//! let cycles = CycleFinder::new(&g).max_len(5).find_all();
//! assert_eq!(cycles.len(), 1);
//! assert_eq!(cycles[0].nodes.len(), 2);
//! ```

pub mod builder;
pub mod components;
pub mod csr;
pub mod cycles;
pub mod edge;
pub mod ids;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod triangles;
pub mod unionfind;

pub use builder::GraphBuilder;
pub use csr::TypedGraph;
pub use edge::EdgeType;
pub use ids::NodeId;
