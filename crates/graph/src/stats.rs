//! Whole-graph structural statistics.
//!
//! Includes the reciprocity measurement behind the paper's "11.47 % of
//! all pairs of articles that are connected form a cycle of length 2"
//! observation (§3): among unordered node pairs joined by at least one
//! `Link` edge, the fraction joined in *both* directions.

use crate::csr::TypedGraph;
use crate::edge::EdgeType;

/// Summary of a [`TypedGraph`]'s size and per-type edge counts.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Total nodes.
    pub nodes: u32,
    /// Total directed edges.
    pub edges: usize,
    /// Directed edge count per [`EdgeType`], indexed by discriminant.
    pub edges_by_type: [usize; 4],
    /// Mean undirected (cycle-view) degree.
    pub mean_und_degree: f64,
    /// Maximum undirected degree.
    pub max_und_degree: usize,
}

/// Compute [`GraphStats`].
pub fn graph_stats(g: &TypedGraph) -> GraphStats {
    let mut edges_by_type = [0usize; 4];
    for (_, _, t) in g.edges() {
        edges_by_type[t.as_u8() as usize] += 1;
    }
    let n = g.node_count();
    let mut total_deg = 0usize;
    let mut max_deg = 0usize;
    for u in 0..n {
        let d = g.und_degree(u);
        total_deg += d;
        max_deg = max_deg.max(d);
    }
    GraphStats {
        nodes: n,
        edges: g.edge_count(),
        edges_by_type,
        mean_und_degree: if n == 0 {
            0.0
        } else {
            total_deg as f64 / n as f64
        },
        max_und_degree: max_deg,
    }
}

/// Link reciprocity: over unordered pairs `{u, v}` connected by at least
/// one `Link` edge, the fraction connected by `Link` edges in both
/// directions. Returns `None` when no linked pair exists.
///
/// This is the statistic the paper reports as 11.47 % for Wikipedia; the
/// synthetic generator in `querygraph-wiki` is calibrated against it.
pub fn link_reciprocity(g: &TypedGraph) -> Option<f64> {
    let mut connected_pairs = 0usize;
    let mut reciprocal_pairs = 0usize;
    for u in 0..g.node_count() {
        for (v, t) in g.out_edges(u) {
            if t != EdgeType::Link {
                continue;
            }
            let back = g.has_edge(v, u, EdgeType::Link);
            if back {
                // Count the reciprocal pair once, at the smaller id.
                if u < v {
                    connected_pairs += 1;
                    reciprocal_pairs += 1;
                }
            } else {
                connected_pairs += 1;
            }
        }
    }
    if connected_pairs == 0 {
        None
    } else {
        Some(reciprocal_pairs as f64 / connected_pairs as f64)
    }
}

/// Histogram of undirected degrees: `hist[d] = number of nodes with
/// undirected degree d`.
pub fn und_degree_histogram(g: &TypedGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for u in 0..g.node_count() {
        let d = g.und_degree(u);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_on_mixed_graph() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 0, EdgeType::Link);
        b.add_edge(0, 2, EdgeType::Belongs);
        b.add_edge(2, 3, EdgeType::Inside);
        let s = graph_stats(&b.build());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.edges_by_type, [2, 1, 1, 0]);
        assert_eq!(s.max_und_degree, 2);
    }

    #[test]
    fn reciprocity_half() {
        // Pairs: {0,1} reciprocal, {1,2} one-way → 1/2.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 0, EdgeType::Link);
        b.add_edge(1, 2, EdgeType::Link);
        assert_eq!(link_reciprocity(&b.build()), Some(0.5));
    }

    #[test]
    fn reciprocity_ignores_non_link_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, EdgeType::Belongs);
        assert_eq!(link_reciprocity(&b.build()), None);
    }

    #[test]
    fn reciprocity_all_reciprocal() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 0, EdgeType::Link);
        assert_eq!(link_reciprocity(&b.build()), Some(1.0));
    }

    #[test]
    fn degree_histogram() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeType::Link);
        let hist = und_degree_histogram(&b.build());
        assert_eq!(hist, vec![1, 2]); // one isolated node, two of degree 1
    }

    #[test]
    fn empty_graph_stats() {
        let s = graph_stats(&GraphBuilder::new(0).build());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.mean_und_degree, 0.0);
    }
}
