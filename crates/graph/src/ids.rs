//! Dense node identifiers.

use std::fmt;

/// A node in a [`crate::TypedGraph`], identified by a dense `u32` index.
///
/// Node ids are plain indexes into the graph's adjacency arrays; they are
/// assigned by whoever builds the graph (the Wikipedia layer maps articles
/// first, then categories, so article/category tests reduce to range
/// checks there).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let id = NodeId::from(42u32);
        assert_eq!(u32::from(id), 42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn ordering_follows_u32() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7), NodeId(7));
    }

    #[test]
    fn display_format() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}
