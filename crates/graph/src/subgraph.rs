//! Induced subgraphs with old↔new node mappings.
//!
//! Query-graph assembly (§2.3 of the paper) induces the Wikipedia
//! subgraph over X(q) ∪ {main articles} ∪ {categories}. The induced
//! subgraph keeps every edge whose endpoints are both selected,
//! preserving edge types.

use crate::csr::TypedGraph;
use crate::GraphBuilder;

/// An induced subgraph plus the mapping between its dense local ids and
/// the parent graph's ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The induced graph over local ids `0..to_parent.len()`.
    pub graph: TypedGraph,
    /// `to_parent[local] = parent id`; ascending (locals are assigned in
    /// parent-id order, so the mapping is monotonic).
    pub to_parent: Vec<u32>,
}

impl Subgraph {
    /// Map a parent node id to its local id, if selected.
    pub fn local_of(&self, parent: u32) -> Option<u32> {
        self.to_parent.binary_search(&parent).ok().map(|i| i as u32)
    }

    /// Map a local id back to the parent graph.
    pub fn parent_of(&self, local: u32) -> u32 {
        self.to_parent[local as usize]
    }

    /// Number of nodes in the subgraph.
    pub fn node_count(&self) -> u32 {
        self.graph.node_count()
    }
}

/// Induce the subgraph of `g` over `nodes` (duplicates ignored).
/// Edges of every type whose endpoints are both selected are kept.
pub fn induce(g: &TypedGraph, nodes: &[u32]) -> Subgraph {
    let mut selected: Vec<u32> = nodes.to_vec();
    selected.sort_unstable();
    selected.dedup();
    debug_assert!(selected.iter().all(|&u| u < g.node_count()));

    let mut local = vec![u32::MAX; g.node_count() as usize];
    for (i, &p) in selected.iter().enumerate() {
        local[p as usize] = i as u32;
    }

    let mut b = GraphBuilder::new(selected.len() as u32);
    for &p in &selected {
        for (q, t) in g.out_edges(p) {
            let lq = local[q as usize];
            if lq != u32::MAX {
                b.add_edge(local[p as usize], lq, t);
            }
        }
    }
    Subgraph {
        graph: b.build(),
        to_parent: selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeType;

    fn path_graph() -> TypedGraph {
        // 0 →link 1 →belongs 2 →inside 3, plus 4 →redirect 0
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 2, EdgeType::Belongs);
        b.add_edge(2, 3, EdgeType::Inside);
        b.add_edge(4, 0, EdgeType::Redirect);
        b.build()
    }

    #[test]
    fn induces_internal_edges_only() {
        let g = path_graph();
        let s = induce(&g, &[0, 1, 2]);
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.graph.edge_count(), 2); // 0→1, 1→2
    }

    #[test]
    fn preserves_edge_types() {
        let g = path_graph();
        let s = induce(&g, &[1, 2, 3]);
        let l1 = s.local_of(1).unwrap();
        let l2 = s.local_of(2).unwrap();
        let l3 = s.local_of(3).unwrap();
        assert!(s.graph.has_edge(l1, l2, EdgeType::Belongs));
        assert!(s.graph.has_edge(l2, l3, EdgeType::Inside));
    }

    #[test]
    fn mapping_round_trips() {
        let g = path_graph();
        let s = induce(&g, &[4, 2, 0]); // unsorted input
        assert_eq!(s.to_parent, vec![0, 2, 4]);
        for local in 0..s.node_count() {
            let parent = s.parent_of(local);
            assert_eq!(s.local_of(parent), Some(local));
        }
        assert_eq!(s.local_of(1), None);
    }

    #[test]
    fn duplicates_in_selection_ignored() {
        let g = path_graph();
        let s = induce(&g, &[0, 0, 1, 1]);
        assert_eq!(s.node_count(), 2);
    }

    #[test]
    fn empty_selection() {
        let g = path_graph();
        let s = induce(&g, &[]);
        assert_eq!(s.node_count(), 0);
        assert_eq!(s.graph.edge_count(), 0);
    }

    #[test]
    fn redirect_edges_survive_induction() {
        let g = path_graph();
        let s = induce(&g, &[0, 4]);
        let l4 = s.local_of(4).unwrap();
        let l0 = s.local_of(0).unwrap();
        assert!(s.graph.has_edge(l4, l0, EdgeType::Redirect));
    }
}
