//! Disjoint-set union (union-find) with path halving and union by size.

/// Union-find over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: u32) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n as usize],
            components: n as usize,
        }
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns true when they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.set_size(2), 1);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0)); // already merged
        assert_eq!(uf.component_count(), 2);
        assert!(uf.union(1, 2));
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 3));
        assert_eq!(uf.set_size(0), 4);
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(2, 3));
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
