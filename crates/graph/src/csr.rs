//! Immutable CSR (compressed sparse row) storage for typed directed
//! multigraphs, with a precomputed undirected *cycle view*.
//!
//! Three parallel adjacency structures are stored:
//!
//! * **out** — directed out-edges `(target, type)`, sorted per node;
//! * **in** — directed in-edges `(source, type)`, sorted per node;
//! * **und** — the undirected cycle view: for every node, the sorted,
//!   deduplicated set of neighbors reachable through *cycle-eligible*
//!   edges (everything except `Redirect`) in either direction. All cycle,
//!   triangle and density computations of the paper run on this view.

use crate::edge::EdgeType;

/// An immutable typed directed multigraph in CSR form. Construct through
/// [`crate::GraphBuilder`].
#[derive(Debug, Clone)]
pub struct TypedGraph {
    n: u32,
    edge_count: usize,
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    out_types: Vec<u8>,
    in_offsets: Vec<u32>,
    in_sources: Vec<u32>,
    in_types: Vec<u8>,
    und_offsets: Vec<u32>,
    und_neighbors: Vec<u32>,
}

impl TypedGraph {
    /// Build from an edge list that is already sorted by
    /// `(src, dst, type)` and deduplicated. Called by
    /// [`crate::GraphBuilder::build`].
    pub(crate) fn from_sorted_edges(n: u32, edges: &[(u32, u32, EdgeType)]) -> TypedGraph {
        let nu = n as usize;

        // Out-CSR: edges are already grouped by source.
        let mut out_offsets = vec![0u32; nu + 1];
        for &(s, _, _) in edges {
            out_offsets[s as usize + 1] += 1;
        }
        for i in 0..nu {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(edges.len());
        let mut out_types = Vec::with_capacity(edges.len());
        for &(_, d, t) in edges {
            out_targets.push(d);
            out_types.push(t.as_u8());
        }

        // In-CSR: counting sort by target.
        let mut in_offsets = vec![0u32; nu + 1];
        for &(_, d, _) in edges {
            in_offsets[d as usize + 1] += 1;
        }
        for i in 0..nu {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets[..nu].to_vec();
        let mut in_sources = vec![0u32; edges.len()];
        let mut in_types = vec![0u8; edges.len()];
        for &(s, d, t) in edges {
            let slot = cursor[d as usize] as usize;
            in_sources[slot] = s;
            in_types[slot] = t.as_u8();
            cursor[d as usize] += 1;
        }
        // Within each in-bucket, sort by (source, type) for binary search.
        for v in 0..nu {
            let (lo, hi) = (in_offsets[v] as usize, in_offsets[v + 1] as usize);
            let mut pairs: Vec<(u32, u8)> = in_sources[lo..hi]
                .iter()
                .copied()
                .zip(in_types[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (i, (s, t)) in pairs.into_iter().enumerate() {
                in_sources[lo + i] = s;
                in_types[lo + i] = t;
            }
        }

        // Undirected cycle view: unique neighbors over cycle-eligible
        // edges in either direction.
        let mut und_adj: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(s, d, t) in edges {
            if t.cycle_eligible() {
                und_adj.push((s, d));
                und_adj.push((d, s));
            }
        }
        und_adj.sort_unstable();
        und_adj.dedup();
        let mut und_offsets = vec![0u32; nu + 1];
        for &(s, _) in &und_adj {
            und_offsets[s as usize + 1] += 1;
        }
        for i in 0..nu {
            und_offsets[i + 1] += und_offsets[i];
        }
        let und_neighbors: Vec<u32> = und_adj.into_iter().map(|(_, d)| d).collect();

        TypedGraph {
            n,
            edge_count: edges.len(),
            out_offsets,
            out_targets,
            out_types,
            in_offsets,
            in_sources,
            in_types,
            und_offsets,
            und_neighbors,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Number of directed edges (after deduplication).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Directed out-edges of `u` as parallel `(targets, types)` slices,
    /// sorted by `(target, type)`.
    #[inline]
    pub fn out_edges(&self, u: u32) -> impl Iterator<Item = (u32, EdgeType)> + '_ {
        let (lo, hi) = (
            self.out_offsets[u as usize] as usize,
            self.out_offsets[u as usize + 1] as usize,
        );
        self.out_targets[lo..hi]
            .iter()
            .zip(&self.out_types[lo..hi])
            .map(|(&d, &t)| (d, EdgeType::from_u8(t).expect("valid stored type")))
    }

    /// Directed in-edges of `u` as `(source, type)`, sorted by
    /// `(source, type)`.
    #[inline]
    pub fn in_edges(&self, u: u32) -> impl Iterator<Item = (u32, EdgeType)> + '_ {
        let (lo, hi) = (
            self.in_offsets[u as usize] as usize,
            self.in_offsets[u as usize + 1] as usize,
        );
        self.in_sources[lo..hi]
            .iter()
            .zip(&self.in_types[lo..hi])
            .map(|(&s, &t)| (s, EdgeType::from_u8(t).expect("valid stored type")))
    }

    /// Out-degree of `u` (directed, all types).
    #[inline]
    pub fn out_degree(&self, u: u32) -> usize {
        (self.out_offsets[u as usize + 1] - self.out_offsets[u as usize]) as usize
    }

    /// In-degree of `u` (directed, all types).
    #[inline]
    pub fn in_degree(&self, u: u32) -> usize {
        (self.in_offsets[u as usize + 1] - self.in_offsets[u as usize]) as usize
    }

    /// Sorted unique neighbors of `u` in the undirected cycle view
    /// (redirect edges excluded).
    #[inline]
    pub fn und_neighbors(&self, u: u32) -> &[u32] {
        let (lo, hi) = (
            self.und_offsets[u as usize] as usize,
            self.und_offsets[u as usize + 1] as usize,
        );
        &self.und_neighbors[lo..hi]
    }

    /// Degree in the undirected cycle view.
    #[inline]
    pub fn und_degree(&self, u: u32) -> usize {
        self.und_neighbors(u).len()
    }

    /// True when `u` and `v` are adjacent in the undirected cycle view.
    #[inline]
    pub fn und_adjacent(&self, u: u32, v: u32) -> bool {
        self.und_neighbors(u).binary_search(&v).is_ok()
    }

    /// True when the directed edge `u → v` of type `ty` exists.
    pub fn has_edge(&self, u: u32, v: u32, ty: EdgeType) -> bool {
        let (lo, hi) = (
            self.out_offsets[u as usize] as usize,
            self.out_offsets[u as usize + 1] as usize,
        );
        let targets = &self.out_targets[lo..hi];
        let types = &self.out_types[lo..hi];
        // Edges are sorted by (target, type); scan the target's run.
        let start = targets.partition_point(|&t| t < v);
        let mut i = start;
        while i < targets.len() && targets[i] == v {
            if types[i] == ty.as_u8() {
                return true;
            }
            i += 1;
        }
        false
    }

    /// True when any directed edge `u → v` (any type) exists.
    pub fn has_any_edge(&self, u: u32, v: u32) -> bool {
        let (lo, hi) = (
            self.out_offsets[u as usize] as usize,
            self.out_offsets[u as usize + 1] as usize,
        );
        self.out_targets[lo..hi].binary_search(&v).is_ok()
    }

    /// Number of distinct directed cycle-eligible edges between `u` and
    /// `v`, counting both directions. A value ≥ 2 means the pair forms a
    /// length-2 cycle in the paper's sense (e.g. reciprocal wiki-links).
    pub fn pair_multiplicity(&self, u: u32, v: u32) -> usize {
        let count_dir = |a: u32, b: u32| {
            let (lo, hi) = (
                self.out_offsets[a as usize] as usize,
                self.out_offsets[a as usize + 1] as usize,
            );
            let targets = &self.out_targets[lo..hi];
            let types = &self.out_types[lo..hi];
            let start = targets.partition_point(|&t| t < b);
            let mut n = 0;
            let mut i = start;
            while i < targets.len() && targets[i] == b {
                if EdgeType::from_u8(types[i])
                    .expect("valid stored type")
                    .cycle_eligible()
                {
                    n += 1;
                }
                i += 1;
            }
            n
        };
        count_dir(u, v) + count_dir(v, u)
    }

    /// Iterate all directed edges `(src, dst, type)` in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, EdgeType)> + '_ {
        (0..self.n).flat_map(move |u| self.out_edges(u).map(move |(d, t)| (u, d, t)))
    }

    /// Count directed edges of one type.
    pub fn count_edges_of_type(&self, ty: EdgeType) -> usize {
        self.out_types.iter().filter(|&&t| t == ty.as_u8()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> TypedGraph {
        // 0→1 link, 1→0 link (reciprocal), 0→2 belongs, 1→2 belongs,
        // 2→3 inside, 0→4 redirect target? (4 redirects to 0)
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 0, EdgeType::Link);
        b.add_edge(0, 2, EdgeType::Belongs);
        b.add_edge(1, 2, EdgeType::Belongs);
        b.add_edge(2, 3, EdgeType::Inside);
        b.add_edge(4, 0, EdgeType::Redirect);
        b.build()
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 2); // from 1 (link) and 4 (redirect)
        assert_eq!(g.out_degree(4), 1);
        assert_eq!(g.in_degree(3), 1);
    }

    #[test]
    fn out_edges_sorted() {
        let g = diamond();
        let out0: Vec<_> = g.out_edges(0).collect();
        assert_eq!(out0, vec![(1, EdgeType::Link), (2, EdgeType::Belongs)]);
    }

    #[test]
    fn in_edges_sorted() {
        let g = diamond();
        let in0: Vec<_> = g.in_edges(0).collect();
        assert_eq!(in0, vec![(1, EdgeType::Link), (4, EdgeType::Redirect)]);
    }

    #[test]
    fn undirected_view_excludes_redirects() {
        let g = diamond();
        assert_eq!(g.und_neighbors(0), &[1, 2]);
        assert_eq!(g.und_neighbors(4), &[] as &[u32]);
        assert!(!g.und_adjacent(0, 4));
        assert!(g.und_adjacent(0, 1));
        assert!(g.und_adjacent(2, 0)); // symmetric
    }

    #[test]
    fn has_edge_by_type() {
        let g = diamond();
        assert!(g.has_edge(0, 1, EdgeType::Link));
        assert!(!g.has_edge(0, 1, EdgeType::Belongs));
        assert!(g.has_edge(4, 0, EdgeType::Redirect));
        assert!(!g.has_edge(0, 4, EdgeType::Redirect));
    }

    #[test]
    fn pair_multiplicity_counts_both_directions() {
        let g = diamond();
        assert_eq!(g.pair_multiplicity(0, 1), 2); // reciprocal links
        assert_eq!(g.pair_multiplicity(0, 2), 1); // single belongs
        assert_eq!(g.pair_multiplicity(0, 4), 0); // redirect only: ineligible
        assert_eq!(g.pair_multiplicity(1, 3), 0); // not adjacent
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = diamond();
        assert_eq!(g.edges().count(), g.edge_count());
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn count_by_type() {
        let g = diamond();
        assert_eq!(g.count_edges_of_type(EdgeType::Link), 2);
        assert_eq!(g.count_edges_of_type(EdgeType::Belongs), 2);
        assert_eq!(g.count_edges_of_type(EdgeType::Inside), 1);
        assert_eq!(g.count_edges_of_type(EdgeType::Redirect), 1);
    }

    #[test]
    fn isolated_node_graph() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.node_count(), 3);
        for u in 0..3 {
            assert_eq!(g.out_degree(u), 0);
            assert_eq!(g.und_degree(u), 0);
        }
    }
}
