//! Triangle counting and the triangle participation ratio (TPR).
//!
//! §3 of the paper reports that the largest connected components of the
//! query graphs have an average TPR around 0.3 — "particularly large if
//! we consider that the category graph in Wikipedia is tree-like and
//! therefore triangles are not present". TPR is the fraction of nodes
//! that belong to at least one triangle, computed on the undirected cycle
//! view (redirect edges excluded — a redirect can never be in a
//! triangle anyway).

use crate::csr::TypedGraph;

/// Sorted-slice intersection test helper: true when `a` and `b` share an
/// element. Both inputs must be sorted ascending.
fn share_element(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Mark every node that participates in at least one triangle of the
/// undirected cycle view. Returns a boolean per node.
pub fn triangle_participants(g: &TypedGraph) -> Vec<bool> {
    let n = g.node_count() as usize;
    let mut in_triangle = vec![false; n];
    for u in 0..g.node_count() {
        for &v in g.und_neighbors(u) {
            if v <= u {
                continue; // each edge handled once, u < v
            }
            // Any common neighbor w of u and v forms a triangle
            // {u, v, w}. Marking only needs existence per edge, but to
            // mark *all* participants we must mark each common w too.
            let nu = g.und_neighbors(u);
            let nv = g.und_neighbors(v);
            let (mut i, mut j) = (0, 0);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = nu[i];
                        if w != u && w != v {
                            in_triangle[u as usize] = true;
                            in_triangle[v as usize] = true;
                            in_triangle[w as usize] = true;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    in_triangle
}

/// Triangle participation ratio over the whole graph: the fraction of
/// nodes in at least one triangle. Returns 0.0 for the empty graph.
pub fn triangle_participation_ratio(g: &TypedGraph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    let marks = triangle_participants(g);
    marks.iter().filter(|&&m| m).count() as f64 / n as f64
}

/// TPR restricted to a node subset (the paper computes TPR on the
/// *largest connected component* of each query graph). `members` need not
/// be sorted. Returns 0.0 for an empty subset.
pub fn tpr_of_subset(g: &TypedGraph, members: &[u32]) -> f64 {
    if members.is_empty() {
        return 0.0;
    }
    let marks = triangle_participants(g);
    let hit = members.iter().filter(|&&m| marks[m as usize]).count();
    hit as f64 / members.len() as f64
}

/// Count distinct triangles {u, v, w} in the undirected cycle view.
pub fn triangle_count(g: &TypedGraph) -> usize {
    let mut count = 0usize;
    for u in 0..g.node_count() {
        let nu = g.und_neighbors(u);
        for &v in nu {
            if v <= u {
                continue;
            }
            let nv = g.und_neighbors(v);
            // Count common neighbors w > v so each triangle counts once.
            let (mut i, mut j) = (0, 0);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if nu[i] > v {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// True when `u` and `v` have any common undirected neighbor.
pub fn have_common_neighbor(g: &TypedGraph, u: u32, v: u32) -> bool {
    share_element(g.und_neighbors(u), g.und_neighbors(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeType, GraphBuilder};

    fn triangle_plus_tail() -> TypedGraph {
        // Triangle 0-1-2 plus tail 2-3 plus isolated 4.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 2, EdgeType::Link);
        b.add_edge(0, 2, EdgeType::Belongs);
        b.add_edge(2, 3, EdgeType::Inside);
        b.build()
    }

    #[test]
    fn counts_single_triangle() {
        assert_eq!(triangle_count(&triangle_plus_tail()), 1);
    }

    #[test]
    fn participants_marked_exactly() {
        let marks = triangle_participants(&triangle_plus_tail());
        assert_eq!(marks, vec![true, true, true, false, false]);
    }

    #[test]
    fn tpr_whole_graph() {
        let tpr = triangle_participation_ratio(&triangle_plus_tail());
        assert!((tpr - 0.6).abs() < 1e-12, "3 of 5 nodes → 0.6, got {tpr}");
    }

    #[test]
    fn tpr_of_component_subset() {
        let g = triangle_plus_tail();
        let tpr = tpr_of_subset(&g, &[0, 1, 2, 3]);
        assert!((tpr - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tree_has_zero_tpr() {
        // The paper: category graph is tree-like, so no triangles.
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2)] {
            b.add_edge(u, v, EdgeType::Inside);
        }
        let g = b.build();
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(triangle_participation_ratio(&g), 0.0);
    }

    #[test]
    fn redirect_edges_cannot_form_triangles() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 2, EdgeType::Link);
        b.add_edge(2, 0, EdgeType::Redirect); // would close the triangle
        let g = b.build();
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn reciprocal_links_do_not_double_count() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 0, EdgeType::Link);
        b.add_edge(1, 2, EdgeType::Link);
        b.add_edge(2, 0, EdgeType::Link);
        let g = b.build();
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(triangle_participation_ratio(&g), 0.0);
        assert_eq!(tpr_of_subset(&g, &[]), 0.0);
    }

    #[test]
    fn k4_every_node_participates() {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, EdgeType::Link);
            }
        }
        let g = b.build();
        assert_eq!(triangle_count(&g), 4);
        assert_eq!(triangle_participation_ratio(&g), 1.0);
    }
}
