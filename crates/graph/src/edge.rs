//! Edge types of the Wikipedia schema (paper Fig. 1).

/// The relation an edge encodes, following the schema in Fig. 1 of the
/// paper.
///
/// * `Link` — an article's wiki-link to another article (directed;
///   reciprocal pairs form the paper's length-2 cycles).
/// * `Belongs` — article → category membership (every non-redirect
///   article has at least one).
/// * `Inside` — category → parent-category (the category "tree").
/// * `Redirect` — redirect article → main article. Redirect edges never
///   participate in cycles (paper §4): a redirect has no categories and
///   carries no other outgoing relation, so it cannot close a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum EdgeType {
    /// Article → article wiki-link.
    Link = 0,
    /// Article → category membership.
    Belongs = 1,
    /// Category → parent category.
    Inside = 2,
    /// Redirect article → main article.
    Redirect = 3,
}

impl EdgeType {
    /// All edge types, in discriminant order.
    pub const ALL: [EdgeType; 4] = [
        EdgeType::Link,
        EdgeType::Belongs,
        EdgeType::Inside,
        EdgeType::Redirect,
    ];

    /// True for edge types that may participate in cycles. Redirect edges
    /// are excluded per §4 of the paper.
    #[inline]
    pub fn cycle_eligible(self) -> bool {
        !matches!(self, EdgeType::Redirect)
    }

    /// Stable short name used by the text serialization format.
    pub fn name(self) -> &'static str {
        match self {
            EdgeType::Link => "link",
            EdgeType::Belongs => "belongs",
            EdgeType::Inside => "inside",
            EdgeType::Redirect => "redirect",
        }
    }

    /// Parse the short name produced by [`EdgeType::name`].
    pub fn from_name(name: &str) -> Option<EdgeType> {
        match name {
            "link" => Some(EdgeType::Link),
            "belongs" => Some(EdgeType::Belongs),
            "inside" => Some(EdgeType::Inside),
            "redirect" => Some(EdgeType::Redirect),
            _ => None,
        }
    }

    /// Discriminant as `u8` (used by the compact CSR encoding).
    #[inline]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`EdgeType::as_u8`].
    #[inline]
    pub fn from_u8(v: u8) -> Option<EdgeType> {
        match v {
            0 => Some(EdgeType::Link),
            1 => Some(EdgeType::Belongs),
            2 => Some(EdgeType::Inside),
            3 => Some(EdgeType::Redirect),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_redirect_is_cycle_ineligible() {
        assert!(EdgeType::Link.cycle_eligible());
        assert!(EdgeType::Belongs.cycle_eligible());
        assert!(EdgeType::Inside.cycle_eligible());
        assert!(!EdgeType::Redirect.cycle_eligible());
    }

    #[test]
    fn name_round_trips() {
        for t in EdgeType::ALL {
            assert_eq!(EdgeType::from_name(t.name()), Some(t));
        }
        assert_eq!(EdgeType::from_name("bogus"), None);
    }

    #[test]
    fn u8_round_trips() {
        for t in EdgeType::ALL {
            assert_eq!(EdgeType::from_u8(t.as_u8()), Some(t));
        }
        assert_eq!(EdgeType::from_u8(9), None);
    }
}
