//! Enumeration of simple cycles of bounded length — the paper's central
//! structural primitive (§3).
//!
//! The paper defines a cycle as "a sequence of |C| nodes (either articles
//! or categories) starting and ending at the same node, with at least one
//! edge among each pair of consecutive nodes", undirected, *not*
//! necessarily chordless, with |C| ≤ 5 "as the cost of finding the cycles
//! grows exponentially with the length". Length-2 cycles are pairs of
//! nodes joined by two distinct edges (in Wikipedia: reciprocal
//! article↔article links — the schema admits no other doubled pair).
//! Redirect edges never participate (§4).
//!
//! ## Enumeration strategy
//!
//! For every *anchor* node `v` (ascending), a depth-first search explores
//! simple paths `v → n₁ → … → nₖ` through nodes strictly greater than
//! `v`, so each cycle is discovered exactly once with its minimum node as
//! anchor. A cycle is emitted when the last node is adjacent to the
//! anchor; the reflection duplicate is suppressed by requiring
//! `n₁ < nₖ`. Length-2 cycles are found by a separate pass over adjacent
//! pairs with edge multiplicity ≥ 2.
//!
//! Complexity is O(Σ_v d^(L−1)) for maximum length L — exponential in L,
//! exactly the cost the paper calls out as a graph-technology challenge
//! (§4, "6 minutes per query graph"). The Criterion bench
//! `cycle_enum` measures this growth.

use crate::csr::TypedGraph;
use crate::edge::EdgeType;

/// A simple cycle: `nodes` in cycle order, `nodes[0]` is the minimum
/// node id (the anchor). `nodes.len()` is the cycle length |C|.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cycle {
    /// Cycle vertices in traversal order starting at the anchor.
    pub nodes: Vec<u32>,
}

impl Cycle {
    /// Cycle length |C| (number of nodes == number of required edges).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Cycles always have ≥ 2 nodes; provided for clippy completeness.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True when the cycle contains node `u`.
    pub fn contains(&self, u: u32) -> bool {
        self.nodes.contains(&u)
    }
}

/// Configurable enumerator of bounded-length simple cycles. See the
/// module docs for semantics.
pub struct CycleFinder<'g> {
    g: &'g TypedGraph,
    max_len: usize,
    min_len: usize,
    require_any: Option<Vec<bool>>,
    limit: usize,
}

impl<'g> CycleFinder<'g> {
    /// New finder with the paper's defaults: lengths 2..=5, no node
    /// filter, no output limit.
    pub fn new(g: &'g TypedGraph) -> Self {
        CycleFinder {
            g,
            max_len: 5,
            min_len: 2,
            require_any: None,
            limit: usize::MAX,
        }
    }

    /// Maximum cycle length (inclusive). Values below 2 yield no cycles.
    pub fn max_len(mut self, l: usize) -> Self {
        self.max_len = l;
        self
    }

    /// Minimum cycle length (inclusive, default 2).
    pub fn min_len(mut self, l: usize) -> Self {
        self.min_len = l.max(2);
        self
    }

    /// Only emit cycles containing at least one of `nodes` — the paper
    /// keeps only cycles through an article of L(q.k).
    pub fn require_any_of(mut self, nodes: &[u32]) -> Self {
        let mut mask = vec![false; self.g.node_count() as usize];
        for &u in nodes {
            if (u as usize) < mask.len() {
                mask[u as usize] = true;
            }
        }
        self.require_any = Some(mask);
        self
    }

    /// Stop after collecting `limit` cycles (a safety valve for dense
    /// graphs; the default is unlimited).
    pub fn limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Collect all cycles into a vector.
    pub fn find_all(&self) -> Vec<Cycle> {
        let mut out = Vec::new();
        self.for_each(|c| out.push(Cycle { nodes: c.to_vec() }));
        out
    }

    /// Count cycles per length without materializing them. Index `k` of
    /// the result holds the number of cycles of length `k`
    /// (indices 0 and 1 are always zero).
    pub fn count_by_length(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.max_len + 1];
        self.for_each(|c| counts[c.len()] += 1);
        counts
    }

    /// Visit each cycle's node slice (anchor-first order) without
    /// allocating per cycle. Respects the configured limit.
    pub fn for_each<F: FnMut(&[u32])>(&self, mut visit: F) {
        if self.max_len < 2 || self.limit == 0 {
            return;
        }
        let mut emitted = 0usize;

        // Length-2 pass: adjacent pairs with multiplicity ≥ 2.
        if self.min_len <= 2 {
            'outer: for u in 0..self.g.node_count() {
                for &v in self.g.und_neighbors(u) {
                    if v <= u {
                        continue;
                    }
                    if self.g.pair_multiplicity(u, v) >= 2 && self.passes_filter2(u, v) {
                        visit(&[u, v]);
                        emitted += 1;
                        if emitted >= self.limit {
                            break 'outer;
                        }
                    }
                }
            }
        }
        if emitted >= self.limit || self.max_len < 3 {
            return;
        }

        // Lengths ≥ 3: anchored DFS.
        let n = self.g.node_count() as usize;
        let mut in_path = vec![false; n];
        let mut path: Vec<u32> = Vec::with_capacity(self.max_len);
        for anchor in 0..self.g.node_count() {
            path.clear();
            path.push(anchor);
            in_path[anchor as usize] = true;
            self.dfs(anchor, &mut path, &mut in_path, &mut emitted, &mut visit);
            in_path[anchor as usize] = false;
            if emitted >= self.limit {
                return;
            }
        }
    }

    fn passes_filter2(&self, u: u32, v: u32) -> bool {
        match &self.require_any {
            None => true,
            Some(mask) => mask[u as usize] || mask[v as usize],
        }
    }

    fn passes_filter(&self, path: &[u32]) -> bool {
        match &self.require_any {
            None => true,
            Some(mask) => path.iter().any(|&u| mask[u as usize]),
        }
    }

    fn dfs<F: FnMut(&[u32])>(
        &self,
        anchor: u32,
        path: &mut Vec<u32>,
        in_path: &mut Vec<bool>,
        emitted: &mut usize,
        visit: &mut F,
    ) {
        if *emitted >= self.limit {
            return;
        }
        let last = *path.last().expect("path never empty");
        for &w in self.g.und_neighbors(last) {
            if *emitted >= self.limit {
                return;
            }
            if w <= anchor || in_path[w as usize] {
                continue;
            }
            path.push(w);
            in_path[w as usize] = true;

            // Close the cycle if long enough, w is adjacent to the
            // anchor, and we are on the canonical (non-reflected) side.
            if path.len() >= self.min_len.max(3)
                && path.len() >= 3
                && path[1] < w
                && self.g.und_adjacent(w, anchor)
                && self.passes_filter(path)
            {
                visit(path);
                *emitted += 1;
                if *emitted >= self.limit {
                    in_path[w as usize] = false;
                    path.pop();
                    return;
                }
            }
            if path.len() < self.max_len {
                self.dfs(anchor, path, in_path, emitted, visit);
            }
            in_path[w as usize] = false;
            path.pop();
        }
    }
}

/// Count the edges of the subgraph induced by `nodes`, with the paper's
/// E(C) conventions (§3):
///
/// * article→article `Link` edges count individually (a reciprocal pair
///   contributes 2 — matching the `A·(A−1)` term of M(C));
/// * `Belongs` edges count once each (`A·C` term);
/// * `Inside` edges count once per unordered category pair
///   (`C·(C−1)/2` term);
/// * `Redirect` edges never count.
pub fn induced_cycle_edges(g: &TypedGraph, nodes: &[u32]) -> usize {
    let mut count = 0usize;
    let mut inside_pairs: Vec<(u32, u32)> = Vec::new();
    for &u in nodes {
        for (v, t) in g.out_edges(u) {
            if !nodes.contains(&v) {
                continue;
            }
            match t {
                EdgeType::Link | EdgeType::Belongs => count += 1,
                EdgeType::Inside => {
                    let pair = (u.min(v), u.max(v));
                    if !inside_pairs.contains(&pair) {
                        inside_pairs.push(pair);
                    }
                }
                EdgeType::Redirect => {}
            }
        }
    }
    count + inside_pairs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeType, GraphBuilder};
    use std::collections::HashSet;

    /// Naive reference enumerator: all closed walks that are simple
    /// cycles, canonicalized (min-node rotation + direction) into a set.
    fn naive_cycles(g: &TypedGraph, max_len: usize) -> HashSet<Vec<u32>> {
        let mut found: HashSet<Vec<u32>> = HashSet::new();
        // 2-cycles.
        for u in 0..g.node_count() {
            for &v in g.und_neighbors(u) {
                if v > u && g.pair_multiplicity(u, v) >= 2 {
                    found.insert(vec![u, v]);
                }
            }
        }
        // k ≥ 3 via unrestricted DFS + canonicalization.
        fn canon(path: &[u32]) -> Vec<u32> {
            let k = path.len();
            let min_pos = (0..k).min_by_key(|&i| path[i]).unwrap();
            let fwd: Vec<u32> = (0..k).map(|i| path[(min_pos + i) % k]).collect();
            let bwd: Vec<u32> = (0..k).map(|i| path[(min_pos + k - i) % k]).collect();
            if fwd <= bwd {
                fwd
            } else {
                bwd
            }
        }
        fn extend(
            g: &TypedGraph,
            path: &mut Vec<u32>,
            max_len: usize,
            found: &mut HashSet<Vec<u32>>,
        ) {
            let last = *path.last().unwrap();
            for &w in g.und_neighbors(last) {
                if path.contains(&w) {
                    if w == path[0] && path.len() >= 3 {
                        found.insert(canon(path));
                    }
                    continue;
                }
                if path.len() < max_len {
                    path.push(w);
                    extend(g, path, max_len, found);
                    path.pop();
                }
            }
        }
        for s in 0..g.node_count() {
            let mut path = vec![s];
            extend(g, &mut path, max_len, &mut found);
        }
        found
    }

    fn finder_cycles(g: &TypedGraph, max_len: usize) -> HashSet<Vec<u32>> {
        CycleFinder::new(g)
            .max_len(max_len)
            .find_all()
            .into_iter()
            .map(|c| {
                // The finder emits anchor-first; canonicalize direction
                // the same way the naive enumerator does.
                let k = c.nodes.len();
                if k == 2 {
                    return c.nodes;
                }
                let fwd = c.nodes.clone();
                let mut bwd = vec![c.nodes[0]];
                bwd.extend(c.nodes[1..].iter().rev());
                if fwd <= bwd {
                    fwd
                } else {
                    bwd
                }
            })
            .collect()
    }

    #[test]
    fn triangle_found_once() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 2, EdgeType::Link);
        b.add_edge(2, 0, EdgeType::Belongs);
        let g = b.build();
        let cycles = CycleFinder::new(&g).find_all();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].nodes, vec![0, 1, 2]);
    }

    #[test]
    fn two_cycle_requires_multiplicity() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, EdgeType::Link);
        let g = b.build();
        assert!(CycleFinder::new(&g).find_all().is_empty());

        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 0, EdgeType::Link);
        let g = b.build();
        let cycles = CycleFinder::new(&g).find_all();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
    }

    #[test]
    fn redirect_never_closes_a_cycle() {
        // §4 of the paper. 0→1→2 links, 2→0 redirect.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 2, EdgeType::Link);
        b.add_edge(2, 0, EdgeType::Redirect);
        let g = b.build();
        assert!(CycleFinder::new(&g).find_all().is_empty());
    }

    #[test]
    fn square_counts_one_four_cycle() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 2, EdgeType::Link);
        b.add_edge(2, 3, EdgeType::Link);
        b.add_edge(3, 0, EdgeType::Link);
        let g = b.build();
        let counts = CycleFinder::new(&g).count_by_length();
        assert_eq!(counts[4], 1);
        assert_eq!(counts[3], 0);
    }

    #[test]
    fn k4_cycle_census() {
        // K4 has 4 triangles and 3 four-cycles.
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v, EdgeType::Link);
            }
        }
        let g = b.build();
        let counts = CycleFinder::new(&g).count_by_length();
        assert_eq!(counts[3], 4);
        assert_eq!(counts[4], 3);
        assert_eq!(counts[2], 0);
    }

    #[test]
    fn five_cycle_found_at_max_len() {
        let mut b = GraphBuilder::new(5);
        for i in 0..5u32 {
            b.add_edge(i, (i + 1) % 5, EdgeType::Link);
        }
        let g = b.build();
        assert_eq!(CycleFinder::new(&g).max_len(4).find_all().len(), 0);
        let cycles = CycleFinder::new(&g).max_len(5).find_all();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 5);
    }

    #[test]
    fn min_len_filters_short_cycles() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 0, EdgeType::Link);
        b.add_edge(1, 2, EdgeType::Link);
        b.add_edge(2, 0, EdgeType::Link);
        let g = b.build();
        let cycles = CycleFinder::new(&g).min_len(3).find_all();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
    }

    #[test]
    fn require_any_of_filters() {
        // Two disjoint triangles; require a node from the second.
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v, EdgeType::Link);
        }
        let g = b.build();
        let cycles = CycleFinder::new(&g).require_any_of(&[4]).find_all();
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].contains(4));
    }

    #[test]
    fn limit_caps_output() {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v, EdgeType::Link);
            }
        }
        let g = b.build();
        assert_eq!(CycleFinder::new(&g).limit(2).find_all().len(), 2);
        assert_eq!(CycleFinder::new(&g).limit(0).find_all().len(), 0);
    }

    #[test]
    fn cycles_within_cycles_are_all_reported() {
        // Square with one diagonal: 2 triangles + the 4-cycle (cycles
        // need not be chordless per the paper's definition).
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            b.add_edge(u, v, EdgeType::Link);
        }
        let g = b.build();
        let counts = CycleFinder::new(&g).count_by_length();
        assert_eq!(counts[3], 2);
        assert_eq!(counts[4], 1);
    }

    #[test]
    fn matches_naive_on_fixed_graphs() {
        let graphs: Vec<TypedGraph> = vec![
            {
                let mut b = GraphBuilder::new(6);
                for (u, v) in [
                    (0, 1),
                    (1, 2),
                    (2, 0),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 2),
                    (1, 4),
                ] {
                    b.add_edge(u, v, EdgeType::Link);
                }
                b.add_edge(1, 0, EdgeType::Link);
                b.build()
            },
            {
                let mut b = GraphBuilder::new(5);
                for (u, v) in [(0, 2), (1, 2), (0, 3), (1, 3), (2, 4), (3, 4)] {
                    b.add_edge(u, v, EdgeType::Belongs);
                }
                b.build()
            },
        ];
        for g in &graphs {
            for max_len in 3..=5 {
                let naive = naive_cycles(g, max_len);
                let fast = finder_cycles(g, max_len);
                assert_eq!(fast, naive, "max_len={max_len}");
            }
        }
    }

    #[test]
    fn induced_edges_counts_link_directions() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeType::Link);
        b.add_edge(1, 0, EdgeType::Link); // reciprocal: counts 2
        b.add_edge(1, 2, EdgeType::Belongs); // counts 1
        b.add_edge(0, 2, EdgeType::Belongs); // counts 1
        let g = b.build();
        assert_eq!(induced_cycle_edges(&g, &[0, 1, 2]), 4);
        assert_eq!(induced_cycle_edges(&g, &[0, 1]), 2);
        assert_eq!(induced_cycle_edges(&g, &[0, 2]), 1);
    }

    #[test]
    fn induced_edges_inside_pairs_count_once() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, EdgeType::Inside);
        b.add_edge(1, 0, EdgeType::Inside); // pathological both-ways: 1 pair
        b.add_edge(1, 2, EdgeType::Inside);
        let g = b.build();
        assert_eq!(induced_cycle_edges(&g, &[0, 1, 2]), 2);
    }

    #[test]
    fn induced_edges_ignore_redirects() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, EdgeType::Redirect);
        let g = b.build();
        assert_eq!(induced_cycle_edges(&g, &[0, 1]), 0);
    }

    proptest::proptest! {
        #[test]
        fn matches_naive_on_random_graphs(
            edges in proptest::collection::vec((0u32..8, 0u32..8), 0..24),
            max_len in 3usize..=5,
        ) {
            let mut b = GraphBuilder::new(8);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v, EdgeType::Link);
                }
            }
            let g = b.build();
            let naive = naive_cycles(&g, max_len);
            let fast = finder_cycles(&g, max_len);
            proptest::prop_assert_eq!(fast, naive);
        }

        #[test]
        fn every_emitted_cycle_is_valid(
            edges in proptest::collection::vec((0u32..10, 0u32..10), 0..30),
        ) {
            let mut b = GraphBuilder::new(10);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v, EdgeType::Link);
                }
            }
            let g = b.build();
            for c in CycleFinder::new(&g).find_all() {
                let k = c.nodes.len();
                proptest::prop_assert!((2..=5).contains(&k));
                // Distinct nodes.
                let mut sorted = c.nodes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                proptest::prop_assert_eq!(sorted.len(), k);
                // Anchor is the minimum.
                proptest::prop_assert_eq!(
                    c.nodes[0],
                    *c.nodes.iter().min().unwrap()
                );
                // Consecutive adjacency (including the closing edge).
                if k >= 3 {
                    for i in 0..k {
                        let (u, v) = (c.nodes[i], c.nodes[(i + 1) % k]);
                        proptest::prop_assert!(g.und_adjacent(u, v));
                    }
                } else {
                    proptest::prop_assert!(g.pair_multiplicity(c.nodes[0], c.nodes[1]) >= 2);
                }
            }
        }
    }
}
