//! Offline shim of `serde_json` over the `serde` shim's [`Value`] model.
//!
//! Output matches real serde_json's conventions where the workspace
//! depends on them: compact `{"k":v}` / pretty two-space-indent forms,
//! floats via Rust's shortest round-trip formatting, non-finite floats
//! as `null`, and object keys in insertion (= struct declaration) order
//! — which is what makes two runs of the same experiment byte-identical.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as compact JSON **appended** to `out`, reusing
/// the buffer's capacity — the allocation-free variant of
/// [`to_string`] for callers (the HTTP serving hot path) that hold a
/// per-worker scratch `String`.
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<(), Error> {
    write_value(out, &value.to_value(), None, 0);
    Ok(())
}

/// Serialize `value` to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Serialize `value` to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Deserialize a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

// ── writer ──────────────────────────────────────────────────────────

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |o, v, d| write_value(o, v, indent, d),
            '[',
            ']',
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            |o, (k, v), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d);
            },
            '{',
            '}',
        ),
    }
}

#[allow(clippy::too_many_arguments)] // internal writer plumbing, not API
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, item, depth + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's Display is shortest-round-trip, like serde_json's ryu.
        out.push_str(&f.to_string());
    } else {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ── parser ──────────────────────────────────────────────────────────

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' in object, got {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' in array, got {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("truncated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the next escape must be
                                // a low surrogate.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error(format!(
                                        "expected low surrogate after \\u{hi:04x}, got \\u{lo:04x}"
                                    )));
                                }
                                let combined = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                        }
                        other => return Err(Error(format!("bad escape '\\{}'", other as char))),
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn to_string_into_appends_and_matches_to_string() {
        let v = vec![(String::from("a"), [1.0f64, 2.0, 3.0, 4.0])];
        let mut out = String::from("prefix:");
        to_string_into(&v, &mut out).unwrap();
        assert_eq!(out, format!("prefix:{}", to_string(&v).unwrap()));
        // Reuse keeps capacity: clear, serialize again, same bytes.
        let cap = out.capacity();
        out.clear();
        to_string_into(&v, &mut out).unwrap();
        assert_eq!(out, to_string(&v).unwrap());
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(String::from("a"), [1.0f64, 2.0, 3.0, 4.0])];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, [f64; 4])> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("9").unwrap(), Some(9));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{08}\u{0C}\u{1F}é𝐀";
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn pretty_is_indented() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::UInt(1)]))]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn rejects_lone_high_surrogate() {
        assert!(from_str::<String>(r#""\uD800\u0041""#).is_err());
        // A valid pair still parses.
        assert_eq!(
            from_str::<String>(r#""\uD835\uDC00""#).unwrap(),
            "\u{1D400}"
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("3 x").is_err());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
