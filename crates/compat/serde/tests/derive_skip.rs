//! Contract tests for the derive shim's `#[serde(skip)]` support: the
//! attribute must omit the field from serialized output and restore it
//! via `Default::default()` on deserialization — the same behavior real
//! serde has, which is what lets observability counters ride on
//! report-stable structs without changing their JSON.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WithSkip {
    kept: u32,
    /// Never serialized; defaults to 0 on read.
    #[serde(skip)]
    scratch: usize,
    also_kept: String,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Plain {
    kept: u32,
    also_kept: String,
}

#[test]
fn skipped_field_is_absent_from_json() {
    let v = WithSkip {
        kept: 7,
        scratch: 999,
        also_kept: "x".into(),
    };
    let json = serde_json::to_string(&v).unwrap();
    assert_eq!(json, "{\"kept\":7,\"also_kept\":\"x\"}");
}

#[test]
fn skipped_field_matches_struct_without_it() {
    let with = WithSkip {
        kept: 3,
        scratch: 42,
        also_kept: "y".into(),
    };
    let without = Plain {
        kept: 3,
        also_kept: "y".into(),
    };
    assert_eq!(
        serde_json::to_string(&with).unwrap(),
        serde_json::to_string(&without).unwrap(),
        "#[serde(skip)] must keep the wire format identical"
    );
}

#[test]
fn deserialization_defaults_the_skipped_field() {
    let back: WithSkip = serde_json::from_str("{\"kept\":7,\"also_kept\":\"x\"}").unwrap();
    assert_eq!(
        back,
        WithSkip {
            kept: 7,
            scratch: 0,
            also_kept: "x".into(),
        }
    );
}

#[test]
fn round_trip_loses_only_the_skipped_field() {
    let v = WithSkip {
        kept: 1,
        scratch: 5,
        also_kept: "z".into(),
    };
    let back: WithSkip = serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
    assert_eq!(back.kept, v.kept);
    assert_eq!(back.also_kept, v.also_kept);
    assert_eq!(back.scratch, 0, "skipped field resets to Default");
}
