//! Offline shim of the `serde` facade.
//!
//! The build environment has no crates.io access, so the workspace ships
//! a minimal, self-consistent replacement: [`Serialize`] lowers a value
//! into the JSON-like [`Value`] tree, [`Deserialize`] lifts it back. The
//! derive macros (re-exported from `serde_derive`) cover the shapes this
//! workspace actually uses — named-field structs, newtype tuple structs,
//! and unit-variant enums — and serialize them exactly like real serde
//! would (field order = declaration order, newtypes transparent, unit
//! variants as their name string).
//!
//! `serde_json` (the sibling shim) renders [`Value`] to JSON text and
//! parses it back.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// A JSON-shaped value tree: the entire data model of this shim.
///
/// Object keys keep insertion order (like `serde_json` with its default
/// feature set preserving struct declaration order), which is what makes
/// serialized reports byte-stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (only used for negative values).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite double (NaN/∞ serialize as `null`, as in serde_json).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages ("object", "array", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// "expected X while deserializing Y, got Z".
    pub fn expected(what: &str, context: &str, got: &Value) -> Error {
        Error(format!(
            "expected {what} while deserializing {context}, got {}",
            got.kind()
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    /// The [`Value`] representation of `self`.
    fn to_value(&self) -> Value;
}

/// Lift `Self` back out of a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `Self` from `v`, with a descriptive error on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ── primitives ──────────────────────────────────────────────────────

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool", v)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t), v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let raw = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    _ => return Err(Error::expected("integer", stringify!($t), v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::expected("number", stringify!($t), v)),
                }
            }
        }
    )+};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-char string", "char", v)),
        }
    }
}

// ── compounds ───────────────────────────────────────────────────────

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::expected("array", "fixed array", v))?;
        if items.len() != N {
            return Err(Error(format!("expected {N} elements, got {}", items.len())));
        }
        let parsed: Result<Vec<T>, Error> = items.iter().map(T::from_value).collect();
        parsed.map(|vec| {
            vec.try_into()
                .expect("length checked before fixed-array conversion")
        })
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::expected("array", "tuple", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<K: Serialize + ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord + std::str::FromStr, V: Deserialize> Deserialize for BTreeMap<K, V>
where
    K::Err: fmt::Display,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap", v))?;
        entries
            .iter()
            .map(|(k, val)| {
                let key = k.parse::<K>().map_err(|e| Error(format!("bad key: {e}")))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        // Hash iteration order is unstable; sort so output is deterministic.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash + std::str::FromStr,
    K::Err: fmt::Display,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| Error::expected("object", "HashMap", v))?;
        entries
            .iter()
            .map(|(k, val)| {
                let key = k.parse::<K>().map_err(|e| Error(format!("bad key: {e}")))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

/// Support code for the derive macros; not part of the public contract.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Look up `name` in a struct object and deserialize it.
    pub fn field<T: Deserialize>(
        entries: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v).map_err(|e| Error(format!("{ty}.{name}: {}", e.0))),
            // Missing field: only Option-like types accept null.
            None => T::from_value(&Value::Null)
                .map_err(|_| Error(format!("missing field `{name}` in {ty}"))),
        }
    }
}
