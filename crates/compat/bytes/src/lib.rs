//! Offline shim of the `bytes` crate's append-and-freeze surface.
//!
//! [`Bytes`] is a view into an `Arc<[u8]>` — immutable, O(1) to clone,
//! and O(1) to [`Bytes::slice`]: sub-views share the same allocation,
//! which is the property the postings lists and the on-disk index
//! loader rely on (one file buffer, many section/postings views, no
//! copying). [`BytesMut`] is a growable buffer that freezes into one.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// The backing storage of a [`Bytes`]: a plain heap slice, or an
/// arbitrary owner whose bytes it views (the real crate's
/// `Bytes::from_owner`, used for memory-mapped files — dropping the
/// last view drops the owner, which unmaps).
#[derive(Clone)]
enum Storage {
    Heap(Arc<[u8]>),
    Owner(Arc<dyn AsRef<[u8]> + Send + Sync>),
}

impl Storage {
    fn as_slice(&self) -> &[u8] {
        match self {
            Storage::Heap(data) => data,
            Storage::Owner(owner) => owner.as_ref().as_ref(),
        }
    }
}

/// Cheaply cloneable immutable byte buffer (a view into shared storage).
#[derive(Clone)]
pub struct Bytes {
    data: Storage,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// A view over an arbitrary owner's bytes, like the real crate's
    /// `Bytes::from_owner`: the owner is kept alive (and its `AsRef`
    /// bytes must stay stable) until the last view drops. This is how
    /// a memory-mapped file becomes a `Bytes` without copying.
    pub fn from_owner<T>(owner: T) -> Bytes
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let len = owner.as_ref().len();
        Bytes {
            data: Storage::Owner(Arc::new(owner)),
            offset: 0,
            len,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view sharing this buffer's storage — no copy, O(1).
    ///
    /// # Panics
    /// If the range is out of bounds or reversed, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds of {} bytes",
            self.len
        );
        Bytes {
            data: self.data.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes {
            data: Storage::Heap(Arc::from(&[][..])),
            offset: 0,
            len: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: Storage::Heap(Arc::from(v.into_boxed_slice())),
            offset: 0,
            len,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Append-side trait, as the real crate structures it.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);

    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

// The real crate implements `BufMut` for `Vec<u8>` too; encoders that
// hand their buffer onward (e.g. the on-disk index writer) use it to
// avoid a copy through `BytesMut`.
impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{BufMut, Bytes, BytesMut};

    #[test]
    fn append_and_freeze() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.len(), 3);
    }

    #[test]
    fn clone_is_shared() {
        let mut b = BytesMut::new();
        b.put_slice(&[9; 64]);
        let a = b.freeze();
        let c = a.clone();
        assert_eq!(&a[..], &c[..]);
    }

    #[test]
    fn default_is_empty() {
        assert!(Bytes::default().is_empty());
        assert!(BytesMut::new().is_empty());
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let whole = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let mid = whole.slice(8..16);
        assert_eq!(&mid[..], &(8u8..16).collect::<Vec<u8>>()[..]);
        // A slice of a slice composes offsets.
        let inner = mid.slice(2..4);
        assert_eq!(&inner[..], &[10, 11]);
        // Unbounded / inclusive bounds.
        assert_eq!(whole.slice(..).len(), 32);
        assert_eq!(whole.slice(30..).len(), 2);
        assert_eq!(&whole.slice(..=1)[..], &[0, 1]);
    }

    #[test]
    fn empty_slice_at_end_is_fine() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert!(b.slice(3..3).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(2..5);
    }

    #[test]
    fn from_vec_round_trips() {
        let v = vec![5u8, 6, 7];
        let b = Bytes::from(v.clone());
        assert_eq!(&b[..], &v[..]);
        assert_eq!(b, Bytes::from(v));
    }

    #[test]
    fn from_owner_views_without_copy() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        struct Region {
            data: Vec<u8>,
            drops: Arc<AtomicUsize>,
        }
        impl AsRef<[u8]> for Region {
            fn as_ref(&self) -> &[u8] {
                &self.data
            }
        }
        impl Drop for Region {
            fn drop(&mut self) {
                self.drops.fetch_add(1, Ordering::SeqCst);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        let b = Bytes::from_owner(Region {
            data: (0u8..64).collect(),
            drops: Arc::clone(&drops),
        });
        assert_eq!(b.len(), 64);
        assert_eq!(&b[..4], &[0, 1, 2, 3]);
        // Slices keep the owner alive past the original handle.
        let view = b.slice(60..);
        drop(b);
        assert_eq!(drops.load(Ordering::SeqCst), 0, "view keeps the owner");
        assert_eq!(&view[..], &[60, 61, 62, 63]);
        drop(view);
        assert_eq!(drops.load(Ordering::SeqCst), 1, "last view drops the owner");
    }

    #[test]
    fn from_owner_equals_heap_bytes() {
        let v: Vec<u8> = (0u8..32).collect();
        assert_eq!(Bytes::from_owner(v.clone()), Bytes::from(v));
    }

    #[test]
    fn u64_le_append() {
        let mut b = BytesMut::new();
        b.put_u64_le(0x0102_0304_0506_0708);
        assert_eq!(&b[..], &[8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn vec_u8_implements_buf_mut() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(1);
        v.put_slice(&[2, 3]);
        v.put_u32_le(4);
        assert_eq!(v, vec![1, 2, 3, 4, 0, 0, 0]);
    }
}
