//! Offline shim of the `bytes` crate's append-and-freeze surface.
//!
//! [`Bytes`] is an `Arc<[u8]>` — immutable and O(1) to clone, which is
//! the property the postings lists rely on. [`BytesMut`] is a growable
//! buffer that freezes into one.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data.into_boxed_slice()),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Append-side trait, as the real crate structures it.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);

    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{BufMut, Bytes, BytesMut};

    #[test]
    fn append_and_freeze() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.len(), 3);
    }

    #[test]
    fn clone_is_shared() {
        let mut b = BytesMut::new();
        b.put_slice(&[9; 64]);
        let a = b.freeze();
        let c = a.clone();
        assert_eq!(&a[..], &c[..]);
    }

    #[test]
    fn default_is_empty() {
        assert!(Bytes::default().is_empty());
        assert!(BytesMut::new().is_empty());
    }
}
