//! Offline shim of the `rand 0.8` API surface this workspace uses.
//!
//! [`rngs::StdRng`] is a xoshiro256** generator seeded through SplitMix64
//! — deterministic for a given `seed_from_u64` seed, which is all the
//! synthetic-data generators require (the workspace never relies on
//! matching upstream `StdRng`'s exact stream, only on reproducibility).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool({p}) out of range");
        // 53 high bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// One uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($(($t:ty, $u:ty)),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                // Two's-complement difference via the same-width unsigned
                // type handles negative starts and spans > $t::MAX.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(reject_mod(rng, span) as $u as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = end.wrapping_sub(start) as $u as u64;
                if span == <$u>::MAX as u64 {
                    return start.wrapping_add(rng.next_u64() as $u as $t);
                }
                start.wrapping_add(reject_mod(rng, span + 1) as $u as $t)
            }
        }
    )+};
}

impl_sample_int!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i32, u32),
    (i64, u64),
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Uniform value in `[0, span)` by rejection sampling (no modulo bias).
fn reject_mod<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5u32..=8);
            assert!((5..=8).contains(&w));
        }
    }

    #[test]
    fn signed_ranges_cover_negative_starts() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_negative = false;
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
        }
        assert!(saw_negative, "negative half of the range never sampled");
    }

    #[test]
    fn full_width_inclusive_ranges_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(0u8..=u8::MAX);
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = rng.gen_range(i32::MIN..i32::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
