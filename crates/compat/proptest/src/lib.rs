//! Offline shim of `proptest`.
//!
//! The `proptest!` macro expands each property into a plain `#[test]`
//! that samples its strategies from a fixed-seed PRNG for a fixed number
//! of cases. There is no shrinking — a failing case panics with the
//! sampled values in the assertion message (all sampled inputs derive
//! `Debug` in this workspace). Supported strategies are exactly what the
//! workspace's properties use: integer ranges, tuples, `collection::vec`,
//! `collection::btree_set`, and a `&str` pattern treated as "arbitrary
//! short string".

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Cases sampled per property.
pub const CASES: u32 = 64;

/// Test-case generator handed to strategies.
pub type TestRng = StdRng;

/// Fresh deterministic generator for one property run.
pub fn test_rng(name: &str) -> TestRng {
    // Stable per-property stream: hash the test name (FNV-1a).
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    <StdRng as rand::SeedableRng>::seed_from_u64(h)
}

/// A source of random values of one shape.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Uniform `f64` in `[start, end)` — the shape real proptest offers
/// for float parameters (only the half-open form; the rand shim has
/// no inclusive float sampling, and properties over continuous
/// parameters never need one).
impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// A `&str` strategy stands in for proptest's regex strategies: the shim
/// ignores the pattern and generates an arbitrary string of 0–60 chars
/// drawn from ASCII, punctuation, whitespace, and a sprinkle of
/// non-ASCII codepoints (every property using this treats the input as
/// fully arbitrary).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        const EXOTIC: [char; 10] = ['é', 'Ü', 'ß', 'Σ', 'ω', '中', '𝐀', '²', 'Ⅷ', '\u{200b}'];
        let len = rng.gen_range(0usize..=60);
        (0..len)
            .map(|_| match rng.gen_range(0u32..10) {
                0..=5 => rng
                    .gen_range(0x20u32..0x7f)
                    .try_into()
                    .expect("printable ASCII"),
                6 | 7 => ' ',
                8 => EXOTIC[rng.gen_range(0usize..EXOTIC.len())],
                _ => char::from(rng.gen_range(b'a'..=b'z')),
            })
            .collect()
    }
}

impl Strategy for RangeInclusive<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        let (a, b) = (*self.start() as u32, *self.end() as u32);
        char::from_u32(rng.gen_range(a..=b)).expect("valid char range")
    }
}

/// Collection size bound, converted from range literals.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty proptest size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `element` samples, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    ///
    /// Like upstream, the size range bounds the number of *attempts*, so
    /// duplicate samples can produce a smaller set — but never below one
    /// element when `size` starts ≥ 1, matching how the workspace uses it.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` of `element` samples.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng).max(1);
            let mut set = BTreeSet::new();
            // Retry duplicates a bounded number of times so small value
            // domains still reach the requested size when possible.
            let mut attempts = 0;
            while set.len() < n && attempts < n * 20 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Property assertion: like `assert!` (the shim has no shrink phase to
/// abort into).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property assertion: like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Expand each property into a `#[test]` running [`CASES`] sampled
/// cases from a per-property fixed seed.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$attr])*
        fn $name() {
            let mut rng = $crate::test_rng(stringify!($name));
            for _case in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                $body
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use crate as proptest;

    proptest::proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 3u32..10,
            items in proptest::collection::vec((0u8..4, 0u32..100), 0..30),
        ) {
            proptest::prop_assert!((3..10).contains(&x));
            proptest::prop_assert!(items.len() < 30);
            for (a, b) in &items {
                proptest::prop_assert!(*a < 4 && *b < 100);
            }
        }

        #[test]
        fn float_ranges_stay_in_bounds(
            x in 0.5f64..3.25,
            y in -2.0f64..2.0,
        ) {
            proptest::prop_assert!((0.5..3.25).contains(&x));
            proptest::prop_assert!((-2.0..2.0).contains(&y));
            proptest::prop_assert!(x.is_finite() && y.is_finite());
        }

        #[test]
        fn sets_are_nonempty_and_bounded(
            set in proptest::collection::btree_set(0u32..50, 1..20),
        ) {
            proptest::prop_assert!(!set.is_empty());
            proptest::prop_assert!(set.len() < 20);
        }

        #[test]
        fn string_pattern_generates_short_strings(input in ".{0,60}") {
            proptest::prop_assert!(input.chars().count() <= 60);
        }
    }
}
