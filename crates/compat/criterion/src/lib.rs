//! Offline shim of the `criterion` benchmarking surface.
//!
//! No statistics engine — each benchmark's closure is warmed up once and
//! then timed over a fixed iteration budget, printing the mean per-call
//! wall-clock time. Enough to keep `cargo bench` runnable and the bench
//! sources honest until a real harness can be vendored.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations timed per benchmark (after one warm-up call).
const DEFAULT_ITERS: u64 = 20;

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the shim's budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for source compatibility; the shim does not scale
    /// results by throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (function name and/or parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Throughput annotation (accepted, not used by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark closure; `iter` times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the shim's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, also forces lazy init
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        iters: DEFAULT_ITERS,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters as f64;
    println!("bench {name:<40} {:>12.3} µs/iter", mean * 1e6);
}

/// Collect benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
