//! Offline shim of `parking_lot`'s lock API over `std::sync`.
//!
//! Matches the signatures the workspace uses: `lock()` returns the guard
//! directly (a poisoned std lock — a panic while held — propagates the
//! panic rather than returning `Err`).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`'s poison-free signatures.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
