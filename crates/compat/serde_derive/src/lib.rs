//! Offline shim of `serde_derive`.
//!
//! Hand-rolled over `proc_macro::TokenStream` (the sandbox has no
//! `syn`/`quote`), so it supports exactly the item shapes this workspace
//! derives on:
//!
//! * structs with named fields → JSON objects in declaration order;
//! * newtype tuple structs (`struct Id(pub u32)`) → transparent, like
//!   real serde;
//! * enums whose variants are all unit variants → the variant name as a
//!   JSON string.
//!
//! The only `#[serde(...)]` attribute supported is `#[serde(skip)]` on a
//! named field: the field is omitted from serialization and restored via
//! `Default::default()` on deserialization, exactly like real serde.
//! Anything else (generics, data-carrying variants, other `#[serde(...)]`
//! attributes) panics at expansion time with a pointed message rather
//! than silently producing the wrong format.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field of a deriving struct.
struct FieldSpec {
    /// Field name.
    name: String,
    /// `#[serde(skip)]`: omit from output, `Default::default()` on read.
    skip: bool,
}

/// The parsed shape of a deriving item.
enum Shape {
    /// Named-field struct: fields in declaration order.
    Named(Vec<FieldSpec>),
    /// Tuple struct with this many fields (only 1 is supported).
    Tuple(usize),
    /// Enum of unit variants: variant names in declaration order.
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derive `serde::Serialize` for the supported shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!("::serde::Value::Object(vec![{entries}])")
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => panic!("serde shim: {n}-field tuple struct {name} unsupported"),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"))
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` for the supported shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::core::default::Default::default(),", f.name)
                    } else {
                        let f = &f.name;
                        format!("{f}: ::serde::__private::field(entries, \"{f}\", \"{name}\")?,")
                    }
                })
                .collect();
            format!(
                "let entries = v.as_object().ok_or_else(|| \
                     ::serde::Error::expected(\"object\", \"{name}\", v))?;\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => panic!("serde shim: {n}-field tuple struct {name} unsupported"),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|var| format!("\"{var}\" => Ok({name}::{var}),"))
                .collect();
            format!(
                "let s = v.as_str().ok_or_else(|| \
                     ::serde::Error::expected(\"string\", \"{name}\", v))?;\n\
                 match s {{ {arms} _ => Err(::serde::Error(format!(\
                     \"unknown {name} variant {{s:?}}\"))) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

/// Parse the deriving item down to name + shape.
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            // Outer attribute: `#` followed by a bracket group — skip.
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Skip a `pub(...)` restriction group, if any.
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(tokens.next(), "struct name");
                forbid_generics(tokens.peek(), &name);
                return match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                        name,
                        shape: Shape::Named(parse_named_fields(g.stream())),
                    },
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                        name,
                        shape: Shape::Tuple(count_tuple_fields(g.stream())),
                    },
                    other => {
                        panic!("serde shim: unexpected token after `struct {name}`: {other:?}")
                    }
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(tokens.next(), "enum name");
                forbid_generics(tokens.peek(), &name);
                return match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                        shape: Shape::UnitEnum(parse_unit_variants(g.stream(), &name)),
                        name,
                    },
                    other => panic!("serde shim: unexpected token after `enum {name}`: {other:?}"),
                };
            }
            Some(_) => {}
            None => panic!("serde shim: no struct/enum found in derive input"),
        }
    }
}

fn expect_ident(tt: Option<TokenTree>, what: &str) -> String {
    match tt {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim: expected {what}, got {other:?}"),
    }
}

fn forbid_generics(tt: Option<&TokenTree>, name: &str) {
    if let Some(TokenTree::Punct(p)) = tt {
        if p.as_char() == '<' {
            panic!("serde shim: generic type {name} unsupported by the offline derive");
        }
    }
}

/// Fields of a named-field struct body, in order.
///
/// A field is "the last identifier before a depth-0 `:`"; the type after
/// it runs to the next comma at angle-bracket depth 0 (commas inside
/// `(..)`/`[..]` groups are invisible to this token-level scan, so types
/// like `Vec<(String, [f64; 4])>` parse fine). A `#[serde(skip)]`
/// attribute marks the field that follows it; any other `#[serde(...)]`
/// attribute panics.
fn parse_named_fields(body: TokenStream) -> Vec<FieldSpec> {
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut in_type = false;
    let mut skip_next = false;
    let mut angle_depth = 0i32;
    let mut tokens = body.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' && !in_type => {
                skip_next |= attribute_is_serde_skip(tokens.next());
            }
            TokenTree::Punct(p) if p.as_char() == ':' && !in_type && angle_depth == 0 => {
                // `::` inside a path never starts a field type at depth 0
                // here because field names precede the first `:`.
                fields.push(FieldSpec {
                    name: last_ident
                        .take()
                        .expect("serde shim: field `:` with no preceding name"),
                    skip: std::mem::take(&mut skip_next),
                });
                in_type = true;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => in_type = false,
            TokenTree::Ident(id) if !in_type => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}

/// Inspect one attribute body (the bracket group after `#`). Returns
/// true for `[serde(skip)]`; panics on any other `#[serde(...)]` so
/// unsupported renames/defaults fail loudly; ignores non-serde
/// attributes (doc comments etc.).
fn attribute_is_serde_skip(tt: Option<TokenTree>) -> bool {
    let Some(TokenTree::Group(group)) = tt else {
        panic!("serde shim: `#` not followed by an attribute group: {tt:?}");
    };
    if group.delimiter() != Delimiter::Bracket {
        return false;
    }
    let mut inner = group.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    let args: Vec<String> = match inner.next() {
        Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
            args.stream().into_iter().map(|t| t.to_string()).collect()
        }
        other => panic!("serde shim: malformed #[serde ...] attribute: {other:?}"),
    };
    match args.as_slice() {
        [arg] if arg == "skip" => true,
        other => panic!(
            "serde shim: unsupported #[serde({})], only #[serde(skip)] is implemented",
            other.join(" ")
        ),
    }
}

/// Number of fields in a tuple-struct body (top-level comma count).
/// `#[serde(...)]` on a tuple field panics — the transparent newtype
/// encoding has no place to skip a field, and silence would produce the
/// wrong format.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    let mut tokens = body.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' && angle_depth == 0 => {
                if attribute_is_serde_skip(tokens.next()) {
                    panic!("serde shim: #[serde(skip)] on a tuple-struct field is unsupported");
                }
                continue; // non-serde attribute (docs etc.): not a field token
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                fields += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    fields + usize::from(saw_tokens)
}

/// Variant names of an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // attribute body
            }
            TokenTree::Ident(id) => {
                let variant = id.to_string();
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    panic!(
                        "serde shim: enum {enum_name} variant {variant} carries data, \
                         only unit variants are supported"
                    );
                }
                variants.push(variant);
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde shim: unexpected token in enum {enum_name}: {other:?}"),
        }
    }
    variants
}
