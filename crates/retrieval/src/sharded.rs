//! Doc-partitioned sharded retrieval with deterministic scatter-gather.
//!
//! The paper targets full-Wikipedia scale (millions of articles); one
//! monolithic index caps that at whatever a single load/build can hold.
//! [`ShardedEngine`] owns N document-partitioned shards — shard *i*
//! holds the contiguous global doc-id range [`doc_ranges`]`(n, N)[i]`,
//! re-based to local ids — and answers the full
//! [`RetrievalBackend`](crate::backend::RetrievalBackend) surface with
//! results **byte-identical** to the monolithic [`SearchEngine`] at any
//! shard count:
//!
//! * **Global statistics, aggregated once.** Dirichlet smoothing reads
//!   the collection probability (cf / total tokens) and the epsilon
//!   floor (0.5 / total tokens). Both are ratios of exact integer
//!   counts, and integer sums are associative — so summing per-shard
//!   counts reproduces the monolithic values *bit for bit*. Per-shard
//!   *local* statistics are never used for scoring.
//! * **Shared flattening.** Query weights come from the one
//!   `flatten_specs` pass both engines use, so per-leaf weights are
//!   identical by construction.
//! * **Same per-document float sequence.** Each shard scores its own
//!   candidates with the same leaf-order accumulation the monolithic
//!   engine uses (`score += weight · log_belief`), with the same global
//!   inputs — identical doc ⇒ identical f64 ops ⇒ identical score.
//! * **Total-order merge.** Each shard returns its top-k under the
//!   total order (score desc, then *global* doc id asc); the union of
//!   per-shard top-k's is a superset of the global top-k, so sorting
//!   the union under the same order and truncating to k yields exactly
//!   the monolithic result.
//!
//! Per-shard scatter runs on [`crate::par::parallel_map`] (inline at
//! one thread), the same deterministic runner as the rest of the
//! workspace.
//!
//! ## Sharded artifact layout
//!
//! A sharded index persists as one **manifest** plus N independently
//! checksummed, independently loadable `QGIX` segments (the PR-3
//! format, one per shard, local doc ids):
//!
//! ```text
//! <stem>.qgman            manifest (see below)
//! <stem>.shard0.qgidx     segment: shard 0's index + phrase dictionary
//! <stem>.shard1.qgidx     …
//! ```
//!
//! Manifest (all integers little-endian):
//!
//! ```text
//! magic "QGSM" (4)  version u32  fingerprint u64  shard_count u32
//! total_docs u64    total_tokens u64
//! per-shard num_docs u32 × shard_count
//! checksum u64 — FNV-1a of every preceding byte
//! ```
//!
//! `fingerprint` is keyed by configuration **and shard count** (a
//! 4-shard and an 8-shard cache of the same world are different
//! artifacts); each segment embeds [`segment_fingerprint`]`(fp, i)` so
//! segments cannot be swapped between slots or shard counts. Segments
//! are written first and the manifest last, so a crashed write leaves
//! no valid manifest — just a cold cache. Every load failure is a
//! typed [`ShardedError`] that names the failing shard; loading never
//! panics.

use crate::engine::SearchHit;
use crate::engine::{
    flatten_specs, phrase_cache_slot, LeafSpec, PhraseInfo, SearchEngine, SearchMode,
    MAX_PRUNED_LEAVES,
};
use crate::index::{epsilon_for, InvertedIndex, TermBound};
use crate::lm::{log_belief_with_floor, LmParams};
use crate::ondisk::{
    encode_index, fnv1a, load_index_with, write_atomic, ArtifactSource, LoadedIndex, OndiskError,
};
use crate::par::parallel_map;
use crate::phrase::PhraseHit;
use crate::query_lang::QueryNode;
use crate::topk::{BoundHeap, Scored, TopK};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Manifest magic: "QGSM" (QueryGraph Shard Manifest).
pub const SHARD_MAGIC: [u8; 4] = *b"QGSM";

/// Manifest format version; the loader refuses other versions.
pub const SHARD_FORMAT_VERSION: u32 = 1;

/// Number of global phrase-cache locks (same rationale as the engine's
/// own sharded cache: comfortably above worker counts).
const PHRASE_CACHE_LOCKS: usize = 16;

/// Typed failure loading a sharded artifact. Always names the failing
/// piece — the manifest or a specific shard — so an operator (or the
/// rebuild fallback) knows exactly which segment to replace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardedError {
    /// The manifest itself failed (missing, corrupt, foreign
    /// fingerprint, inconsistent totals).
    Manifest(OndiskError),
    /// One shard segment failed to load or didn't match the manifest.
    Shard {
        /// Index of the failing shard.
        shard: usize,
        /// The segment loader's typed failure.
        source: OndiskError,
    },
}

impl fmt::Display for ShardedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardedError::Manifest(e) => write!(f, "shard manifest: {e}"),
            ShardedError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
        }
    }
}

impl std::error::Error for ShardedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardedError::Manifest(e) => Some(e),
            ShardedError::Shard { source, .. } => Some(source),
        }
    }
}

/// Contiguous doc-id partition of `num_docs` documents into `shards`
/// ranges: shard *i* owns `[i·n/N, (i+1)·n/N)`. Deterministic, covers
/// every document exactly once, and balanced to within one document.
pub fn doc_ranges(num_docs: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.max(1);
    (0..shards)
        .map(|i| (i * num_docs / shards)..((i + 1) * num_docs / shards))
        .collect()
}

/// The embedded fingerprint of shard `shard` inside an artifact keyed
/// by `manifest_fingerprint` — segments are pinned to their slot, so a
/// renamed or cross-copied segment is rejected at load.
pub fn segment_fingerprint(manifest_fingerprint: u64, shard: usize) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&manifest_fingerprint.to_le_bytes());
    bytes[8..].copy_from_slice(&(shard as u64).to_le_bytes());
    fnv1a(&bytes)
}

/// Manifest file name for an artifact stem.
pub fn manifest_file(stem: &str) -> String {
    format!("{stem}.qgman")
}

/// Segment file name for shard `shard` of an artifact stem.
pub fn segment_file(stem: &str, shard: usize) -> String {
    format!("{stem}.shard{shard}.qgidx")
}

/// Write a sharded artifact: every shard's `QGIX` segment (index +
/// exported phrase dictionary, local doc ids), then the manifest as the
/// commit point. Any error leaves at worst segments without a manifest
/// — a cold cache, never a half-trusted one. Every file is written
/// atomically (temp + rename), so concurrent loaders — including
/// mmap-backed ones — only ever see a complete old or new inode.
pub fn save_sharded(
    dir: &Path,
    stem: &str,
    shards: &[SearchEngine],
    fingerprint: u64,
) -> std::io::Result<()> {
    use bytes::BufMut;
    for (i, engine) in shards.iter().enumerate() {
        let bytes = encode_index(
            engine.index(),
            &engine.export_phrase_cache(),
            segment_fingerprint(fingerprint, i),
        );
        write_atomic(&dir.join(segment_file(stem, i)), &bytes)?;
    }
    let mut m: Vec<u8> = Vec::new();
    m.put_slice(&SHARD_MAGIC);
    m.put_u32_le(SHARD_FORMAT_VERSION);
    m.put_u64_le(fingerprint);
    m.put_u32_le(shards.len() as u32);
    let total_docs: u64 = shards.iter().map(|s| s.index().num_docs() as u64).sum();
    let total_tokens: u64 = shards.iter().map(|s| s.index().total_tokens()).sum();
    m.put_u64_le(total_docs);
    m.put_u64_le(total_tokens);
    for engine in shards {
        m.put_u32_le(engine.index().num_docs() as u32);
    }
    let checksum = fnv1a(&m);
    m.put_u64_le(checksum);
    write_atomic(&dir.join(manifest_file(stem)), &m)
}

/// A successfully loaded sharded artifact.
#[derive(Debug)]
pub struct LoadedShards {
    /// One loaded segment per shard, in shard order.
    pub shards: Vec<LoadedIndex>,
    /// The manifest fingerprint (config + shard count).
    pub fingerprint: u64,
    /// Wall-clock seconds each segment took to read + decode
    /// (observability; archived in the bench records).
    pub shard_load_seconds: Vec<f64>,
}

/// Load a sharded artifact: validate the manifest, then load every
/// segment in parallel over `threads` workers (each segment is
/// independently checksummed and structurally validated by the `QGIX`
/// loader). `expected_fingerprint` keys the artifact to one
/// configuration + shard count; `expected_shards` must match the
/// manifest.
pub fn load_sharded(
    dir: &Path,
    stem: &str,
    expected_fingerprint: u64,
    expected_shards: usize,
    threads: usize,
    source: ArtifactSource,
) -> Result<LoadedShards, ShardedError> {
    let manifest_path = dir.join(manifest_file(stem));
    let m = std::fs::read(&manifest_path)
        .map_err(|e| ShardedError::Manifest(OndiskError::Io(e.to_string())))?;
    // Fixed head: magic + version + fingerprint + count + totals.
    const HEAD: usize = 4 + 4 + 8 + 4 + 8 + 8;
    if m.len() < HEAD + 8 {
        return Err(ShardedError::Manifest(OndiskError::Truncated {
            context: "shard manifest",
        }));
    }
    if m[0..4] != SHARD_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&m[0..4]);
        return Err(ShardedError::Manifest(OndiskError::BadMagic { found }));
    }
    let u32_at = |at: usize| u32::from_le_bytes(m[at..at + 4].try_into().expect("bounds checked"));
    let u64_at = |at: usize| u64::from_le_bytes(m[at..at + 8].try_into().expect("bounds checked"));
    let version = u32_at(4);
    if version != SHARD_FORMAT_VERSION {
        return Err(ShardedError::Manifest(OndiskError::UnsupportedVersion {
            found: version,
        }));
    }
    let fingerprint = u64_at(8);
    if fingerprint != expected_fingerprint {
        return Err(ShardedError::Manifest(OndiskError::MetaMismatch {
            expected: expected_fingerprint,
            found: fingerprint,
        }));
    }
    let shard_count = u32_at(16) as usize;
    let total_docs = u64_at(20);
    let total_tokens = u64_at(28);
    let expected_len = HEAD + shard_count * 4 + 8;
    if m.len() != expected_len {
        return Err(ShardedError::Manifest(if m.len() < expected_len {
            OndiskError::Truncated {
                context: "shard manifest",
            }
        } else {
            OndiskError::TrailingBytes {
                expected_len,
                actual_len: m.len(),
            }
        }));
    }
    let recorded = u64_at(expected_len - 8);
    if fnv1a(&m[..expected_len - 8]) != recorded {
        return Err(ShardedError::Manifest(OndiskError::ChecksumMismatch {
            section: "shard manifest",
        }));
    }
    if shard_count == 0 || shard_count != expected_shards {
        return Err(ShardedError::Manifest(OndiskError::Malformed {
            context: "shard count",
        }));
    }
    let per_shard_docs: Vec<u32> = (0..shard_count).map(|i| u32_at(HEAD + i * 4)).collect();
    if per_shard_docs.iter().map(|&d| d as u64).sum::<u64>() != total_docs {
        return Err(ShardedError::Manifest(OndiskError::Malformed {
            context: "shard doc counts do not sum to total",
        }));
    }

    // Scatter the segment loads; each result carries its shard index so
    // the first failure (by shard order) is reported deterministically.
    let results: Vec<(Result<LoadedIndex, OndiskError>, f64)> =
        parallel_map(shard_count, threads, |i| {
            let t = Instant::now();
            let result = load_index_with(&dir.join(segment_file(stem, i)), source);
            (result, t.elapsed().as_secs_f64())
        });
    let mut shards = Vec::with_capacity(shard_count);
    let mut shard_load_seconds = Vec::with_capacity(shard_count);
    for (i, (result, seconds)) in results.into_iter().enumerate() {
        let loaded = result.map_err(|source| ShardedError::Shard { shard: i, source })?;
        let want = segment_fingerprint(fingerprint, i);
        if loaded.meta_fingerprint != want {
            return Err(ShardedError::Shard {
                shard: i,
                source: OndiskError::MetaMismatch {
                    expected: want,
                    found: loaded.meta_fingerprint,
                },
            });
        }
        if loaded.index.num_docs() != per_shard_docs[i] as usize {
            return Err(ShardedError::Shard {
                shard: i,
                source: OndiskError::Malformed {
                    context: "segment doc count disagrees with manifest",
                },
            });
        }
        shards.push(loaded);
        shard_load_seconds.push(seconds);
    }
    if shards.iter().map(|s| s.index.total_tokens()).sum::<u64>() != total_tokens {
        return Err(ShardedError::Manifest(OndiskError::Malformed {
            context: "segment token counts do not sum to manifest total",
        }));
    }
    Ok(LoadedShards {
        shards,
        fingerprint,
        shard_load_seconds,
    })
}

/// One resolved leaf of a sharded query: the global collection
/// probability plus each shard's local `doc → tf` map.
struct GlobalLeaf {
    weight: f64,
    collection_prob: f64,
    per_shard_tf: Vec<HashMap<u32, u32>>,
}

/// One query leaf as a single shard sees it: the flattened weight, the
/// **global** collection probability, and this shard's local `doc → tf`
/// map. Both the in-process [`ShardedEngine`] scatter and the
/// shard-process RPC server ([`crate::remote`]) score through the same
/// [`shard_topk`] over these views — there is exactly one per-shard
/// scoring implementation, so the two physical layouts are
/// bit-identical by construction rather than by parallel maintenance.
pub(crate) struct ShardLeafView<'a> {
    /// Flattened query weight (from the shared `flatten_specs` pass).
    pub(crate) weight: f64,
    /// Global collection probability (global cf / global tokens).
    pub(crate) collection_prob: f64,
    /// This shard's local-doc-id → tf map for the leaf.
    pub(crate) tf: &'a HashMap<u32, u32>,
}

/// Score one shard's candidates into a top-k heap keyed by global doc
/// id (`base` + local doc). Holds the single mode gate both physical
/// layouts share: `Pruned` applies only while the leaf count fits the
/// pruning bitmask, otherwise exact scoring runs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn shard_topk(
    engine: &SearchEngine,
    base: u32,
    specs: &[(f64, LeafSpec<'_>)],
    views: &[ShardLeafView<'_>],
    params: LmParams,
    epsilon: f64,
    k: usize,
    mode: SearchMode,
) -> TopK {
    match mode {
        SearchMode::Pruned if views.len() <= MAX_PRUNED_LEAVES => {
            shard_pruned_topk(engine, base, specs, views, params, epsilon, k)
        }
        _ => shard_exact_topk(engine, base, views, params, epsilon, k),
    }
}

/// One shard's exhaustive candidate scoring — the float-op sequence the
/// byte-identity contract pins (global smoothing inputs, local
/// candidates, heap keyed by global doc id).
fn shard_exact_topk(
    engine: &SearchEngine,
    base: u32,
    views: &[ShardLeafView<'_>],
    params: LmParams,
    epsilon: f64,
    k: usize,
) -> TopK {
    let mut candidates: Vec<u32> = views.iter().flat_map(|v| v.tf.keys().copied()).collect();
    candidates.sort_unstable();
    candidates.dedup();
    let mut topk = TopK::new(k);
    for doc in candidates {
        let len = engine.index().doc_len(doc);
        let mut score = 0.0;
        for view in views {
            let tf = view.tf.get(&doc).copied().unwrap_or(0);
            score +=
                view.weight * log_belief_with_floor(params, epsilon, tf, len, view.collection_prob);
        }
        topk.push(base + doc, score);
    }
    topk
}

/// One shard's MaxScore-style top-k: the monolithic engine's pruned
/// loop with shard-local bounds and global smoothing inputs. Candidates
/// are visited in descending upper-bound order and the loop stops once
/// the heap is full and the next bound falls below the floor; the bound
/// is bitwise-conservative (see `SearchEngine::pruned_topk`), so the
/// shard's heap — and hence any merge over it — is bit-identical to
/// exact mode.
fn shard_pruned_topk(
    engine: &SearchEngine,
    base: u32,
    specs: &[(f64, LeafSpec<'_>)],
    views: &[ShardLeafView<'_>],
    params: LmParams,
    epsilon: f64,
    k: usize,
) -> TopK {
    let bounds: Vec<(f64, f64)> = specs
        .iter()
        .zip(views)
        .map(|((_, spec), view)| shard_leaf_bounds(engine.index(), spec, view, params, epsilon))
        .collect();
    let mut masks: HashMap<u32, u64> = HashMap::new();
    for (i, view) in views.iter().enumerate() {
        for &doc in view.tf.keys() {
            *masks.entry(doc).or_insert(0) |= 1u64 << i;
        }
    }
    let candidates: Vec<(f64, u32)> = masks
        .iter()
        .map(|(&doc, &mask)| {
            let mut ub = 0.0;
            for (i, &(matched, background)) in bounds.iter().enumerate() {
                ub += if mask & (1u64 << i) != 0 {
                    matched
                } else {
                    background
                };
            }
            (ub, doc)
        })
        .collect();
    // Heapify instead of sorting: same visit order, O(n) up front
    // (see `SearchEngine::pruned_topk`).
    let mut heap = BoundHeap::from_candidates(candidates);
    let mut topk = TopK::new(k);
    while let Some((ub, doc)) = heap.pop() {
        if let Some(floor) = topk.floor() {
            if ub < floor.score {
                break; // bounds descend: nothing later can qualify
            }
        }
        let len = engine.index().doc_len(doc);
        let mut score = 0.0;
        for view in views {
            let tf = view.tf.get(&doc).copied().unwrap_or(0);
            score +=
                view.weight * log_belief_with_floor(params, epsilon, tf, len, view.collection_prob);
        }
        topk.push(base + doc, score);
    }
    topk
}

/// Per-leaf `(matched, background)` bounds valid for one shard's
/// documents: term leaves read the shard index's [`TermBound`] (from
/// its segment's BOUNDS section), phrase leaves derive theirs from the
/// shard's resolved hits; the collection probability and epsilon stay
/// global, exactly as in scoring.
fn shard_leaf_bounds(
    index: &InvertedIndex,
    spec: &LeafSpec<'_>,
    view: &ShardLeafView<'_>,
    params: LmParams,
    epsilon: f64,
) -> (f64, f64) {
    let background = view.weight
        * log_belief_with_floor(
            params,
            epsilon,
            0,
            index.min_doc_len(),
            view.collection_prob,
        );
    let bound = match spec {
        LeafSpec::Term(t) => index.term_id(t).map(|tid| index.term_bound(tid)),
        LeafSpec::Phrase(_) => {
            let mut b = TermBound::EMPTY;
            for (&doc, &tf) in view.tf {
                b.max_tf = b.max_tf.max(tf);
                b.min_len = b.min_len.min(index.doc_len(doc));
            }
            Some(b.normalized())
        }
    };
    let matched = match bound {
        Some(b) if b.max_tf > 0 => {
            view.weight
                * log_belief_with_floor(params, epsilon, b.max_tf, b.min_len, view.collection_prob)
        }
        _ => background,
    };
    (matched, background)
}

/// N doc-partitioned shards behind one
/// [`RetrievalBackend`](crate::backend::RetrievalBackend) surface.
///
/// Construction aggregates the global collection statistics (doc
/// bases, total docs, total tokens) **once**; every query then scores
/// with the global values, so results are byte-identical to the
/// monolithic engine (see the module docs for the argument).
pub struct ShardedEngine {
    shards: Vec<SearchEngine>,
    /// Global doc id of each shard's first document (prefix sums).
    doc_bases: Vec<u32>,
    num_docs: usize,
    total_tokens: u64,
    params: LmParams,
    /// Workers for per-query scatter (1 = inline; serving batches
    /// usually parallelize across *queries* instead).
    search_threads: usize,
    /// Globally assembled phrase resolutions (hits re-based to global
    /// doc ids), sharded by phrase-word hash like the engine's cache.
    phrase_cache: Vec<Mutex<HashMap<Vec<String>, Arc<PhraseInfo>>>>,
}

impl ShardedEngine {
    /// Assemble from per-shard engines (shard order = ascending global
    /// doc ranges). Aggregates global statistics once.
    ///
    /// # Panics
    /// If `shards` is empty.
    pub fn from_shards(shards: Vec<SearchEngine>, params: LmParams) -> ShardedEngine {
        assert!(!shards.is_empty(), "sharded engine needs >= 1 shard");
        let mut doc_bases = Vec::with_capacity(shards.len());
        let mut next = 0u64;
        let mut total_tokens = 0u64;
        for s in &shards {
            doc_bases.push(u32::try_from(next).expect("doc ids fit u32"));
            next += s.index().num_docs() as u64;
            total_tokens += s.index().total_tokens();
        }
        ShardedEngine {
            shards,
            doc_bases,
            num_docs: next as usize,
            total_tokens,
            params,
            search_threads: 1,
            phrase_cache: (0..PHRASE_CACHE_LOCKS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Assemble from a loaded sharded artifact, seeding every shard's
    /// phrase dictionary from its segment.
    pub fn from_loaded(loaded: LoadedShards, params: LmParams) -> ShardedEngine {
        let shards = loaded
            .shards
            .into_iter()
            .map(|l| {
                let engine = SearchEngine::with_params(l.index, params);
                engine.seed_phrase_cache(l.phrases);
                engine
            })
            .collect();
        Self::from_shards(shards, params)
    }

    /// Set the per-query scatter width (capped at the shard count by
    /// the runner; 1 = inline). Scatter parallelism never changes
    /// results — only who computes them.
    ///
    /// Tradeoff: the runner spawns scoped workers *per search call*
    /// (no persistent pool yet), costing tens of microseconds per
    /// query — worthwhile for large shard counts / deep candidate
    /// sets, a tax for sub-millisecond queries. Batch workloads
    /// usually prefer parallelizing across queries
    /// (`expand_batch` / `qgx --threads`) and leaving this at 1.
    pub fn with_search_threads(mut self, threads: usize) -> ShardedEngine {
        self.set_search_threads(threads);
        self
    }

    /// In-place form of [`ShardedEngine::with_search_threads`].
    pub fn set_search_threads(&mut self, threads: usize) {
        self.search_threads = threads.max(1);
    }

    /// The per-shard engines, in shard order (used by warming and
    /// persistence).
    pub fn shards(&self) -> &[SearchEngine] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of documents in the global collection.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Total token count of the global collection.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Global doc id of each shard's first document.
    pub fn doc_bases(&self) -> &[u32] {
        &self.doc_bases
    }

    /// Evaluate (and cache) one phrase on every shard — the warming
    /// loop the cache builder runs per article title. Empty phrases are
    /// skipped.
    pub fn warm_phrase(&self, words: &[String]) {
        if words.is_empty() {
            return;
        }
        for shard in &self.shards {
            shard.warm_phrase(words);
        }
    }

    /// The shard owning global doc `doc`.
    fn shard_of(&self, doc: u32) -> usize {
        self.doc_bases.partition_point(|&base| base <= doc) - 1
    }

    /// The global phrase-cache lock responsible for `words`.
    fn cache_lock(&self, words: &[String]) -> &Mutex<HashMap<Vec<String>, Arc<PhraseInfo>>> {
        &self.phrase_cache[phrase_cache_slot(words, self.phrase_cache.len())]
    }

    /// Global smoothing floor — [`epsilon_for`] (the exact formula
    /// behind [`crate::index::InvertedIndex::epsilon_prob`]) over the
    /// global token total.
    pub fn epsilon_prob(&self) -> f64 {
        epsilon_for(self.total_tokens)
    }

    /// Execute `query` with deterministic scatter-gather (see the
    /// module docs for the byte-identity argument).
    pub fn search(&self, query: &QueryNode, k: usize) -> Vec<SearchHit> {
        self.search_with(query, k, SearchMode::Exact)
    }

    /// [`ShardedEngine::search`] with an explicit execution mode. In
    /// [`SearchMode::Pruned`] each shard prunes against its own local
    /// heap floor using shard-local bounds (its segment's BOUNDS
    /// section). Per-shard pruned top-k equals per-shard exact top-k
    /// bitwise — the monolithic conservativeness argument, applied
    /// shard by shard with the same global smoothing inputs — so the
    /// merged result is unchanged too.
    pub fn search_with(&self, query: &QueryNode, k: usize, mode: SearchMode) -> Vec<SearchHit> {
        let mut specs = Vec::new();
        flatten_specs(query, 1.0, &mut specs);
        if specs.is_empty() {
            return Vec::new();
        }
        let leaves: Vec<GlobalLeaf> = specs
            .iter()
            .map(|(weight, spec)| self.resolve_global_leaf(*weight, spec))
            .collect();
        let epsilon = self.epsilon_prob();

        // Scatter: each shard scores its own candidate union into a
        // local top-k heap under the (score, global doc id) total order,
        // through the one shared per-shard scorer ([`shard_topk`]).
        let per_shard: Vec<Vec<Scored>> =
            parallel_map(self.shards.len(), self.search_threads, |si| {
                let views: Vec<ShardLeafView<'_>> = leaves
                    .iter()
                    .map(|l| ShardLeafView {
                        weight: l.weight,
                        collection_prob: l.collection_prob,
                        tf: &l.per_shard_tf[si],
                    })
                    .collect();
                shard_topk(
                    &self.shards[si],
                    self.doc_bases[si],
                    &specs,
                    &views,
                    self.params,
                    epsilon,
                    k,
                    mode,
                )
                .into_sorted()
            });

        // Gather: merge under the same total order and keep k. Every
        // global top-k document survives its own shard's heap, so this
        // is exactly the monolithic result.
        let mut merged: Vec<Scored> = per_shard.into_iter().flatten().collect();
        merged.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
        merged.truncate(k);
        merged
            .into_iter()
            .map(|s| SearchHit {
                doc: s.doc,
                score: s.score,
            })
            .collect()
    }

    /// Resolve one leaf spec: per-shard tf maps (local doc ids) plus
    /// the globally aggregated collection probability.
    fn resolve_global_leaf(&self, weight: f64, spec: &LeafSpec<'_>) -> GlobalLeaf {
        match spec {
            LeafSpec::Term(t) => {
                let mut per_shard_tf = Vec::with_capacity(self.shards.len());
                let mut cf = 0u64;
                for shard in &self.shards {
                    match shard.index().postings_for(t) {
                        Some(list) => {
                            cf += list.collection_freq();
                            per_shard_tf.push(list.iter().map(|p| (p.doc, p.tf())).collect());
                        }
                        None => per_shard_tf.push(HashMap::new()),
                    }
                }
                GlobalLeaf {
                    weight,
                    collection_prob: cf as f64 / self.total_tokens.max(1) as f64,
                    per_shard_tf,
                }
            }
            LeafSpec::Phrase(words) => {
                let infos: Vec<Arc<PhraseInfo>> =
                    self.shards.iter().map(|s| s.phrase_info(words)).collect();
                let cf: u64 = infos
                    .iter()
                    .flat_map(|i| i.hits.iter())
                    .map(|h| h.tf as u64)
                    .sum();
                GlobalLeaf {
                    weight,
                    collection_prob: cf as f64 / self.total_tokens.max(1) as f64,
                    per_shard_tf: infos
                        .iter()
                        .map(|i| i.hits.iter().map(|h| (h.doc, h.tf)).collect())
                        .collect(),
                }
            }
        }
    }

    /// Resolve (and cache) one phrase globally: per-shard hits re-based
    /// to global doc ids (shard order = ascending global order), with
    /// the collection probability over the global token total.
    pub fn resolve_phrase(&self, words: &[String]) -> Arc<PhraseInfo> {
        let lock = self.cache_lock(words);
        if let Some(hit) = lock.lock().get(words) {
            return hit.clone();
        }
        let mut hits = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let info = shard.phrase_info(words);
            let base = self.doc_bases[si];
            hits.extend(info.hits.iter().map(|h| PhraseHit {
                doc: base + h.doc,
                tf: h.tf,
            }));
        }
        let cf: u64 = hits.iter().map(|h| h.tf as u64).sum();
        let info = Arc::new(PhraseInfo {
            hits,
            collection_prob: cf as f64 / self.total_tokens.max(1) as f64,
        });
        lock.lock().insert(words.to_vec(), info.clone());
        info
    }
}

impl crate::backend::RetrievalBackend for ShardedEngine {
    fn params(&self) -> LmParams {
        self.params
    }

    fn epsilon_prob(&self) -> f64 {
        ShardedEngine::epsilon_prob(self)
    }

    fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    fn num_docs(&self) -> usize {
        self.num_docs
    }

    fn doc_len(&self, doc: u32) -> u32 {
        let si = self.shard_of(doc);
        self.shards[si].index().doc_len(doc - self.doc_bases[si])
    }

    fn resolve_phrase(&self, words: &[String]) -> Arc<PhraseInfo> {
        ShardedEngine::resolve_phrase(self, words)
    }

    fn search(&self, query: &QueryNode, k: usize) -> Vec<SearchHit> {
        ShardedEngine::search(self, query, k)
    }

    fn search_with(&self, query: &QueryNode, k: usize, mode: SearchMode) -> Vec<SearchHit> {
        ShardedEngine::search_with(self, query, k, mode)
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn phrase_cache_len(&self) -> usize {
        self.shards.iter().map(|s| s.phrase_cache_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RetrievalBackend;
    use crate::index::IndexBuilder;
    use crate::query_lang::parse;

    const DOCS: [&str; 7] = [
        "a gondola on the grand canal of venice",
        "the grand hotel beside a small canal",
        "",
        "venice has many bridges and one grand canal",
        "completely unrelated text about mountains",
        "gondola gondola gondola",
        "the grand canal venice gondola rides",
    ];

    fn mono(docs: &[&str]) -> SearchEngine {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add_document(d);
        }
        SearchEngine::new(b.build())
    }

    fn sharded(docs: &[&str], n: usize) -> ShardedEngine {
        let shards = doc_ranges(docs.len(), n)
            .into_iter()
            .map(|range| {
                let mut b = IndexBuilder::new();
                for d in &docs[range] {
                    b.add_document(d);
                }
                SearchEngine::new(b.build())
            })
            .collect();
        ShardedEngine::from_shards(shards, LmParams::default())
    }

    const QUERIES: [&str; 7] = [
        "#1(grand canal)",
        "#combine(#1(grand canal) venice)",
        "#combine(gondola venice #1(small canal))",
        "#weight(0.9 venice 0.1 canal)",
        "the",
        "#combine(zzzz gondola)",
        "#1(zz yy)",
    ];

    #[test]
    fn doc_ranges_cover_everything_contiguously() {
        for (n, shards) in [(0, 3), (1, 1), (7, 3), (7, 7), (7, 9), (100, 8)] {
            let ranges = doc_ranges(n, shards);
            assert_eq!(ranges.len(), shards.max(1));
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "ranges must be contiguous");
                next = r.end;
            }
            assert_eq!(next, n, "ranges must cover every doc");
            let (min, max) = ranges
                .iter()
                .map(|r| r.len())
                .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
            assert!(max - min <= 1, "balanced to within one doc");
        }
    }

    #[test]
    fn sharded_search_is_bit_identical_to_monolithic() {
        let m = mono(&DOCS);
        for n in [1, 2, 3, 7] {
            let s = sharded(&DOCS, n);
            for q in QUERIES {
                let q = parse(q).unwrap();
                for k in [0, 1, 3, 20] {
                    assert_eq!(
                        s.search(&q, k),
                        m.search(&q, k),
                        "diverged at {n} shards, k={k}, query {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_pruned_matches_exact_at_every_shard_count() {
        let m = mono(&DOCS);
        for n in [1, 2, 3, 7] {
            let s = sharded(&DOCS, n);
            for q in QUERIES {
                let q = parse(q).unwrap();
                for k in [0, 1, 3, 20] {
                    let pruned = s.search_with(&q, k, SearchMode::Pruned);
                    assert_eq!(
                        pruned,
                        s.search_with(&q, k, SearchMode::Exact),
                        "pruned vs exact diverged at {n} shards, k={k}, query {q:?}"
                    );
                    assert_eq!(
                        pruned,
                        m.search_with(&q, k, SearchMode::Pruned),
                        "sharded vs mono pruned diverged at {n} shards, k={k}, query {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scatter_threads_never_change_results() {
        let base = sharded(&DOCS, 3);
        let threaded = sharded(&DOCS, 3).with_search_threads(4);
        for q in QUERIES {
            let q = parse(q).unwrap();
            assert_eq!(base.search(&q, 10), threaded.search(&q, 10), "{q:?}");
        }
    }

    #[test]
    fn global_stats_match_monolithic() {
        let m = mono(&DOCS);
        for n in [1, 2, 3, 7] {
            let s = sharded(&DOCS, n);
            assert_eq!(s.num_docs, m.index().num_docs());
            assert_eq!(s.total_tokens, m.index().total_tokens());
            assert_eq!(
                ShardedEngine::epsilon_prob(&s).to_bits(),
                m.index().epsilon_prob().to_bits(),
                "epsilon must be bit-identical"
            );
            for doc in 0..DOCS.len() as u32 {
                assert_eq!(RetrievalBackend::doc_len(&s, doc), m.index().doc_len(doc));
            }
        }
    }

    #[test]
    fn resolve_phrase_matches_monolithic_bitwise() {
        let m = mono(&DOCS);
        for n in [1, 2, 3, 7] {
            let s = sharded(&DOCS, n);
            for phrase in [
                vec!["grand".to_string(), "canal".to_string()],
                vec!["gondola".to_string()],
                vec!["zzzz".to_string()],
            ] {
                let a = RetrievalBackend::resolve_phrase(&m, &phrase);
                let b = s.resolve_phrase(&phrase);
                assert_eq!(a.hits, b.hits, "{phrase:?} hits at {n} shards");
                assert_eq!(
                    a.collection_prob.to_bits(),
                    b.collection_prob.to_bits(),
                    "{phrase:?} collection prob at {n} shards"
                );
                // Second resolve hits the global cache.
                let again = s.resolve_phrase(&phrase);
                assert!(Arc::ptr_eq(&b, &again), "global cache must memoize");
            }
        }
    }

    #[test]
    fn empty_collection_sharded() {
        let s = sharded(&[], 3);
        assert_eq!(s.num_docs, 0);
        assert!(s.search(&parse("anything").unwrap(), 5).is_empty());
        assert_eq!(
            ShardedEngine::epsilon_prob(&s),
            mono(&[]).index().epsilon_prob()
        );
    }

    proptest::proptest! {
        /// Scatter-gather equivalence on arbitrary worlds, queries, and
        /// shard counts.
        #[test]
        fn sharded_equals_monolithic_on_random_worlds(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u8..6, 0..20),
                1..16,
            ),
            shards in 1usize..8,
            qpick in 0u8..6,
        ) {
            const VOCAB: [&str; 6] =
                ["alpha", "beta", "gamma", "delta", "beta gamma", "alpha beta"];
            let texts: Vec<String> = docs
                .iter()
                .map(|d| {
                    d.iter()
                        .map(|&x| VOCAB[x as usize])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
            let m = mono(&refs);
            let s = sharded(&refs, shards);
            let queries = [
                "#combine(alpha beta)",
                "#1(beta gamma)",
                "#weight(0.7 alpha 0.3 #1(alpha beta))",
                "#combine(#1(gamma delta) delta)",
                "delta",
                "#combine(alpha #1(beta gamma) zeta)",
            ];
            let q = parse(queries[qpick as usize % queries.len()]).unwrap();
            proptest::prop_assert_eq!(s.search(&q, 10), m.search(&q, 10));
        }

        /// Pruned scatter-gather must stay rank-equivalent to exact on
        /// arbitrary worlds and shard counts: same doc sequence, scores
        /// within 1e-9 (in practice bitwise — pruning only skips docs).
        #[test]
        fn sharded_pruned_rank_equivalent_on_random_worlds(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u8..6, 0..20),
                1..16,
            ),
            shards in 1usize..8,
            qpick in 0u8..6,
            k in 0usize..12,
        ) {
            const VOCAB: [&str; 6] =
                ["alpha", "beta", "gamma", "delta", "beta gamma", "alpha beta"];
            let texts: Vec<String> = docs
                .iter()
                .map(|d| {
                    d.iter()
                        .map(|&x| VOCAB[x as usize])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
            let s = sharded(&refs, shards);
            let queries = [
                "#combine(alpha beta)",
                "#1(beta gamma)",
                "#weight(0.7 alpha 0.3 #1(alpha beta))",
                "#combine(#1(gamma delta) delta)",
                "delta",
                "#combine(alpha #1(beta gamma) zeta)",
            ];
            let q = parse(queries[qpick as usize % queries.len()]).unwrap();
            let exact = s.search_with(&q, k, SearchMode::Exact);
            let pruned = s.search_with(&q, k, SearchMode::Pruned);
            let exact_docs: Vec<u32> = exact.iter().map(|h| h.doc).collect();
            let pruned_docs: Vec<u32> = pruned.iter().map(|h| h.doc).collect();
            proptest::prop_assert_eq!(pruned_docs, exact_docs, "doc sequence");
            for (p, x) in pruned.iter().zip(&exact) {
                proptest::prop_assert!(
                    (p.score - x.score).abs() <= 1e-9,
                    "score drift at doc {}: {} vs {}", p.doc, p.score, x.score
                );
            }
        }
    }

    // ── sharded artifact round trip + corruption ────────────────────

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("querygraph-sharded-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn saved_sharded(dir: &Path, stem: &str, n: usize, fp: u64) -> ShardedEngine {
        let s = sharded(&DOCS, n);
        // Warm some phrases so segments carry non-empty dictionaries.
        s.warm_phrase(&["grand".to_string(), "canal".to_string()]);
        s.warm_phrase(&["venice".to_string()]);
        save_sharded(dir, stem, s.shards(), fp).expect("saves");
        s
    }

    #[test]
    fn sharded_round_trip_preserves_search_and_phrases() {
        let dir = temp_dir("roundtrip");
        let fp = 0xABCD_EF01;
        let original = saved_sharded(&dir, "rt", 3, fp);
        let loaded = load_sharded(&dir, "rt", fp, 3, 2, ArtifactSource::Read).expect("loads");
        assert_eq!(loaded.fingerprint, fp);
        assert_eq!(loaded.shard_load_seconds.len(), 3);
        let engine = ShardedEngine::from_loaded(loaded, LmParams::default());
        for q in QUERIES {
            let q = parse(q).unwrap();
            assert_eq!(engine.search(&q, 10), original.search(&q, 10), "{q:?}");
        }
        // Seeded phrase dictionaries arrived warm.
        assert!(RetrievalBackend::phrase_cache_len(&engine) >= 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_fingerprint_or_shard_count_rejected() {
        let dir = temp_dir("fp");
        saved_sharded(&dir, "fp", 2, 7);
        match load_sharded(&dir, "fp", 8, 2, 1, ArtifactSource::Read) {
            Err(ShardedError::Manifest(OndiskError::MetaMismatch { expected, found })) => {
                assert_eq!((expected, found), (8, 7));
            }
            other => panic!("expected manifest MetaMismatch, got {other:?}"),
        }
        assert!(matches!(
            load_sharded(&dir, "fp", 7, 3, 1, ArtifactSource::Read),
            Err(ShardedError::Manifest(OndiskError::Malformed { .. }))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_manifest_io_error() {
        let dir = temp_dir("missing");
        assert!(matches!(
            load_sharded(&dir, "nope", 1, 1, 1, ArtifactSource::Read),
            Err(ShardedError::Manifest(OndiskError::Io(_)))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segment_names_its_shard_never_panics() {
        let dir = temp_dir("corrupt");
        saved_sharded(&dir, "c", 3, 99);
        let victim = dir.join(segment_file("c", 1));
        let bytes = std::fs::read(&victim).expect("segment exists");
        // Flip a sample of bytes across the whole segment; every flip
        // must produce a typed error naming shard 1.
        let step = (bytes.len() / 200).max(1);
        for i in (0..bytes.len()).step_by(step) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            std::fs::write(&victim, &corrupt).expect("write corrupt segment");
            match load_sharded(&dir, "c", 99, 3, 2, ArtifactSource::Read) {
                Err(ShardedError::Shard {
                    shard: 1,
                    source: _,
                }) => {}
                other => panic!("flip at byte {i}: expected Shard{{1}}, got {other:?}"),
            }
        }
        // Truncations too.
        for len in [0, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&victim, &bytes[..len]).expect("truncate segment");
            let err = load_sharded(&dir, "c", 99, 3, 2, ArtifactSource::Read)
                .map(|_| ())
                .expect_err("truncated segment must fail");
            assert!(
                matches!(err, ShardedError::Shard { shard: 1, .. }),
                "truncation to {len}: {err:?}"
            );
            assert!(err.to_string().contains("shard 1"), "{err}");
        }
        // Restore; loads again.
        std::fs::write(&victim, &bytes).expect("restore");
        assert!(load_sharded(&dir, "c", 99, 3, 2, ArtifactSource::Read).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swapped_segments_rejected_per_shard() {
        let dir = temp_dir("swap");
        saved_sharded(&dir, "s", 2, 123);
        // Swap shard 0 and shard 1 segment files: the embedded
        // per-slot fingerprints must catch it.
        let a = dir.join(segment_file("s", 0));
        let b = dir.join(segment_file("s", 1));
        let tmp = dir.join("tmp.qgidx");
        std::fs::rename(&a, &tmp).unwrap();
        std::fs::rename(&b, &a).unwrap();
        std::fs::rename(&tmp, &b).unwrap();
        match load_sharded(&dir, "s", 123, 2, 1, ArtifactSource::Read) {
            Err(ShardedError::Shard {
                shard: 0,
                source: OndiskError::MetaMismatch { .. },
            }) => {}
            other => panic!("expected shard-0 MetaMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_typed() {
        let dir = temp_dir("manifest");
        saved_sharded(&dir, "m", 2, 5);
        let path = dir.join(manifest_file("m"));
        let bytes = std::fs::read(&path).expect("manifest exists");
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            std::fs::write(&path, &corrupt).expect("write corrupt manifest");
            assert!(
                matches!(
                    load_sharded(&dir, "m", 5, 2, 1, ArtifactSource::Read),
                    Err(ShardedError::Manifest(_))
                ),
                "manifest flip at byte {i} must fail as Manifest"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
