//! Retrieval-quality metrics: the paper's Eq. 1 and friends.
//!
//! `P(A, r, D) = |T(A, r) ∩ D| / r` — top-r precision of results
//! against the expected set `D` — and `O(A, D)`, the mean of `P` over
//! `R = {1, 5, 10, 15}` (Eq. 1). The ground-truth construction, the
//! contribution measure of Fig. 5/9, and Tables 2 and 4 are all defined
//! in terms of these two functions.

use crate::engine::SearchHit;

/// The paper's evaluation cutoffs `R = {1, 5, 10, 15}`.
pub const EVAL_CUTOFFS: [usize; 4] = [1, 5, 10, 15];

/// Top-`r` precision of a ranked result list against a sorted relevant
/// set. `relevant` must be sorted ascending (binary search is used).
///
/// Matches the paper's definition exactly: the denominator is `r` even
/// when fewer than `r` documents were retrieved.
pub fn precision_at(results: &[SearchHit], relevant: &[u32], r: usize) -> f64 {
    if r == 0 {
        return 0.0;
    }
    let hits = results
        .iter()
        .take(r)
        .filter(|h| relevant.binary_search(&h.doc).is_ok())
        .count();
    hits as f64 / r as f64
}

/// The paper's Eq. 1: mean of top-r precision over [`EVAL_CUTOFFS`].
pub fn average_quality(results: &[SearchHit], relevant: &[u32]) -> f64 {
    let sum: f64 = EVAL_CUTOFFS
        .iter()
        .map(|&r| precision_at(results, relevant, r))
        .sum();
    sum / EVAL_CUTOFFS.len() as f64
}

/// Per-cutoff precisions in `EVAL_CUTOFFS` order — the row shape of
/// Tables 2 and 4.
pub fn precisions(results: &[SearchHit], relevant: &[u32]) -> [f64; 4] {
    let mut out = [0.0; 4];
    for (i, &r) in EVAL_CUTOFFS.iter().enumerate() {
        out[i] = precision_at(results, relevant, r);
    }
    out
}

/// Average precision (AP) of one ranked list — used by the extension
/// analyses, not by the paper's tables.
pub fn average_precision(results: &[SearchHit], relevant: &[u32]) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, h) in results.iter().enumerate() {
        if relevant.binary_search(&h.doc).is_ok() {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(docs: &[u32]) -> Vec<SearchHit> {
        docs.iter()
            .enumerate()
            .map(|(i, &doc)| SearchHit {
                doc,
                score: -(i as f64),
            })
            .collect()
    }

    #[test]
    fn precision_at_basic() {
        let results = hits(&[1, 2, 3, 4, 5]);
        let relevant = [2, 4, 9];
        assert_eq!(precision_at(&results, &relevant, 1), 0.0);
        assert_eq!(precision_at(&results, &relevant, 2), 0.5);
        assert_eq!(precision_at(&results, &relevant, 5), 0.4);
    }

    #[test]
    fn denominator_is_r_even_when_short() {
        // 2 results, both relevant, r=10 → 0.2 (paper's definition).
        let results = hits(&[1, 2]);
        let relevant = [1, 2];
        assert_eq!(precision_at(&results, &relevant, 10), 0.2);
    }

    #[test]
    fn r_zero_is_zero() {
        assert_eq!(precision_at(&hits(&[1]), &[1], 0), 0.0);
    }

    #[test]
    fn average_quality_is_mean_over_cutoffs() {
        let results = hits(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]);
        let relevant: Vec<u32> = (1..=15).collect();
        // Perfect ranking: P@1 = P@5 = P@10 = P@15 = 1.
        assert_eq!(average_quality(&results, &relevant), 1.0);
    }

    #[test]
    fn average_quality_partial() {
        let results = hits(&[1, 99, 98, 97, 96]);
        let relevant = [1];
        // P@1=1, P@5=0.2, P@10=0.1, P@15=1/15.
        let expect = (1.0 + 0.2 + 0.1 + 1.0 / 15.0) / 4.0;
        assert!((average_quality(&results, &relevant) - expect).abs() < 1e-12);
    }

    #[test]
    fn precisions_match_individual_calls() {
        let results = hits(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let relevant = [1, 2, 3];
        let p = precisions(&results, &relevant);
        for (i, &r) in EVAL_CUTOFFS.iter().enumerate() {
            assert_eq!(p[i], precision_at(&results, &relevant, r));
        }
    }

    #[test]
    fn empty_results_zero_precision() {
        assert_eq!(average_quality(&[], &[1, 2]), 0.0);
    }

    #[test]
    fn average_precision_perfect_and_empty() {
        let results = hits(&[1, 2]);
        assert_eq!(average_precision(&results, &[1, 2]), 1.0);
        assert_eq!(average_precision(&results, &[]), 0.0);
        // Relevant at ranks 1 and 3.
        let results = hits(&[1, 9, 2]);
        let expect = (1.0 + 2.0 / 3.0) / 2.0;
        assert!((average_precision(&results, &[1, 2]) - expect).abs() < 1e-12);
    }
}
