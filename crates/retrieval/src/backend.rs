//! The retrieval surface the rest of the workspace scores through.
//!
//! Everything above this crate — the §2.2 hill climb's
//! [`crate::workspace::ScoreWorkspace`], the serving facade, the
//! reproduction pipeline — used to talk to [`SearchEngine`] directly,
//! hard-wiring "one engine, one artifact" into every layer.
//! [`RetrievalBackend`] extracts exactly the surface those consumers
//! use, so a backend can be the monolithic engine *or* the
//! doc-partitioned [`ShardedEngine`] —
//! and, once a shard is a process, a remote scatter-gather client —
//! without the science noticing.
//!
//! ## The byte-identity contract
//!
//! Every implementation must return **bit-identical** results for the
//! same logical collection, whatever its physical layout:
//!
//! * [`RetrievalBackend::search`] — same hits, same scores, same order
//!   (descending score, ties by ascending *global* doc id).
//! * [`RetrievalBackend::resolve_phrase`] — same hits in global doc-id
//!   order and the same collection probability (exact integer counts
//!   divided by the global token total).
//! * [`RetrievalBackend::epsilon_prob`] / collection statistics — the
//!   *global* values, aggregated once at build/load, never a shard's
//!   local view (Dirichlet smoothing reads them directly, so a local
//!   value would silently shift every score).
//!
//! The golden `Report` pins and the sharded-equivalence property tests
//! enforce this contract across the whole pipeline.

use crate::engine::{PhraseInfo, SearchEngine, SearchHit, SearchMode};
use crate::index::InvertedIndex;
use crate::lm::LmParams;
use crate::query_lang::QueryNode;
use crate::remote::RemoteEngine;
use crate::sharded::{ShardedEngine, ShardedError};
use std::sync::Arc;

/// The scoring/retrieval surface consumed by the workspace, the
/// pipeline, and the serving facade. Object-safe; `Send + Sync` so one
/// backend serves every worker thread.
pub trait RetrievalBackend: Send + Sync {
    /// The Dirichlet smoothing parameters scoring uses.
    fn params(&self) -> LmParams;

    /// The smoothing floor for unseen components: the smallest nonzero
    /// probability of the **global** collection (0.5 / total tokens).
    fn epsilon_prob(&self) -> f64;

    /// Total token count of the global collection.
    fn total_tokens(&self) -> u64;

    /// Number of documents in the global collection.
    fn num_docs(&self) -> usize;

    /// Length (token count) of document `doc` (global doc id).
    fn doc_len(&self, doc: u32) -> u32;

    /// Resolve (and memoize) one exact phrase: hits in global doc-id
    /// order plus the global collection probability.
    fn resolve_phrase(&self, words: &[String]) -> Arc<PhraseInfo>;

    /// Execute a parsed query, returning the best `k` documents
    /// (descending score, ties by ascending global doc id).
    fn search(&self, query: &QueryNode, k: usize) -> Vec<SearchHit>;

    /// [`RetrievalBackend::search`] with an explicit execution mode.
    /// [`SearchMode::Exact`] must equal `search` bitwise;
    /// [`SearchMode::Pruned`] must be rank-equivalent (same documents
    /// in the same order, scores within 1e-9). The default ignores the
    /// mode and scores exactly — always a valid (if unaccelerated)
    /// implementation of that contract.
    fn search_with(&self, query: &QueryNode, k: usize, mode: SearchMode) -> Vec<SearchHit> {
        let _ = mode;
        self.search(query, k)
    }

    /// Fallible form of [`RetrievalBackend::search_with`] for backends
    /// whose shards can fail at query time (remote shard processes).
    /// The typed error names the failing shard so the serving facade
    /// can surface it as `ServiceError::ArtifactShard`. In-process
    /// backends never fail: the default wraps `search_with`.
    fn try_search_with(
        &self,
        query: &QueryNode,
        k: usize,
        mode: SearchMode,
    ) -> Result<Vec<SearchHit>, ShardedError> {
        Ok(self.search_with(query, k, mode))
    }

    /// Where shard `shard` physically lives, when the backend knows —
    /// a socket address for remote shard processes, `None` for
    /// in-process backends (the error path then falls back to the
    /// segment path).
    fn shard_endpoint(&self, shard: usize) -> Option<String> {
        let _ = shard;
        None
    }

    /// Number of physical shards behind this backend (1 = monolithic).
    fn shard_count(&self) -> usize;

    /// Total phrase-cache entries across shards (observability).
    fn phrase_cache_len(&self) -> usize;

    /// A key identifying the collection snapshot this backend currently
    /// answers from. Static backends never change collections, so the
    /// default is a constant; [`ReloadableEngine`] returns its live
    /// generation fingerprint so caches keyed by (query, epoch) can
    /// never serve answers computed against a replaced generation.
    fn cache_epoch(&self) -> u64 {
        0
    }
}

impl RetrievalBackend for SearchEngine {
    fn params(&self) -> LmParams {
        SearchEngine::params(self)
    }

    fn epsilon_prob(&self) -> f64 {
        self.index().epsilon_prob()
    }

    fn total_tokens(&self) -> u64 {
        self.index().total_tokens()
    }

    fn num_docs(&self) -> usize {
        self.index().num_docs()
    }

    fn doc_len(&self, doc: u32) -> u32 {
        self.index().doc_len(doc)
    }

    fn resolve_phrase(&self, words: &[String]) -> Arc<PhraseInfo> {
        self.phrase_info(words)
    }

    fn search(&self, query: &QueryNode, k: usize) -> Vec<SearchHit> {
        SearchEngine::search(self, query, k)
    }

    fn search_with(&self, query: &QueryNode, k: usize, mode: SearchMode) -> Vec<SearchHit> {
        SearchEngine::search_with(self, query, k, mode)
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn phrase_cache_len(&self) -> usize {
        SearchEngine::phrase_cache_len(self)
    }
}

/// An owned backend of either physical layout — what world builders
/// return and [`Experiment`](../../querygraph_core) / `ServingWorld`
/// hold. Dispatch to the trait with [`AnyEngine::backend`], or coerce a
/// `&AnyEngine` to `&dyn RetrievalBackend` directly (it implements the
/// trait by delegation).
pub enum AnyEngine {
    /// The monolithic engine over one index.
    Mono(SearchEngine),
    /// N doc-partitioned shards behind deterministic scatter-gather.
    Sharded(ShardedEngine),
    /// N shard *processes* behind QGRP scatter-gather
    /// ([`crate::remote`]).
    Remote(RemoteEngine),
    /// A hot-swappable engine serving a segstore generation; swapped
    /// onto new generations between queries with zero downtime.
    Reloadable(ReloadableEngine),
}

impl AnyEngine {
    /// This engine as a trait object.
    pub fn backend(&self) -> &(dyn RetrievalBackend + 'static) {
        match self {
            AnyEngine::Mono(e) => e,
            AnyEngine::Sharded(e) => e,
            AnyEngine::Remote(e) => e,
            AnyEngine::Reloadable(e) => e,
        }
    }

    /// The monolithic engine, when this is one.
    pub fn as_mono(&self) -> Option<&SearchEngine> {
        match self {
            AnyEngine::Mono(e) => Some(e),
            _ => None,
        }
    }

    /// The sharded engine, when this is one.
    pub fn as_sharded(&self) -> Option<&ShardedEngine> {
        match self {
            AnyEngine::Sharded(e) => Some(e),
            _ => None,
        }
    }

    /// The reloadable wrapper, when this is one.
    pub fn as_reloadable(&self) -> Option<&ReloadableEngine> {
        match self {
            AnyEngine::Reloadable(e) => Some(e),
            _ => None,
        }
    }

    /// The monolithic engine's index (None when sharded); kept for the
    /// single-artifact cache paths and tests.
    pub fn index(&self) -> Option<&InvertedIndex> {
        self.as_mono().map(SearchEngine::index)
    }

    /// Execute a query (convenience delegation, so callers holding the
    /// enum don't need the trait in scope).
    pub fn search(&self, query: &QueryNode, k: usize) -> Vec<SearchHit> {
        self.backend().search(query, k)
    }

    /// Execute a query with an explicit [`SearchMode`].
    pub fn search_with(&self, query: &QueryNode, k: usize, mode: SearchMode) -> Vec<SearchHit> {
        self.backend().search_with(query, k, mode)
    }

    /// Number of documents in the global collection.
    pub fn num_docs(&self) -> usize {
        self.backend().num_docs()
    }

    /// Number of physical shards (1 = monolithic).
    pub fn shard_count(&self) -> usize {
        self.backend().shard_count()
    }
}

impl RetrievalBackend for AnyEngine {
    fn params(&self) -> LmParams {
        self.backend().params()
    }

    fn epsilon_prob(&self) -> f64 {
        self.backend().epsilon_prob()
    }

    fn total_tokens(&self) -> u64 {
        self.backend().total_tokens()
    }

    fn num_docs(&self) -> usize {
        self.backend().num_docs()
    }

    fn doc_len(&self, doc: u32) -> u32 {
        self.backend().doc_len(doc)
    }

    fn resolve_phrase(&self, words: &[String]) -> Arc<PhraseInfo> {
        self.backend().resolve_phrase(words)
    }

    fn search(&self, query: &QueryNode, k: usize) -> Vec<SearchHit> {
        self.backend().search(query, k)
    }

    fn search_with(&self, query: &QueryNode, k: usize, mode: SearchMode) -> Vec<SearchHit> {
        self.backend().search_with(query, k, mode)
    }

    fn try_search_with(
        &self,
        query: &QueryNode,
        k: usize,
        mode: SearchMode,
    ) -> Result<Vec<SearchHit>, ShardedError> {
        self.backend().try_search_with(query, k, mode)
    }

    fn shard_endpoint(&self, shard: usize) -> Option<String> {
        self.backend().shard_endpoint(shard)
    }

    fn shard_count(&self) -> usize {
        self.backend().shard_count()
    }

    fn phrase_cache_len(&self) -> usize {
        self.backend().phrase_cache_len()
    }

    fn cache_epoch(&self) -> u64 {
        self.backend().cache_epoch()
    }
}

/// One immutable engine generation behind a [`ReloadableEngine`]: the
/// engine plus the epoch (generation fingerprint) it serves.
pub struct EngineGeneration {
    /// The engine answering queries for this generation.
    pub engine: AnyEngine,
    /// The generation's cache-epoch key (see
    /// [`RetrievalBackend::cache_epoch`]).
    pub epoch: u64,
}

/// A hot-swappable [`RetrievalBackend`]: an `Arc`-shared slot holding
/// the current [`EngineGeneration`].
///
/// Every trait call snapshots the current generation (one short lock to
/// clone an `Arc`) and runs entirely against that snapshot, so a
/// concurrent [`ReloadableEngine::swap`] never breaks an in-flight
/// query: requests that started on the old generation finish on it
/// (their `Arc` keeps it alive), requests that start after the swap see
/// the new one. That makes the swap zero-downtime by construction — no
/// request is dropped, blocked, or served a half-replaced engine.
///
/// `Clone` shares the slot, so a background reload thread can hold one
/// handle and swap while the serving loop reads through another.
#[derive(Clone)]
pub struct ReloadableEngine {
    slot: Arc<parking_lot::Mutex<Arc<EngineGeneration>>>,
}

impl ReloadableEngine {
    /// Wrap an engine as the initial generation.
    pub fn new(engine: AnyEngine, epoch: u64) -> ReloadableEngine {
        ReloadableEngine {
            slot: Arc::new(parking_lot::Mutex::new(Arc::new(EngineGeneration {
                engine,
                epoch,
            }))),
        }
    }

    /// The current generation (kept alive by the returned `Arc` even
    /// across swaps).
    pub fn snapshot(&self) -> Arc<EngineGeneration> {
        self.slot.lock().clone()
    }

    /// Install a new generation; returns the replaced one so the caller
    /// can drain/tear it down (e.g. shut down a replaced shard fleet)
    /// once its in-flight queries finish.
    pub fn swap(&self, engine: AnyEngine, epoch: u64) -> Arc<EngineGeneration> {
        let next = Arc::new(EngineGeneration { engine, epoch });
        std::mem::replace(&mut *self.slot.lock(), next)
    }

    /// The current generation's epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }
}

impl RetrievalBackend for ReloadableEngine {
    fn params(&self) -> LmParams {
        self.snapshot().engine.backend().params()
    }

    fn epsilon_prob(&self) -> f64 {
        self.snapshot().engine.backend().epsilon_prob()
    }

    fn total_tokens(&self) -> u64 {
        self.snapshot().engine.backend().total_tokens()
    }

    fn num_docs(&self) -> usize {
        self.snapshot().engine.backend().num_docs()
    }

    fn doc_len(&self, doc: u32) -> u32 {
        self.snapshot().engine.backend().doc_len(doc)
    }

    fn resolve_phrase(&self, words: &[String]) -> Arc<PhraseInfo> {
        self.snapshot().engine.backend().resolve_phrase(words)
    }

    fn search(&self, query: &QueryNode, k: usize) -> Vec<SearchHit> {
        self.snapshot().engine.backend().search(query, k)
    }

    fn search_with(&self, query: &QueryNode, k: usize, mode: SearchMode) -> Vec<SearchHit> {
        self.snapshot().engine.backend().search_with(query, k, mode)
    }

    fn try_search_with(
        &self,
        query: &QueryNode,
        k: usize,
        mode: SearchMode,
    ) -> Result<Vec<SearchHit>, ShardedError> {
        self.snapshot()
            .engine
            .backend()
            .try_search_with(query, k, mode)
    }

    fn shard_endpoint(&self, shard: usize) -> Option<String> {
        self.snapshot().engine.backend().shard_endpoint(shard)
    }

    fn shard_count(&self) -> usize {
        self.snapshot().engine.backend().shard_count()
    }

    fn phrase_cache_len(&self) -> usize {
        self.snapshot().engine.backend().phrase_cache_len()
    }

    fn cache_epoch(&self) -> u64 {
        self.snapshot().epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::query_lang::parse;

    fn engine() -> SearchEngine {
        let mut b = IndexBuilder::new();
        b.add_document("a gondola on the grand canal of venice");
        b.add_document("the grand hotel beside a small canal");
        SearchEngine::new(b.build())
    }

    #[test]
    fn trait_methods_mirror_the_engine() {
        let e = engine();
        let b: &dyn RetrievalBackend = &e;
        assert_eq!(b.num_docs(), 2);
        assert_eq!(b.total_tokens(), e.index().total_tokens());
        assert_eq!(b.epsilon_prob(), e.index().epsilon_prob());
        assert_eq!(b.doc_len(0), e.index().doc_len(0));
        assert_eq!(b.shard_count(), 1);
        let q = parse("#combine(#1(grand canal) venice)").unwrap();
        assert_eq!(b.search(&q, 5), e.search(&q, 5));
        let words = vec!["grand".to_string(), "canal".to_string()];
        let p = b.resolve_phrase(&words);
        // Adjacent only in doc 0 ("grand canal"); doc 1 has the words
        // scattered.
        assert_eq!(p.hits.len(), 1);
        assert_eq!(p.hits[0].doc, 0);
        assert!(b.phrase_cache_len() >= 1);
    }

    #[test]
    fn any_engine_delegates_to_mono() {
        let any = AnyEngine::Mono(engine());
        assert!(any.as_mono().is_some());
        assert!(any.as_sharded().is_none());
        assert_eq!(any.shard_count(), 1);
        assert_eq!(any.num_docs(), 2);
        let q = parse("#1(grand canal)").unwrap();
        assert_eq!(any.search(&q, 5), any.backend().search(&q, 5));
    }

    #[test]
    fn static_backends_have_constant_epoch() {
        let e = engine();
        let b: &dyn RetrievalBackend = &e;
        assert_eq!(b.cache_epoch(), 0);
        assert_eq!(AnyEngine::Mono(engine()).cache_epoch(), 0);
    }

    fn engine_over(docs: &[&str]) -> SearchEngine {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add_document(d);
        }
        SearchEngine::new(b.build())
    }

    #[test]
    fn reloadable_swap_changes_answers_and_epoch() {
        let a = AnyEngine::Mono(engine_over(&["gondola venice", "canal"]));
        let b = AnyEngine::Mono(engine_over(&[
            "mountain hut",
            "mountain pass",
            "gondola lift",
        ]));
        let r = ReloadableEngine::new(a, 1);
        let any = AnyEngine::Reloadable(r.clone());
        assert_eq!(any.num_docs(), 2);
        assert_eq!(any.cache_epoch(), 1);
        let old = r.swap(b, 2);
        assert_eq!(old.epoch, 1, "swap returns the replaced generation");
        assert_eq!(any.num_docs(), 3);
        assert_eq!(any.cache_epoch(), 2);
        // The replaced generation is still fully usable by holders.
        assert_eq!(old.engine.num_docs(), 2);
    }

    /// The zero-downtime conformance drill: queries race a tight swap
    /// loop; every response must exactly equal one of the two valid
    /// generations' answers — never an error, a panic, or a blend.
    #[test]
    fn concurrent_swaps_never_break_in_flight_queries() {
        let docs_a = ["a gondola on the grand canal", "the grand hotel"];
        let docs_b = [
            "a gondola on the grand canal",
            "the grand hotel",
            "a new grand canal document",
            "another gondola entirely",
        ];
        let q = parse("#combine(#1(grand canal) gondola)").unwrap();
        let expect_a = engine_over(&docs_a).search(&q, 10);
        let expect_b = engine_over(&docs_b).search(&q, 10);
        assert_ne!(expect_a, expect_b, "fixtures must be distinguishable");

        let r = ReloadableEngine::new(AnyEngine::Mono(engine_over(&docs_a)), 1);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = r.clone();
                let q = &q;
                let (expect_a, expect_b) = (&expect_a, &expect_b);
                let stop = &stop;
                scope.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let snap = r.snapshot();
                        let hits = r.search(q, 10);
                        assert!(
                            hits == *expect_a || hits == *expect_b,
                            "response must match a whole generation"
                        );
                        // Epoch and answer must come from the same side.
                        let epoch = snap.epoch;
                        assert!(epoch == 1 || epoch == 2);
                    }
                });
            }
            for i in 0..200 {
                let (engine, epoch) = if i % 2 == 0 {
                    (AnyEngine::Mono(engine_over(&docs_b)), 2)
                } else {
                    (AnyEngine::Mono(engine_over(&docs_a)), 1)
                };
                r.swap(engine, epoch);
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
}
