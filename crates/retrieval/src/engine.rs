//! Query execution: the search engine the ground-truth pipeline talks
//! to.
//!
//! [`SearchEngine`] owns the index, flattens a parsed [`QueryNode`] into
//! weighted leaves (terms and exact phrases), scores the union of
//! candidate documents under the Dirichlet LM, and returns deterministic
//! top-k hits. Phrase postings (and their exact collection frequencies)
//! are cached behind a `parking_lot::Mutex`: the hill-climbing search of
//! §2.2 re-evaluates the same title phrases thousands of times per
//! query, so this cache dominates end-to-end ground-truth time.

use crate::index::InvertedIndex;
use crate::lm::{log_belief, LmParams};
use crate::phrase::{match_phrase, resolve_terms, PhraseHit};
use crate::query_lang::QueryNode;
use crate::topk::TopK;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Number of phrase-cache shards. Sixteen is comfortably above the
/// worker counts the pipeline runs with (8–12 threads), so two hill
/// climbs rarely contend on the same shard lock, while the per-shard
/// `HashMap` overhead stays negligible (16 empty maps ≈ 1 KiB).
const PHRASE_CACHE_SHARDS: usize = 16;

/// One retrieval result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Document id.
    pub doc: u32,
    /// Query-likelihood score (log domain, higher is better).
    pub score: f64,
}

/// Cached evaluation of one phrase: exact hits (ascending doc id) plus
/// the exact phrase collection probability. This is what
/// [`crate::backend::RetrievalBackend::resolve_phrase`] hands the score
/// workspace — for the monolithic engine straight out of the phrase
/// cache, for the sharded engine assembled from per-shard hits with
/// globally aggregated statistics.
#[derive(Debug)]
pub struct PhraseInfo {
    /// Exact hits in (global) doc-id order.
    pub hits: Vec<PhraseHit>,
    /// Exact phrase collection probability over the whole collection.
    pub collection_prob: f64,
}

/// One exported phrase-dictionary entry: a phrase's words and its full
/// cached evaluation. This is what [`crate::ondisk`] persists so a
/// loaded engine starts with a warm phrase dictionary instead of
/// re-matching every title phrase on first use.
#[derive(Debug, Clone, PartialEq)]
pub struct PhraseCacheEntry {
    /// The normalized phrase words (the cache key).
    pub words: Vec<String>,
    /// Exact hits in doc-id order.
    pub hits: Vec<PhraseHit>,
    /// Exact phrase collection probability.
    pub collection_prob: f64,
}

/// A weighted leaf of the flattened query.
struct Leaf {
    weight: f64,
    tf_by_doc: HashMap<u32, u32>,
    collection_prob: f64,
}

/// One unresolved leaf of a flattened query AST: what the query asks
/// for, before any index lookup. Shared by the monolithic and sharded
/// engines so both resolve the *same* leaves with the *same* weights.
pub(crate) enum LeafSpec<'q> {
    /// A bare term.
    Term(&'q str),
    /// An exact `#1(...)` phrase.
    Phrase(&'q [String]),
}

/// The phrase-cache slot for `words` among `slots` locks — shared by
/// the engine's cache and the sharded engine's global cache.
pub(crate) fn phrase_cache_slot(words: &[String], slots: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    words.hash(&mut h);
    h.finish() as usize % slots
}

/// Flatten the AST into weighted leaf specs. `#combine` distributes its
/// weight uniformly; `#weight` distributes proportionally (normalized
/// by the sum of child weights, INDRI-style).
///
/// The weight arithmetic here is the *only* place query weights are
/// computed — [`SearchEngine`] and the sharded engine both flatten
/// through it, so their per-leaf weights are bit-identical by
/// construction.
pub(crate) fn flatten_specs<'q>(
    node: &'q QueryNode,
    weight: f64,
    out: &mut Vec<(f64, LeafSpec<'q>)>,
) {
    match node {
        QueryNode::Term(t) => out.push((weight, LeafSpec::Term(t))),
        QueryNode::Phrase(words) => out.push((weight, LeafSpec::Phrase(words))),
        QueryNode::Combine(children) => {
            if children.is_empty() {
                return;
            }
            let w = weight / children.len() as f64;
            for c in children {
                flatten_specs(c, w, out);
            }
        }
        QueryNode::Weight(children) => {
            let total: f64 = children.iter().map(|(w, _)| w.max(0.0)).sum();
            if total <= 0.0 {
                return;
            }
            for (w, c) in children {
                if *w > 0.0 {
                    flatten_specs(c, weight * w / total, out);
                }
            }
        }
    }
}

/// The search engine. Cheap to share behind `Arc`; `search` takes
/// `&self`.
pub struct SearchEngine {
    index: InvertedIndex,
    params: LmParams,
    /// Phrase cache, sharded by a hash of the phrase words so parallel
    /// hill climbs (each phrase-heavy) don't serialize on one mutex.
    phrase_cache: Vec<Mutex<HashMap<Vec<String>, Arc<PhraseInfo>>>>,
}

impl SearchEngine {
    /// Engine with default LM parameters (μ = 2500).
    pub fn new(index: InvertedIndex) -> Self {
        Self::with_params(index, LmParams::default())
    }

    /// Engine with explicit parameters.
    pub fn with_params(index: InvertedIndex, params: LmParams) -> Self {
        SearchEngine {
            index,
            params,
            phrase_cache: (0..PHRASE_CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The scoring parameters (shared with [`crate::workspace`] and the
    /// backend trait).
    pub fn params(&self) -> LmParams {
        self.params
    }

    /// Execute `query`, returning the best `k` documents (descending
    /// score, ties by ascending doc id). Only documents matching at
    /// least one leaf are candidates; an all-background document can
    /// never enter the top-k.
    pub fn search(&self, query: &QueryNode, k: usize) -> Vec<SearchHit> {
        let mut specs = Vec::new();
        flatten_specs(query, 1.0, &mut specs);
        let leaves: Vec<Leaf> = specs
            .into_iter()
            .map(|(weight, spec)| self.resolve_leaf(weight, &spec))
            .collect();
        if leaves.is_empty() {
            return Vec::new();
        }

        // Candidates: any doc matching at least one leaf.
        let mut candidates: Vec<u32> = leaves
            .iter()
            .flat_map(|l| l.tf_by_doc.keys().copied())
            .collect();
        candidates.sort_unstable();
        candidates.dedup();

        let mut topk = TopK::new(k);
        for doc in candidates {
            let len = self.index.doc_len(doc);
            let mut score = 0.0;
            for leaf in &leaves {
                let tf = leaf.tf_by_doc.get(&doc).copied().unwrap_or(0);
                score += leaf.weight
                    * log_belief(self.params, &self.index, tf, len, leaf.collection_prob);
            }
            topk.push(doc, score);
        }
        topk.into_sorted()
            .into_iter()
            .map(|s| SearchHit {
                doc: s.doc,
                score: s.score,
            })
            .collect()
    }

    /// Resolve one flattened leaf spec against this engine's index.
    fn resolve_leaf(&self, weight: f64, spec: &LeafSpec<'_>) -> Leaf {
        match spec {
            LeafSpec::Term(t) => {
                let (tf_by_doc, collection_prob) = self.term_postings(t);
                Leaf {
                    weight,
                    tf_by_doc,
                    collection_prob,
                }
            }
            LeafSpec::Phrase(words) => {
                let info = self.phrase_info(words);
                Leaf {
                    weight,
                    tf_by_doc: info.hits.iter().map(|h| (h.doc, h.tf)).collect(),
                    collection_prob: info.collection_prob,
                }
            }
        }
    }

    fn term_postings(&self, term: &str) -> (HashMap<u32, u32>, f64) {
        match self.index.postings_for(term) {
            Some(list) => (
                list.iter().map(|p| (p.doc, p.tf())).collect(),
                list.collection_freq() as f64 / self.index.total_tokens().max(1) as f64,
            ),
            None => (HashMap::new(), 0.0),
        }
    }

    /// The shard responsible for `words`.
    fn shard(&self, words: &[String]) -> &Mutex<HashMap<Vec<String>, Arc<PhraseInfo>>> {
        &self.phrase_cache[phrase_cache_slot(words, self.phrase_cache.len())]
    }

    /// Cached phrase evaluation: exact hits plus the exact phrase
    /// collection probability (total phrase occurrences / total tokens).
    /// Two threads racing on the same uncached phrase both compute it;
    /// the second insert overwrites with an identical value, so the race
    /// is benign.
    pub(crate) fn phrase_info(&self, words: &[String]) -> Arc<PhraseInfo> {
        let shard = self.shard(words);
        if let Some(hit) = shard.lock().get(words) {
            return hit.clone();
        }
        let hits = match resolve_terms(&self.index, words) {
            Some(terms) => match_phrase(&self.index, &terms),
            None => Vec::new(),
        };
        let cf: u64 = hits.iter().map(|h| h.tf as u64).sum();
        let info = Arc::new(PhraseInfo {
            hits,
            collection_prob: cf as f64 / self.index.total_tokens().max(1) as f64,
        });
        shard.lock().insert(words.to_vec(), info.clone());
        info
    }

    /// Number of cached phrases (observability for benches).
    pub fn phrase_cache_len(&self) -> usize {
        self.phrase_cache.iter().map(|s| s.lock().len()).sum()
    }

    /// Evaluate (and cache) one phrase — warming loops call this per
    /// title so only one tokenization is alive at a time (at stress
    /// scale there are 100k+ titles). Empty phrases are skipped.
    pub fn warm_phrase(&self, words: &[String]) {
        if !words.is_empty() {
            self.phrase_info(words);
        }
    }

    /// Evaluate (and cache) every phrase in `phrases` — used to warm
    /// the phrase dictionary before persisting it. Duplicates and empty
    /// phrases are skipped.
    pub fn warm_phrases<'a>(&self, phrases: impl IntoIterator<Item = &'a [String]>) {
        for words in phrases {
            self.warm_phrase(words);
        }
    }

    /// Export the phrase dictionary, sorted by phrase words so the
    /// serialized artifact is deterministic regardless of evaluation
    /// order or sharding.
    pub fn export_phrase_cache(&self) -> Vec<PhraseCacheEntry> {
        let mut out: Vec<PhraseCacheEntry> = self
            .phrase_cache
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .iter()
                    .map(|(words, info)| PhraseCacheEntry {
                        words: words.clone(),
                        hits: info.hits.clone(),
                        collection_prob: info.collection_prob,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.words.cmp(&b.words));
        out
    }

    /// Seed the phrase dictionary with previously exported entries
    /// (e.g. loaded from an on-disk artifact). Entries are memoization
    /// values — pure functions of the index — so seeding never changes
    /// search results, only skips re-matching.
    pub fn seed_phrase_cache(&self, entries: Vec<PhraseCacheEntry>) {
        for e in entries {
            let info = Arc::new(PhraseInfo {
                hits: e.hits,
                collection_prob: e.collection_prob,
            });
            self.shard(&e.words).lock().insert(e.words, info);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::query_lang::parse;

    fn engine() -> SearchEngine {
        let mut b = IndexBuilder::new();
        b.add_document("a gondola on the grand canal of venice"); // 0
        b.add_document("the grand hotel beside a small canal"); // 1
        b.add_document("venice has many bridges and one grand canal"); // 2
        b.add_document("completely unrelated text about mountains"); // 3
        SearchEngine::new(b.build())
    }

    #[test]
    fn phrase_query_prefers_exact_match() {
        let e = engine();
        let hits = e.search(&parse("#1(grand canal)").unwrap(), 10);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        // Docs 0 and 2 contain the exact phrase; doc 1 has both words
        // but not adjacent — it may appear via background only if it
        // matched a leaf, which it does not for a pure phrase query.
        assert_eq!(docs, vec![0, 2]);
    }

    #[test]
    fn combine_blends_phrase_and_term() {
        let e = engine();
        let hits = e.search(&parse("#combine(#1(grand canal) venice)").unwrap(), 10);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        // Docs 0 and 2 match both leaves. Doc 1 matches neither (its
        // "grand" and "canal" are not adjacent) so it is no candidate.
        assert_eq!(docs.len(), 2);
        assert!(docs.contains(&0) && docs.contains(&2));
    }

    #[test]
    fn unrelated_doc_never_retrieved() {
        let e = engine();
        let hits = e.search(&parse("#combine(gondola venice)").unwrap(), 10);
        assert!(hits.iter().all(|h| h.doc != 3));
    }

    #[test]
    fn k_limits_results() {
        let e = engine();
        let hits = e.search(&parse("the").unwrap(), 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn scores_descend() {
        let e = engine();
        let hits = e.search(&parse("#combine(grand canal venice)").unwrap(), 10);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn weight_shifts_ranking() {
        let mut b = IndexBuilder::new();
        b.add_document("apple apple banana"); // 0: apple-heavy
        b.add_document("banana banana apple"); // 1: banana-heavy
        let e = SearchEngine::new(b.build());
        let apple_heavy = e.search(&parse("#weight(0.9 apple 0.1 banana)").unwrap(), 2);
        assert_eq!(apple_heavy[0].doc, 0);
        let banana_heavy = e.search(&parse("#weight(0.1 apple 0.9 banana)").unwrap(), 2);
        assert_eq!(banana_heavy[0].doc, 1);
    }

    #[test]
    fn unknown_terms_yield_empty() {
        let e = engine();
        assert!(e.search(&parse("zzzzz").unwrap(), 5).is_empty());
        assert!(e.search(&parse("#1(zz yy)").unwrap(), 5).is_empty());
    }

    #[test]
    fn phrase_cache_fills_and_hits() {
        let e = engine();
        let q = parse("#1(grand canal)").unwrap();
        assert_eq!(e.phrase_cache_len(), 0);
        let first = e.search(&q, 5);
        assert_eq!(e.phrase_cache_len(), 1);
        let second = e.search(&q, 5);
        assert_eq!(e.phrase_cache_len(), 1);
        assert_eq!(first, second);
    }

    #[test]
    fn sharded_cache_counts_across_shards() {
        let e = engine();
        // Distinct phrases hash to assorted shards; the aggregate count
        // must still see every one exactly once.
        for (i, q) in [
            "#1(grand canal)",
            "#1(venice)",
            "#1(small canal)",
            "#1(the grand)",
        ]
        .iter()
        .enumerate()
        {
            let q = parse(q).unwrap();
            e.search(&q, 5);
            e.search(&q, 5); // second run hits the cache
            assert_eq!(e.phrase_cache_len(), i + 1);
        }
    }

    #[test]
    fn deterministic_tie_break() {
        let mut b = IndexBuilder::new();
        b.add_document("same words here");
        b.add_document("same words here");
        let e = SearchEngine::new(b.build());
        let hits = e.search(&parse("#1(same words)").unwrap(), 2);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(docs, vec![0, 1]);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let e = SearchEngine::new(IndexBuilder::new().build());
        assert!(e.search(&parse("anything").unwrap(), 5).is_empty());
    }

    #[test]
    fn phrase_cache_exports_sorted_and_reseeds() {
        let e = engine();
        for q in ["#1(grand canal)", "#1(venice)", "#1(small canal)"] {
            e.search(&parse(q).unwrap(), 5);
        }
        let exported = e.export_phrase_cache();
        assert_eq!(exported.len(), 3);
        let words: Vec<&Vec<String>> = exported.iter().map(|p| &p.words).collect();
        let mut sorted = words.clone();
        sorted.sort();
        assert_eq!(words, sorted, "export must be sorted for determinism");

        // A fresh engine seeded with the export answers identically
        // without growing the cache.
        let fresh = engine();
        fresh.seed_phrase_cache(exported.clone());
        assert_eq!(fresh.phrase_cache_len(), 3);
        let q = parse("#1(grand canal)").unwrap();
        assert_eq!(fresh.search(&q, 10), e.search(&q, 10));
        assert_eq!(fresh.phrase_cache_len(), 3, "seeded entry must be a hit");
        assert_eq!(fresh.export_phrase_cache(), exported);
    }

    #[test]
    fn warm_phrases_fills_cache() {
        let e = engine();
        let phrases: Vec<Vec<String>> = vec![
            vec!["grand".into(), "canal".into()],
            vec!["venice".into()],
            vec![],                               // skipped
            vec!["grand".into(), "canal".into()], // duplicate
        ];
        e.warm_phrases(phrases.iter().map(|p| p.as_slice()));
        assert_eq!(e.phrase_cache_len(), 2);
    }
}
