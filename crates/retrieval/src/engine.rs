//! Query execution: the search engine the ground-truth pipeline talks
//! to.
//!
//! [`SearchEngine`] owns the index, flattens a parsed [`QueryNode`] into
//! weighted leaves (terms and exact phrases), scores the union of
//! candidate documents under the Dirichlet LM, and returns deterministic
//! top-k hits. Phrase postings (and their exact collection frequencies)
//! are cached behind a `parking_lot::Mutex`: the hill-climbing search of
//! §2.2 re-evaluates the same title phrases thousands of times per
//! query, so this cache dominates end-to-end ground-truth time.

use crate::index::{InvertedIndex, TermBound};
use crate::lm::{log_belief, LmParams};
use crate::phrase::{match_phrase, resolve_terms, PhraseHit};
use crate::query_lang::QueryNode;
use crate::topk::{BoundHeap, TopK};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Number of phrase-cache shards. Sixteen is comfortably above the
/// worker counts the pipeline runs with (8–12 threads), so two hill
/// climbs rarely contend on the same shard lock, while the per-shard
/// `HashMap` overhead stays negligible (16 empty maps ≈ 1 KiB).
const PHRASE_CACHE_SHARDS: usize = 16;

/// Pruned search tracks per-document leaf membership in a `u64`
/// bitmask; queries with more leaves than bits fall back to the exact
/// loop (the expansion pipeline tops out far below this).
pub(crate) const MAX_PRUNED_LEAVES: usize = 64;

/// How the top-k loop executes — shared by [`SearchEngine::search_with`]
/// and the sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Score every candidate. The repro default: `Report` bytes and
    /// golden fingerprints are pinned against this mode's float-op
    /// sequence.
    #[default]
    Exact,
    /// WAND/MaxScore-style pruning: candidates whose score upper bound
    /// cannot beat the current heap floor are skipped unscored.
    /// Rank-equivalent to [`SearchMode::Exact`] — same documents in the
    /// same order, scores within 1e-9. (This implementation actually
    /// achieves bitwise-equal scores: pruning only ever *skips*
    /// documents, never reorders the float ops of the ones it scores.)
    Pruned,
}

impl SearchMode {
    /// Parse a CLI flag value (`"exact"` / `"pruned"`).
    pub fn parse(s: &str) -> Option<SearchMode> {
        match s {
            "exact" => Some(SearchMode::Exact),
            "pruned" => Some(SearchMode::Pruned),
            _ => None,
        }
    }

    /// The flag spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            SearchMode::Exact => "exact",
            SearchMode::Pruned => "pruned",
        }
    }
}

/// One retrieval result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Document id.
    pub doc: u32,
    /// Query-likelihood score (log domain, higher is better).
    pub score: f64,
}

/// Cached evaluation of one phrase: exact hits (ascending doc id) plus
/// the exact phrase collection probability. This is what
/// [`crate::backend::RetrievalBackend::resolve_phrase`] hands the score
/// workspace — for the monolithic engine straight out of the phrase
/// cache, for the sharded engine assembled from per-shard hits with
/// globally aggregated statistics.
#[derive(Debug)]
pub struct PhraseInfo {
    /// Exact hits in (global) doc-id order.
    pub hits: Vec<PhraseHit>,
    /// Exact phrase collection probability over the whole collection.
    pub collection_prob: f64,
}

/// One exported phrase-dictionary entry: a phrase's words and its full
/// cached evaluation. This is what [`crate::ondisk`] persists so a
/// loaded engine starts with a warm phrase dictionary instead of
/// re-matching every title phrase on first use.
#[derive(Debug, Clone, PartialEq)]
pub struct PhraseCacheEntry {
    /// The normalized phrase words (the cache key).
    pub words: Vec<String>,
    /// Exact hits in doc-id order.
    pub hits: Vec<PhraseHit>,
    /// Exact phrase collection probability.
    pub collection_prob: f64,
}

/// A weighted leaf of the flattened query.
struct Leaf {
    weight: f64,
    tf_by_doc: HashMap<u32, u32>,
    collection_prob: f64,
}

/// One unresolved leaf of a flattened query AST: what the query asks
/// for, before any index lookup. Shared by the monolithic and sharded
/// engines so both resolve the *same* leaves with the *same* weights.
pub(crate) enum LeafSpec<'q> {
    /// A bare term.
    Term(&'q str),
    /// An exact `#1(...)` phrase.
    Phrase(&'q [String]),
}

/// The phrase-cache slot for `words` among `slots` locks — shared by
/// the engine's cache and the sharded engine's global cache.
pub(crate) fn phrase_cache_slot(words: &[String], slots: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    words.hash(&mut h);
    h.finish() as usize % slots
}

/// Flatten the AST into weighted leaf specs. `#combine` distributes its
/// weight uniformly; `#weight` distributes proportionally (normalized
/// by the sum of child weights, INDRI-style).
///
/// The weight arithmetic here is the *only* place query weights are
/// computed — [`SearchEngine`] and the sharded engine both flatten
/// through it, so their per-leaf weights are bit-identical by
/// construction.
pub(crate) fn flatten_specs<'q>(
    node: &'q QueryNode,
    weight: f64,
    out: &mut Vec<(f64, LeafSpec<'q>)>,
) {
    match node {
        QueryNode::Term(t) => out.push((weight, LeafSpec::Term(t))),
        QueryNode::Phrase(words) => out.push((weight, LeafSpec::Phrase(words))),
        QueryNode::Combine(children) => {
            if children.is_empty() {
                return;
            }
            let w = weight / children.len() as f64;
            for c in children {
                flatten_specs(c, w, out);
            }
        }
        QueryNode::Weight(children) => {
            let total: f64 = children.iter().map(|(w, _)| w.max(0.0)).sum();
            if total <= 0.0 {
                return;
            }
            for (w, c) in children {
                if *w > 0.0 {
                    flatten_specs(c, weight * w / total, out);
                }
            }
        }
    }
}

/// The search engine. Cheap to share behind `Arc`; `search` takes
/// `&self`.
pub struct SearchEngine {
    index: InvertedIndex,
    params: LmParams,
    /// Phrase cache, sharded by a hash of the phrase words so parallel
    /// hill climbs (each phrase-heavy) don't serialize on one mutex.
    phrase_cache: Vec<Mutex<HashMap<Vec<String>, Arc<PhraseInfo>>>>,
}

impl SearchEngine {
    /// Engine with default LM parameters (μ = 2500).
    pub fn new(index: InvertedIndex) -> Self {
        Self::with_params(index, LmParams::default())
    }

    /// Engine with explicit parameters.
    pub fn with_params(index: InvertedIndex, params: LmParams) -> Self {
        SearchEngine {
            index,
            params,
            phrase_cache: (0..PHRASE_CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The scoring parameters (shared with [`crate::workspace`] and the
    /// backend trait).
    pub fn params(&self) -> LmParams {
        self.params
    }

    /// Execute `query`, returning the best `k` documents (descending
    /// score, ties by ascending doc id). Only documents matching at
    /// least one leaf are candidates; an all-background document can
    /// never enter the top-k.
    pub fn search(&self, query: &QueryNode, k: usize) -> Vec<SearchHit> {
        self.search_with(query, k, SearchMode::Exact)
    }

    /// [`SearchEngine::search`] with an explicit execution mode; see
    /// [`SearchMode`] for the equivalence contract between them.
    pub fn search_with(&self, query: &QueryNode, k: usize, mode: SearchMode) -> Vec<SearchHit> {
        let mut specs = Vec::new();
        flatten_specs(query, 1.0, &mut specs);
        let leaves: Vec<Leaf> = specs
            .iter()
            .map(|(weight, spec)| self.resolve_leaf(*weight, spec))
            .collect();
        if leaves.is_empty() {
            return Vec::new();
        }
        let topk = match mode {
            SearchMode::Pruned if leaves.len() <= MAX_PRUNED_LEAVES => {
                self.pruned_topk(&specs, &leaves, k)
            }
            _ => self.exact_topk(&leaves, k),
        };
        topk.into_sorted()
            .into_iter()
            .map(|s| SearchHit {
                doc: s.doc,
                score: s.score,
            })
            .collect()
    }

    /// Exhaustive candidate scoring — the float-op sequence every
    /// golden fingerprint pins.
    fn exact_topk(&self, leaves: &[Leaf], k: usize) -> TopK {
        // Candidates: any doc matching at least one leaf.
        let mut candidates: Vec<u32> = leaves
            .iter()
            .flat_map(|l| l.tf_by_doc.keys().copied())
            .collect();
        candidates.sort_unstable();
        candidates.dedup();

        let mut topk = TopK::new(k);
        for doc in candidates {
            let len = self.index.doc_len(doc);
            let mut score = 0.0;
            for leaf in leaves {
                let tf = leaf.tf_by_doc.get(&doc).copied().unwrap_or(0);
                score += leaf.weight
                    * log_belief(self.params, &self.index, tf, len, leaf.collection_prob);
            }
            topk.push(doc, score);
        }
        topk
    }

    /// MaxScore/WAND-style top-k: candidates are visited in descending
    /// score-upper-bound order, so once the heap is full and the next
    /// bound falls strictly below the floor, every remaining candidate
    /// is provably outside the top-k and the loop stops.
    ///
    /// The bound is conservative *in floating point*, not merely in
    /// exact arithmetic: each per-leaf bound evaluates the same
    /// `weight · log_belief` expression the scoring loop runs, at
    /// inputs (`max_tf`, `min_len`) that dominate the real ones, and
    /// rounded `+`, `·`, `/`, `ln` are all monotone — so summing the
    /// per-leaf bounds in the same leaf order yields `ub ≥ score`
    /// bitwise. A skipped document could therefore never displace the
    /// heap root, and the surviving heap (hence the result) is
    /// bit-identical to [`SearchEngine::exact_topk`]'s.
    fn pruned_topk(&self, specs: &[(f64, LeafSpec<'_>)], leaves: &[Leaf], k: usize) -> TopK {
        let bounds: Vec<(f64, f64)> = specs
            .iter()
            .zip(leaves)
            .map(|((_, spec), leaf)| self.leaf_bounds(spec, leaf))
            .collect();

        // Candidate union with a per-doc bitmask of the leaves it
        // matches (mask width enforced by the caller's leaf-count gate).
        let mut masks: HashMap<u32, u64> = HashMap::new();
        for (i, leaf) in leaves.iter().enumerate() {
            for &doc in leaf.tf_by_doc.keys() {
                *masks.entry(doc).or_insert(0) |= 1u64 << i;
            }
        }
        let candidates: Vec<(f64, u32)> = masks
            .iter()
            .map(|(&doc, &mask)| {
                let mut ub = 0.0;
                for (i, &(matched, background)) in bounds.iter().enumerate() {
                    ub += if mask & (1u64 << i) != 0 {
                        matched
                    } else {
                        background
                    };
                }
                (ub, doc)
            })
            .collect();
        // Lazy descending-bound order: heapify is O(n) and the loop
        // usually stops after a handful of pops, so the full
        // O(n log n) sort this replaces never happens.
        let mut heap = BoundHeap::from_candidates(candidates);

        let mut topk = TopK::new(k);
        while let Some((ub, doc)) = heap.pop() {
            if let Some(floor) = topk.floor() {
                if ub < floor.score {
                    break; // bounds descend: nothing later can qualify
                }
            }
            let len = self.index.doc_len(doc);
            let mut score = 0.0;
            for leaf in leaves {
                let tf = leaf.tf_by_doc.get(&doc).copied().unwrap_or(0);
                score += leaf.weight
                    * log_belief(self.params, &self.index, tf, len, leaf.collection_prob);
            }
            topk.push(doc, score);
        }
        topk
    }

    /// Per-leaf score bounds `(matched, background)`: the largest
    /// possible `weight · log_belief` contribution of this leaf to a
    /// document that matches it, resp. one that doesn't. Term leaves
    /// read the per-term [`TermBound`] carried by the index (persisted
    /// in the artifact's BOUNDS section); phrase leaves derive theirs
    /// from the already-resolved hits in one pass.
    fn leaf_bounds(&self, spec: &LeafSpec<'_>, leaf: &Leaf) -> (f64, f64) {
        let background = leaf.weight
            * log_belief(
                self.params,
                &self.index,
                0,
                self.index.min_doc_len(),
                leaf.collection_prob,
            );
        let bound = match spec {
            LeafSpec::Term(t) => self.index.term_id(t).map(|tid| self.index.term_bound(tid)),
            LeafSpec::Phrase(_) => {
                let mut b = TermBound::EMPTY;
                for (&doc, &tf) in &leaf.tf_by_doc {
                    b.max_tf = b.max_tf.max(tf);
                    b.min_len = b.min_len.min(self.index.doc_len(doc));
                }
                Some(b.normalized())
            }
        };
        let matched = match bound {
            Some(b) if b.max_tf > 0 => {
                leaf.weight
                    * log_belief(
                        self.params,
                        &self.index,
                        b.max_tf,
                        b.min_len,
                        leaf.collection_prob,
                    )
            }
            // No document matches this leaf: the "matched" bound is
            // never consulted, but keep it equal to the background so a
            // stray mask bit could only loosen, never unsound-tighten.
            _ => background,
        };
        (matched, background)
    }

    /// Resolve one flattened leaf spec against this engine's index.
    fn resolve_leaf(&self, weight: f64, spec: &LeafSpec<'_>) -> Leaf {
        match spec {
            LeafSpec::Term(t) => {
                let (tf_by_doc, collection_prob) = self.term_postings(t);
                Leaf {
                    weight,
                    tf_by_doc,
                    collection_prob,
                }
            }
            LeafSpec::Phrase(words) => {
                let info = self.phrase_info(words);
                Leaf {
                    weight,
                    tf_by_doc: info.hits.iter().map(|h| (h.doc, h.tf)).collect(),
                    collection_prob: info.collection_prob,
                }
            }
        }
    }

    fn term_postings(&self, term: &str) -> (HashMap<u32, u32>, f64) {
        match self.index.postings_for(term) {
            Some(list) => (
                list.iter().map(|p| (p.doc, p.tf())).collect(),
                list.collection_freq() as f64 / self.index.total_tokens().max(1) as f64,
            ),
            None => (HashMap::new(), 0.0),
        }
    }

    /// The shard responsible for `words`.
    fn shard(&self, words: &[String]) -> &Mutex<HashMap<Vec<String>, Arc<PhraseInfo>>> {
        &self.phrase_cache[phrase_cache_slot(words, self.phrase_cache.len())]
    }

    /// Cached phrase evaluation: exact hits plus the exact phrase
    /// collection probability (total phrase occurrences / total tokens).
    /// Two threads racing on the same uncached phrase both compute it;
    /// the second insert overwrites with an identical value, so the race
    /// is benign.
    pub(crate) fn phrase_info(&self, words: &[String]) -> Arc<PhraseInfo> {
        let shard = self.shard(words);
        if let Some(hit) = shard.lock().get(words) {
            return hit.clone();
        }
        let hits = match resolve_terms(&self.index, words) {
            Some(terms) => match_phrase(&self.index, &terms),
            None => Vec::new(),
        };
        let cf: u64 = hits.iter().map(|h| h.tf as u64).sum();
        let info = Arc::new(PhraseInfo {
            hits,
            collection_prob: cf as f64 / self.index.total_tokens().max(1) as f64,
        });
        shard.lock().insert(words.to_vec(), info.clone());
        info
    }

    /// Number of cached phrases (observability for benches).
    pub fn phrase_cache_len(&self) -> usize {
        self.phrase_cache.iter().map(|s| s.lock().len()).sum()
    }

    /// Evaluate (and cache) one phrase — warming loops call this per
    /// title so only one tokenization is alive at a time (at stress
    /// scale there are 100k+ titles). Empty phrases are skipped.
    pub fn warm_phrase(&self, words: &[String]) {
        if !words.is_empty() {
            self.phrase_info(words);
        }
    }

    /// Evaluate (and cache) every phrase in `phrases` — used to warm
    /// the phrase dictionary before persisting it. Duplicates and empty
    /// phrases are skipped.
    pub fn warm_phrases<'a>(&self, phrases: impl IntoIterator<Item = &'a [String]>) {
        for words in phrases {
            self.warm_phrase(words);
        }
    }

    /// Export the phrase dictionary, sorted by phrase words so the
    /// serialized artifact is deterministic regardless of evaluation
    /// order or sharding.
    pub fn export_phrase_cache(&self) -> Vec<PhraseCacheEntry> {
        let mut out: Vec<PhraseCacheEntry> = self
            .phrase_cache
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .iter()
                    .map(|(words, info)| PhraseCacheEntry {
                        words: words.clone(),
                        hits: info.hits.clone(),
                        collection_prob: info.collection_prob,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.words.cmp(&b.words));
        out
    }

    /// Seed the phrase dictionary with previously exported entries
    /// (e.g. loaded from an on-disk artifact). Entries are memoization
    /// values — pure functions of the index — so seeding never changes
    /// search results, only skips re-matching.
    pub fn seed_phrase_cache(&self, entries: Vec<PhraseCacheEntry>) {
        for e in entries {
            let info = Arc::new(PhraseInfo {
                hits: e.hits,
                collection_prob: e.collection_prob,
            });
            self.shard(&e.words).lock().insert(e.words, info);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::query_lang::parse;

    fn engine() -> SearchEngine {
        let mut b = IndexBuilder::new();
        b.add_document("a gondola on the grand canal of venice"); // 0
        b.add_document("the grand hotel beside a small canal"); // 1
        b.add_document("venice has many bridges and one grand canal"); // 2
        b.add_document("completely unrelated text about mountains"); // 3
        SearchEngine::new(b.build())
    }

    #[test]
    fn phrase_query_prefers_exact_match() {
        let e = engine();
        let hits = e.search(&parse("#1(grand canal)").unwrap(), 10);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        // Docs 0 and 2 contain the exact phrase; doc 1 has both words
        // but not adjacent — it may appear via background only if it
        // matched a leaf, which it does not for a pure phrase query.
        assert_eq!(docs, vec![0, 2]);
    }

    #[test]
    fn combine_blends_phrase_and_term() {
        let e = engine();
        let hits = e.search(&parse("#combine(#1(grand canal) venice)").unwrap(), 10);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        // Docs 0 and 2 match both leaves. Doc 1 matches neither (its
        // "grand" and "canal" are not adjacent) so it is no candidate.
        assert_eq!(docs.len(), 2);
        assert!(docs.contains(&0) && docs.contains(&2));
    }

    #[test]
    fn unrelated_doc_never_retrieved() {
        let e = engine();
        let hits = e.search(&parse("#combine(gondola venice)").unwrap(), 10);
        assert!(hits.iter().all(|h| h.doc != 3));
    }

    #[test]
    fn k_limits_results() {
        let e = engine();
        let hits = e.search(&parse("the").unwrap(), 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn scores_descend() {
        let e = engine();
        let hits = e.search(&parse("#combine(grand canal venice)").unwrap(), 10);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn weight_shifts_ranking() {
        let mut b = IndexBuilder::new();
        b.add_document("apple apple banana"); // 0: apple-heavy
        b.add_document("banana banana apple"); // 1: banana-heavy
        let e = SearchEngine::new(b.build());
        let apple_heavy = e.search(&parse("#weight(0.9 apple 0.1 banana)").unwrap(), 2);
        assert_eq!(apple_heavy[0].doc, 0);
        let banana_heavy = e.search(&parse("#weight(0.1 apple 0.9 banana)").unwrap(), 2);
        assert_eq!(banana_heavy[0].doc, 1);
    }

    #[test]
    fn unknown_terms_yield_empty() {
        let e = engine();
        assert!(e.search(&parse("zzzzz").unwrap(), 5).is_empty());
        assert!(e.search(&parse("#1(zz yy)").unwrap(), 5).is_empty());
    }

    #[test]
    fn phrase_cache_fills_and_hits() {
        let e = engine();
        let q = parse("#1(grand canal)").unwrap();
        assert_eq!(e.phrase_cache_len(), 0);
        let first = e.search(&q, 5);
        assert_eq!(e.phrase_cache_len(), 1);
        let second = e.search(&q, 5);
        assert_eq!(e.phrase_cache_len(), 1);
        assert_eq!(first, second);
    }

    #[test]
    fn sharded_cache_counts_across_shards() {
        let e = engine();
        // Distinct phrases hash to assorted shards; the aggregate count
        // must still see every one exactly once.
        for (i, q) in [
            "#1(grand canal)",
            "#1(venice)",
            "#1(small canal)",
            "#1(the grand)",
        ]
        .iter()
        .enumerate()
        {
            let q = parse(q).unwrap();
            e.search(&q, 5);
            e.search(&q, 5); // second run hits the cache
            assert_eq!(e.phrase_cache_len(), i + 1);
        }
    }

    #[test]
    fn deterministic_tie_break() {
        let mut b = IndexBuilder::new();
        b.add_document("same words here");
        b.add_document("same words here");
        let e = SearchEngine::new(b.build());
        let hits = e.search(&parse("#1(same words)").unwrap(), 2);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(docs, vec![0, 1]);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let e = SearchEngine::new(IndexBuilder::new().build());
        assert!(e.search(&parse("anything").unwrap(), 5).is_empty());
    }

    #[test]
    fn phrase_cache_exports_sorted_and_reseeds() {
        let e = engine();
        for q in ["#1(grand canal)", "#1(venice)", "#1(small canal)"] {
            e.search(&parse(q).unwrap(), 5);
        }
        let exported = e.export_phrase_cache();
        assert_eq!(exported.len(), 3);
        let words: Vec<&Vec<String>> = exported.iter().map(|p| &p.words).collect();
        let mut sorted = words.clone();
        sorted.sort();
        assert_eq!(words, sorted, "export must be sorted for determinism");

        // A fresh engine seeded with the export answers identically
        // without growing the cache.
        let fresh = engine();
        fresh.seed_phrase_cache(exported.clone());
        assert_eq!(fresh.phrase_cache_len(), 3);
        let q = parse("#1(grand canal)").unwrap();
        assert_eq!(fresh.search(&q, 10), e.search(&q, 10));
        assert_eq!(fresh.phrase_cache_len(), 3, "seeded entry must be a hit");
        assert_eq!(fresh.export_phrase_cache(), exported);
    }

    #[test]
    fn search_mode_parse_round_trips() {
        for mode in [SearchMode::Exact, SearchMode::Pruned] {
            assert_eq!(SearchMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(SearchMode::default(), SearchMode::Exact);
        assert_eq!(SearchMode::parse("turbo"), None);
    }

    #[test]
    fn pruned_mode_matches_exact_on_fixture() {
        let e = engine();
        for q in [
            "#1(grand canal)",
            "#combine(#1(grand canal) venice)",
            "#combine(gondola venice #1(small canal))",
            "#weight(0.9 venice 0.1 canal)",
            "the",
            "#combine(zzzz gondola)",
            "#combine(grand canal venice the a mountains)",
        ] {
            let q = parse(q).unwrap();
            for k in [0, 1, 2, 10] {
                assert_eq!(
                    e.search_with(&q, k, SearchMode::Pruned),
                    e.search_with(&q, k, SearchMode::Exact),
                    "{q:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn pruned_mode_falls_back_beyond_mask_width() {
        // 70 leaves exceed the 64-bit membership mask: pruned mode must
        // fall back to the exact loop rather than truncate the mask.
        let mut b = IndexBuilder::new();
        for i in 0..30 {
            b.add_document(&format!("t{} t{} filler", i, (i + 1) % 30));
        }
        let e = SearchEngine::new(b.build());
        let terms: Vec<String> = (0..70).map(|i| format!("t{}", i % 30)).collect();
        let q = parse(&format!("#combine({})", terms.join(" "))).unwrap();
        assert!(!e.search(&q, 5).is_empty());
        assert_eq!(e.search_with(&q, 5, SearchMode::Pruned), e.search(&q, 5));
    }

    #[test]
    fn pruned_mode_keeps_floor_ties() {
        // Identical documents produce exact score ties at the heap
        // floor; pruning must not drop the tied doc the doc-id
        // tiebreak keeps.
        let mut b = IndexBuilder::new();
        b.add_document("same words here");
        b.add_document("same words here");
        b.add_document("same words here");
        let e = SearchEngine::new(b.build());
        for q in ["#combine(same words)", "#1(same words)"] {
            let q = parse(q).unwrap();
            for k in [1, 2, 3, 5] {
                assert_eq!(
                    e.search_with(&q, k, SearchMode::Pruned),
                    e.search(&q, k),
                    "{q:?} k={k}"
                );
            }
        }
    }

    proptest::proptest! {
        /// Pruned search must be rank-equivalent to exact on arbitrary
        /// worlds: the same document sequence, scores within 1e-9 (the
        /// pinning contract; the implementation actually achieves
        /// bitwise equality because pruning only skips documents).
        #[test]
        fn pruned_rank_equivalent_on_random_worlds(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u8..6, 0..20),
                1..16,
            ),
            qpick in 0u8..6,
            k in 0usize..12,
        ) {
            const VOCAB: [&str; 6] =
                ["alpha", "beta", "gamma", "delta", "beta gamma", "alpha beta"];
            let mut b = IndexBuilder::new();
            for d in &docs {
                let text = d
                    .iter()
                    .map(|&x| VOCAB[x as usize])
                    .collect::<Vec<_>>()
                    .join(" ");
                b.add_document(&text);
            }
            let e = SearchEngine::new(b.build());
            let queries = [
                "#combine(alpha beta)",
                "#1(beta gamma)",
                "#weight(0.7 alpha 0.3 #1(alpha beta))",
                "#combine(#1(gamma delta) delta)",
                "delta",
                "#combine(alpha #1(beta gamma) zeta)",
            ];
            let q = parse(queries[qpick as usize % queries.len()]).unwrap();
            let exact = e.search_with(&q, k, SearchMode::Exact);
            let pruned = e.search_with(&q, k, SearchMode::Pruned);
            let exact_docs: Vec<u32> = exact.iter().map(|h| h.doc).collect();
            let pruned_docs: Vec<u32> = pruned.iter().map(|h| h.doc).collect();
            proptest::prop_assert_eq!(pruned_docs, exact_docs, "doc sequence");
            for (p, x) in pruned.iter().zip(&exact) {
                proptest::prop_assert!(
                    (p.score - x.score).abs() <= 1e-9,
                    "score drift at doc {}: {} vs {}", p.doc, p.score, x.score
                );
            }
        }
    }

    #[test]
    fn warm_phrases_fills_cache() {
        let e = engine();
        let phrases: Vec<Vec<String>> = vec![
            vec!["grand".into(), "canal".into()],
            vec!["venice".into()],
            vec![],                               // skipped
            vec!["grand".into(), "canal".into()], // duplicate
        ];
        e.warm_phrases(phrases.iter().map(|p| p.as_slice()));
        assert_eq!(e.phrase_cache_len(), 2);
    }
}
