//! Positional postings lists with delta-varint encoding.
//!
//! Each term's postings are a sequence of documents; each document entry
//! stores the term's positions in that document. The on-heap layout is a
//! single contiguous [`bytes::Bytes`] buffer:
//!
//! ```text
//! ┌ per document ──────────────────────────────────────────────┐
//! │ varint(doc_id delta)  varint(tf)  varint(pos delta) × tf   │
//! └─────────────────────────────────────────────────────────────┘
//! ```
//!
//! Doc ids and positions are strictly increasing, so deltas are small
//! and LEB128 varints keep the index compact (the real ImageCLEF
//! collection has 237k documents; compactness is not cosmetic).

use bytes::{BufMut, Bytes, BytesMut};

/// Append `v` as a LEB128 varint.
pub fn write_varint(buf: &mut BytesMut, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read a LEB128 varint at `pos`, advancing it. Returns `None` on
/// truncated input.
pub fn read_varint(data: &[u8], pos: &mut usize) -> Option<u32> {
    let mut shift = 0u32;
    let mut out = 0u32;
    loop {
        let &byte = data.get(*pos)?;
        *pos += 1;
        out |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
        if shift >= 32 {
            return None;
        }
    }
}

/// One decoded document entry of a postings list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocPosting {
    /// Document id.
    pub doc: u32,
    /// Term positions in the document, ascending.
    pub positions: Vec<u32>,
}

impl DocPosting {
    /// Term frequency in this document.
    pub fn tf(&self) -> u32 {
        self.positions.len() as u32
    }
}

/// An immutable, encoded postings list.
#[derive(Debug, Clone, Default)]
pub struct PostingsList {
    data: Bytes,
    doc_count: u32,
    collection_freq: u64,
}

impl PostingsList {
    /// Number of documents containing the term.
    pub fn doc_count(&self) -> u32 {
        self.doc_count
    }

    /// Total occurrences of the term across the collection.
    pub fn collection_freq(&self) -> u64 {
        self.collection_freq
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.data.len()
    }

    /// Iterate decoded document entries in doc-id order.
    pub fn iter(&self) -> PostingsIter<'_> {
        PostingsIter {
            data: &self.data,
            pos: 0,
            last_doc: 0,
            first: true,
            remaining: self.doc_count,
        }
    }
}

/// Decoding iterator over a [`PostingsList`].
pub struct PostingsIter<'a> {
    data: &'a [u8],
    pos: usize,
    last_doc: u32,
    first: bool,
    remaining: u32,
}

impl Iterator for PostingsIter<'_> {
    type Item = DocPosting;

    fn next(&mut self) -> Option<DocPosting> {
        if self.remaining == 0 {
            return None;
        }
        let delta = read_varint(self.data, &mut self.pos)?;
        let doc = if self.first {
            self.first = false;
            delta
        } else {
            self.last_doc + delta
        };
        self.last_doc = doc;
        let tf = read_varint(self.data, &mut self.pos)?;
        let mut positions = Vec::with_capacity(tf as usize);
        let mut last = 0u32;
        for i in 0..tf {
            let pdelta = read_varint(self.data, &mut self.pos)?;
            last = if i == 0 { pdelta } else { last + pdelta };
            positions.push(last);
        }
        self.remaining -= 1;
        Some(DocPosting { doc, positions })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

/// Incremental encoder. Documents must be appended in ascending doc-id
/// order with ascending positions.
#[derive(Debug, Default)]
pub struct PostingsBuilder {
    buf: BytesMut,
    last_doc: u32,
    first: bool,
    doc_count: u32,
    collection_freq: u64,
}

impl PostingsBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        PostingsBuilder {
            first: true,
            ..Default::default()
        }
    }

    /// Append one document's positions.
    ///
    /// # Panics
    /// If `doc` is not strictly greater than the previous doc, or
    /// `positions` is empty or not strictly ascending.
    pub fn push(&mut self, doc: u32, positions: &[u32]) {
        assert!(!positions.is_empty(), "postings entry needs ≥1 position");
        if self.first {
            write_varint(&mut self.buf, doc);
            self.first = false;
        } else {
            assert!(doc > self.last_doc, "docs must be strictly ascending");
            write_varint(&mut self.buf, doc - self.last_doc);
        }
        self.last_doc = doc;
        write_varint(&mut self.buf, positions.len() as u32);
        let mut last = 0u32;
        for (i, &p) in positions.iter().enumerate() {
            if i == 0 {
                write_varint(&mut self.buf, p);
            } else {
                assert!(p > last, "positions must be strictly ascending");
                write_varint(&mut self.buf, p - last);
            }
            last = p;
        }
        self.doc_count += 1;
        self.collection_freq += positions.len() as u64;
    }

    /// Freeze into an immutable list.
    pub fn build(self) -> PostingsList {
        PostingsList {
            data: self.buf.freeze(),
            doc_count: self.doc_count,
            collection_freq: self.collection_freq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_boundaries() {
        let mut buf = BytesMut::new();
        let values = [0u32, 1, 127, 128, 300, 16383, 16384, u32::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let data = buf.freeze();
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&data, &mut pos), Some(v));
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn truncated_varint_returns_none() {
        let data = [0x80u8]; // continuation bit with no next byte
        let mut pos = 0;
        assert_eq!(read_varint(&data, &mut pos), None);
    }

    #[test]
    fn postings_round_trip() {
        let mut b = PostingsBuilder::new();
        b.push(0, &[3, 7, 20]);
        b.push(5, &[0]);
        b.push(6, &[1, 2]);
        let list = b.build();
        assert_eq!(list.doc_count(), 3);
        assert_eq!(list.collection_freq(), 6);
        let decoded: Vec<DocPosting> = list.iter().collect();
        assert_eq!(
            decoded,
            vec![
                DocPosting {
                    doc: 0,
                    positions: vec![3, 7, 20]
                },
                DocPosting {
                    doc: 5,
                    positions: vec![0]
                },
                DocPosting {
                    doc: 6,
                    positions: vec![1, 2]
                },
            ]
        );
    }

    #[test]
    fn empty_list_iterates_nothing() {
        let list = PostingsBuilder::new().build();
        assert_eq!(list.iter().count(), 0);
        assert_eq!(list.doc_count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_non_ascending_docs() {
        let mut b = PostingsBuilder::new();
        b.push(5, &[0]);
        b.push(5, &[1]);
    }

    #[test]
    #[should_panic(expected = "needs ≥1 position")]
    fn rejects_empty_positions() {
        PostingsBuilder::new().push(0, &[]);
    }

    #[test]
    fn size_hint_is_exact() {
        let mut b = PostingsBuilder::new();
        for d in 0..10u32 {
            b.push(d, &[d]);
        }
        let list = b.build();
        let mut it = list.iter();
        assert_eq!(it.size_hint(), (10, Some(10)));
        it.next();
        assert_eq!(it.size_hint(), (9, Some(9)));
    }

    #[test]
    fn encoding_is_compact_for_dense_ids() {
        let mut b = PostingsBuilder::new();
        for d in 0..1000u32 {
            b.push(d, &[0]);
        }
        let list = b.build();
        // delta=1 ids + tf=1 + pos=0 → 3 bytes per entry (first entry 3).
        assert!(list.encoded_len() <= 3000, "got {}", list.encoded_len());
    }

    proptest::proptest! {
        #[test]
        fn round_trip_random(entries in proptest::collection::vec(
            (0u32..10_000, proptest::collection::btree_set(0u32..5_000, 1..20)),
            0..50,
        )) {
            // Deduplicate and sort docs.
            let mut map = std::collections::BTreeMap::new();
            for (d, ps) in entries {
                map.entry(d).or_insert(ps);
            }
            let mut b = PostingsBuilder::new();
            for (d, ps) in &map {
                let positions: Vec<u32> = ps.iter().copied().collect();
                b.push(*d, &positions);
            }
            let list = b.build();
            let decoded: Vec<(u32, Vec<u32>)> =
                list.iter().map(|p| (p.doc, p.positions)).collect();
            let expected: Vec<(u32, Vec<u32>)> = map
                .into_iter()
                .map(|(d, ps)| (d, ps.into_iter().collect()))
                .collect();
            proptest::prop_assert_eq!(decoded, expected);
        }
    }
}
