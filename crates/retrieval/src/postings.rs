//! Positional postings lists with delta-varint encoding.
//!
//! Each term's postings are a sequence of documents; each document entry
//! stores the term's positions in that document. The on-heap layout is a
//! single contiguous [`bytes::Bytes`] buffer:
//!
//! ```text
//! ┌ per document ──────────────────────────────────────────────┐
//! │ varint(doc_id delta)  varint(tf)  varint(pos delta) × tf   │
//! └─────────────────────────────────────────────────────────────┘
//! ```
//!
//! Doc ids and positions are strictly increasing, so deltas are small
//! and LEB128 varints keep the index compact (the real ImageCLEF
//! collection has 237k documents; compactness is not cosmetic).

use bytes::{BufMut, Bytes, BytesMut};

/// Append `v` as a LEB128 varint.
pub fn write_varint(buf: &mut impl BufMut, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read a LEB128 varint at `pos`, advancing it. Returns `None` on
/// truncated input and on **non-canonical** encodings: a fifth byte
/// whose high bits would overflow `u32` (`> 0x0F`), any encoding longer
/// than five bytes, and zero-padded continuations (`0x80 0x00` for 0).
/// [`write_varint`] only ever produces canonical encodings, so every
/// valid buffer round-trips; rejecting the rest means corrupted or
/// adversarial buffers fail loudly instead of silently mis-decoding.
///
/// This runs in the scoring hot loop, so the dominant case — a
/// single-byte varint (small postings deltas) — takes the early return
/// below and pays nothing for the canonicality checks; only
/// continuation bytes enter the checked loop.
pub fn read_varint(data: &[u8], pos: &mut usize) -> Option<u32> {
    let &first = data.get(*pos)?;
    *pos += 1;
    if first & 0x80 == 0 {
        return Some(first as u32);
    }
    let mut out = (first & 0x7F) as u32;
    let mut shift = 7u32;
    loop {
        let &byte = data.get(*pos)?;
        *pos += 1;
        if byte == 0 {
            // Trailing zero byte: the same value encodes in fewer
            // bytes, so this encoding is non-canonical.
            return None;
        }
        if shift == 28 && byte > 0x0F {
            // Fifth byte: only 4 value bits fit in a u32; higher value
            // bits or a set continuation bit would overflow (this also
            // bounds the loop at five bytes).
            return None;
        }
        out |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
    }
}

/// What one [`validate_stream`] pass proves about a postings stream:
/// the collection frequency the directory must agree with, plus the
/// term's score-bound statistics ([`crate::index::TermBound`] inputs) —
/// computed here because the validating walk already touches every
/// entry, so the pruning bounds cost nothing extra to derive and the
/// loader can cross-check (or reconstruct) the artifact's stored bounds
/// against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StreamStats {
    /// Sum of tfs across the stream.
    pub cf: u64,
    /// Highest tf of any entry; 0 for an empty stream.
    pub max_tf: u32,
    /// Shortest document (token count) among the stream's docs; 0 for
    /// an empty stream.
    pub min_len: u32,
}

/// Walk an encoded postings stream **without allocating**, verifying it
/// is exactly what a [`PostingsBuilder`] could have produced: exactly
/// `doc_count` entries of canonical varints, strictly ascending
/// non-wrapping doc ids (all `< doc_lengths.len()`), `tf ≥ 1`, strictly
/// ascending non-wrapping positions, and full consumption of the
/// buffer. Returns the stream's [`StreamStats`] on success — the
/// on-disk loader compares the collection frequency against the
/// directory's recorded value and the bound statistics against the
/// artifact's bounds section. Cost is one linear pass; crafted counts
/// can't balloon memory because nothing here allocates (unlike
/// [`PostingsIter`], which trusts its input and pre-sizes position
/// vectors).
pub(crate) fn validate_stream(
    data: &[u8],
    doc_count: u32,
    doc_lengths: &[u32],
) -> Option<StreamStats> {
    let num_docs = doc_lengths.len() as u32;
    let mut pos = 0usize;
    let mut last_doc = 0u32;
    let mut cf = 0u64;
    let mut max_tf = 0u32;
    let mut min_len = u32::MAX;
    for i in 0..doc_count {
        let delta = read_varint(data, &mut pos)?;
        let doc = if i == 0 {
            delta
        } else {
            if delta == 0 {
                return None; // docs must be strictly ascending
            }
            last_doc.checked_add(delta)?
        };
        if doc >= num_docs {
            return None;
        }
        last_doc = doc;
        min_len = min_len.min(doc_lengths[doc as usize]);
        let tf = read_varint(data, &mut pos)?;
        if tf == 0 {
            return None; // builder requires ≥ 1 position per entry
        }
        max_tf = max_tf.max(tf);
        let mut last_position = 0u32;
        for j in 0..tf {
            let pdelta = read_varint(data, &mut pos)?;
            last_position = if j == 0 {
                pdelta
            } else {
                if pdelta == 0 {
                    return None; // positions must be strictly ascending
                }
                last_position.checked_add(pdelta)?
            };
        }
        cf += tf as u64;
    }
    if pos != data.len() {
        return None; // trailing bytes the doc_count doesn't account for
    }
    Some(StreamStats {
        cf,
        max_tf,
        // Match `TermBound`'s all-zero convention for empty postings.
        min_len: if doc_count == 0 { 0 } else { min_len },
    })
}

/// One decoded document entry of a postings list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocPosting {
    /// Document id.
    pub doc: u32,
    /// Term positions in the document, ascending.
    pub positions: Vec<u32>,
}

impl DocPosting {
    /// Term frequency in this document.
    pub fn tf(&self) -> u32 {
        self.positions.len() as u32
    }
}

/// An immutable, encoded postings list.
#[derive(Debug, Clone, Default)]
pub struct PostingsList {
    data: Bytes,
    doc_count: u32,
    collection_freq: u64,
}

impl PostingsList {
    /// Reassemble a list from its encoded parts — the on-disk loader's
    /// entry point ([`crate::ondisk`]). `data` is trusted to be the
    /// exact encoding a [`PostingsBuilder`] produced (the artifact's
    /// per-section checksums vouch for it before this is called).
    pub(crate) fn from_encoded(data: Bytes, doc_count: u32, collection_freq: u64) -> PostingsList {
        PostingsList {
            data,
            doc_count,
            collection_freq,
        }
    }

    /// The encoded postings bytes (delta-varint stream).
    pub(crate) fn encoded_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Number of documents containing the term.
    pub fn doc_count(&self) -> u32 {
        self.doc_count
    }

    /// Total occurrences of the term across the collection.
    pub fn collection_freq(&self) -> u64 {
        self.collection_freq
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.data.len()
    }

    /// Iterate decoded document entries in doc-id order.
    pub fn iter(&self) -> PostingsIter<'_> {
        PostingsIter {
            data: &self.data,
            pos: 0,
            last_doc: 0,
            first: true,
            remaining: self.doc_count,
        }
    }
}

/// Decoding iterator over a [`PostingsList`].
pub struct PostingsIter<'a> {
    data: &'a [u8],
    pos: usize,
    last_doc: u32,
    first: bool,
    remaining: u32,
}

impl Iterator for PostingsIter<'_> {
    type Item = DocPosting;

    fn next(&mut self) -> Option<DocPosting> {
        if self.remaining == 0 {
            return None;
        }
        let delta = read_varint(self.data, &mut self.pos)?;
        let doc = if self.first {
            self.first = false;
            delta
        } else {
            self.last_doc + delta
        };
        self.last_doc = doc;
        let tf = read_varint(self.data, &mut self.pos)?;
        let mut positions = Vec::with_capacity(tf as usize);
        let mut last = 0u32;
        for i in 0..tf {
            let pdelta = read_varint(self.data, &mut self.pos)?;
            last = if i == 0 { pdelta } else { last + pdelta };
            positions.push(last);
        }
        self.remaining -= 1;
        Some(DocPosting { doc, positions })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

/// Incremental encoder. Documents must be appended in ascending doc-id
/// order with ascending positions.
#[derive(Debug, Default)]
pub struct PostingsBuilder {
    buf: BytesMut,
    last_doc: u32,
    first: bool,
    doc_count: u32,
    collection_freq: u64,
}

impl PostingsBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        PostingsBuilder {
            first: true,
            ..Default::default()
        }
    }

    /// Append one document's positions.
    ///
    /// # Panics
    /// If `doc` is not strictly greater than the previous doc, or
    /// `positions` is empty or not strictly ascending.
    pub fn push(&mut self, doc: u32, positions: &[u32]) {
        assert!(!positions.is_empty(), "postings entry needs ≥1 position");
        if self.first {
            write_varint(&mut self.buf, doc);
            self.first = false;
        } else {
            assert!(doc > self.last_doc, "docs must be strictly ascending");
            write_varint(&mut self.buf, doc - self.last_doc);
        }
        self.last_doc = doc;
        write_varint(&mut self.buf, positions.len() as u32);
        let mut last = 0u32;
        for (i, &p) in positions.iter().enumerate() {
            if i == 0 {
                write_varint(&mut self.buf, p);
            } else {
                assert!(p > last, "positions must be strictly ascending");
                write_varint(&mut self.buf, p - last);
            }
            last = p;
        }
        self.doc_count += 1;
        self.collection_freq += positions.len() as u64;
    }

    /// Freeze into an immutable list.
    pub fn build(self) -> PostingsList {
        PostingsList {
            data: self.buf.freeze(),
            doc_count: self.doc_count,
            collection_freq: self.collection_freq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_boundaries() {
        let mut buf = BytesMut::new();
        let values = [0u32, 1, 127, 128, 300, 16383, 16384, u32::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let data = buf.freeze();
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&data, &mut pos), Some(v));
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn truncated_varint_returns_none() {
        let data = [0x80u8]; // continuation bit with no next byte
        let mut pos = 0;
        assert_eq!(read_varint(&data, &mut pos), None);
    }

    #[test]
    fn oversized_fifth_byte_rejected() {
        // Regression: `shift >= 32` alone let a 5-byte varint whose
        // last byte had high bits set decode by silently dropping them.
        // 0xFF×4 + 0x1F claims 35 value bits — must be rejected, not
        // truncated to a wrong u32.
        let data = [0xFF, 0xFF, 0xFF, 0xFF, 0x1F];
        let mut pos = 0;
        assert_eq!(read_varint(&data, &mut pos), None);
        // The largest canonical 5-byte encoding (u32::MAX) still reads.
        let data = [0xFF, 0xFF, 0xFF, 0xFF, 0x0F];
        let mut pos = 0;
        assert_eq!(read_varint(&data, &mut pos), Some(u32::MAX));
    }

    #[test]
    fn fifth_byte_continuation_rejected() {
        // A fifth byte with the continuation bit set can never finish
        // inside u32 range, canonical or not.
        let data = [0xFF, 0xFF, 0xFF, 0xFF, 0x8F, 0x00];
        let mut pos = 0;
        assert_eq!(read_varint(&data, &mut pos), None);
    }

    #[test]
    fn zero_padded_encodings_rejected() {
        // 0x80 0x00 is a non-canonical encoding of 0.
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80, 0x00], &mut pos), None);
        // 0xFF 0x00 is a non-canonical encoding of 127.
        let mut pos = 0;
        assert_eq!(read_varint(&[0xFF, 0x00], &mut pos), None);
        // Plain 0x00 (single byte zero) stays valid.
        let mut pos = 0;
        assert_eq!(read_varint(&[0x00], &mut pos), Some(0));
    }

    #[test]
    fn validate_stream_accepts_builder_output() {
        let mut b = PostingsBuilder::new();
        b.push(0, &[0, 3, 7]);
        b.push(5, &[1]);
        b.push(6, &[0, 2]);
        let list = b.build();
        // Doc lengths chosen so min_len comes from doc 5, not doc 0.
        let doc_lengths = [9u32, 8, 8, 8, 8, 4, 6];
        assert_eq!(
            validate_stream(list.encoded_bytes(), list.doc_count(), &doc_lengths),
            Some(StreamStats {
                cf: list.collection_freq(),
                max_tf: 3,
                min_len: 4,
            })
        );
        // Empty list validates too, with the all-zero bound convention.
        let empty = PostingsBuilder::new().build();
        assert_eq!(
            validate_stream(empty.encoded_bytes(), 0, &[]),
            Some(StreamStats {
                cf: 0,
                max_tf: 0,
                min_len: 0,
            })
        );
    }

    #[test]
    fn validate_stream_rejects_crafted_streams() {
        let mut good = BytesMut::new();
        // One entry: doc 3, tf 2, positions [1, 4].
        for v in [3u32, 2, 1, 3] {
            write_varint(&mut good, v);
        }
        let cf = |r: Option<StreamStats>| r.map(|s| s.cf);
        assert_eq!(cf(validate_stream(&good, 1, &[5; 10])), Some(2));
        // Doc id beyond the collection.
        assert_eq!(validate_stream(&good, 1, &[5; 3]), None);
        // Wrong doc_count (too many / too few entries for the bytes).
        assert_eq!(validate_stream(&good, 2, &[5; 10]), None);
        assert_eq!(validate_stream(&good, 0, &[5; 10]), None);
        // tf = 0 (builder can never produce it).
        let mut tf0 = BytesMut::new();
        for v in [3u32, 0] {
            write_varint(&mut tf0, v);
        }
        assert_eq!(validate_stream(&tf0, 1, &[5; 10]), None);
        // Huge tf claiming more positions than the stream holds must
        // fail on truncation, never allocate.
        let mut huge = BytesMut::new();
        for v in [3u32, u32::MAX, 1] {
            write_varint(&mut huge, v);
        }
        assert_eq!(validate_stream(&huge, 1, &[5; 10]), None);
        // Zero doc delta on a non-first entry (non-ascending docs).
        let mut dup = BytesMut::new();
        for v in [3u32, 1, 0, 0, 1, 0] {
            write_varint(&mut dup, v);
        }
        assert_eq!(validate_stream(&dup, 2, &[5; 10]), None);
    }

    proptest::proptest! {
        /// Every canonical encoding (what `write_varint` emits) reads
        /// back; and reading never panics on arbitrary bytes.
        #[test]
        fn varint_canonical_round_trip_and_total_reader(
            v in 0u32..=u32::MAX,
            junk in proptest::collection::vec(0u8..=255, 0..12),
        ) {
            let mut buf = BytesMut::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            proptest::prop_assert_eq!(read_varint(&buf, &mut pos), Some(v));
            proptest::prop_assert_eq!(pos, buf.len());
            // Total on junk: Some or None, never a panic; on Some the
            // cursor stays in bounds.
            let mut pos = 0;
            if read_varint(&junk, &mut pos).is_some() {
                proptest::prop_assert!(pos <= junk.len());
            }
        }
    }

    #[test]
    fn postings_round_trip() {
        let mut b = PostingsBuilder::new();
        b.push(0, &[3, 7, 20]);
        b.push(5, &[0]);
        b.push(6, &[1, 2]);
        let list = b.build();
        assert_eq!(list.doc_count(), 3);
        assert_eq!(list.collection_freq(), 6);
        let decoded: Vec<DocPosting> = list.iter().collect();
        assert_eq!(
            decoded,
            vec![
                DocPosting {
                    doc: 0,
                    positions: vec![3, 7, 20]
                },
                DocPosting {
                    doc: 5,
                    positions: vec![0]
                },
                DocPosting {
                    doc: 6,
                    positions: vec![1, 2]
                },
            ]
        );
    }

    #[test]
    fn empty_list_iterates_nothing() {
        let list = PostingsBuilder::new().build();
        assert_eq!(list.iter().count(), 0);
        assert_eq!(list.doc_count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_non_ascending_docs() {
        let mut b = PostingsBuilder::new();
        b.push(5, &[0]);
        b.push(5, &[1]);
    }

    #[test]
    #[should_panic(expected = "needs ≥1 position")]
    fn rejects_empty_positions() {
        PostingsBuilder::new().push(0, &[]);
    }

    #[test]
    fn size_hint_is_exact() {
        let mut b = PostingsBuilder::new();
        for d in 0..10u32 {
            b.push(d, &[d]);
        }
        let list = b.build();
        let mut it = list.iter();
        assert_eq!(it.size_hint(), (10, Some(10)));
        it.next();
        assert_eq!(it.size_hint(), (9, Some(9)));
    }

    #[test]
    fn encoding_is_compact_for_dense_ids() {
        let mut b = PostingsBuilder::new();
        for d in 0..1000u32 {
            b.push(d, &[0]);
        }
        let list = b.build();
        // delta=1 ids + tf=1 + pos=0 → 3 bytes per entry (first entry 3).
        assert!(list.encoded_len() <= 3000, "got {}", list.encoded_len());
    }

    proptest::proptest! {
        #[test]
        fn round_trip_random(entries in proptest::collection::vec(
            (0u32..10_000, proptest::collection::btree_set(0u32..5_000, 1..20)),
            0..50,
        )) {
            // Deduplicate and sort docs.
            let mut map = std::collections::BTreeMap::new();
            for (d, ps) in entries {
                map.entry(d).or_insert(ps);
            }
            let mut b = PostingsBuilder::new();
            for (d, ps) in &map {
                let positions: Vec<u32> = ps.iter().copied().collect();
                b.push(*d, &positions);
            }
            let list = b.build();
            let decoded: Vec<(u32, Vec<u32>)> =
                list.iter().map(|p| (p.doc, p.positions)).collect();
            let expected: Vec<(u32, Vec<u32>)> = map
                .into_iter()
                .map(|(d, ps)| (d, ps.into_iter().collect()))
                .collect();
            proptest::prop_assert_eq!(decoded, expected);
        }
    }
}
